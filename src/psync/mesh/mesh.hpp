// Cycle-level wormhole-routed 2D mesh NoC.
//
// Microarchitecture (paper Section V-C-2):
//   * square mesh, single channel between neighbors, 64-bit flits, one flit
//     crosses a link per cycle;
//   * input-buffered routers with `buffer_depth`-flit FIFOs (paper: 2);
//   * t_r-cycle routing delay for every header flit in every router;
//   * wormhole switching: an output port is held by a packet from its head
//     grant until its tail traverses;
//   * credit-based flow control with one-cycle credit return;
//   * routing: deterministic XY, or minimal-adaptive west-first (deadlock-
//     free turn model) that picks the less congested minimal direction.
//
// Datapath layout: this class is the structure-of-arrays rewrite of the
// retained reference implementation (reference_mesh.hpp). Packet fields
// (src/dst/flit count/payload base/payload words) live in flat parallel
// arrays indexed by packet id, captured at inject() time; a ring slot then
// holds a single packed word — packet id, sequence number, tail bit —
// because every other flit field is a pure function of (packet, seq). A
// link traversal is one 64-bit copy, and the full Flit is reconstructed
// only at the sink boundary. Per-VC routing and allocation state are byte
// arrays contiguous per router, so the hot scans (update_routing /
// serve_outputs / keep-awake) test a whole router's five input VCs with one
// unaligned 64-bit load and SWAR byte masks instead of chasing 40-byte
// Flit copies. Payload words move into an arena at inject() time, so
// nothing vector-sized rides through the release queue.
// Both datapaths are byte-identical by construction and by test
// (test_mesh_soa); set_reference_datapath() routes new Mesh instances
// through the reference stepping path for differential checks.
//
// Ejection at a node goes to a Sink; memory interfaces (memory_interface.hpp)
// and simple consumers implement this interface.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "psync/common/calendar_queue.hpp"
#include "psync/common/stats.hpp"
#include "psync/mesh/flit.hpp"
#include "psync/mesh/mesh_types.hpp"
#include "psync/mesh/reference_mesh.hpp"

namespace psync::mesh {

/// Process-wide toggle: when set, newly constructed Mesh objects delegate
/// every call to the retained reference datapath (reference_mesh.hpp).
/// Snapshotted at construction — flipping it does not affect live meshes.
/// Exists for differential tests and the `*_reference` bench entries; results
/// are byte-identical either way.
void set_reference_datapath(bool on);
bool reference_datapath();

class Mesh {
 public:
  explicit Mesh(MeshParams params);

  const MeshParams& params() const { return params_; }
  std::uint32_t nodes() const { return params_.width * params_.height; }
  std::int64_t cycle() const { return ref_ ? ref_->cycle() : cycle_; }

  NodeId node_at(std::uint32_t x, std::uint32_t y) const;
  std::uint32_t x_of(NodeId n) const { return n % params_.width; }
  std::uint32_t y_of(NodeId n) const { return n / params_.width; }
  std::uint32_t manhattan(NodeId a, NodeId b) const;

  /// Attach a sink to a node's ejection port (replaces the default
  /// ConsumeSink). The mesh keeps a non-owning pointer.
  void set_sink(NodeId node, Sink* sink);

  /// Queue a packet for injection at its source node.
  void inject(const PacketDesc& desc);

  /// Advance one cycle.
  void step();

  /// Run until all injected packets are fully ejected or `max_cycles`
  /// elapse. Returns true when drained.
  bool run_until_drained(std::int64_t max_cycles);

  /// Idle-cycle fast-forward (on by default): when nothing is buffered,
  /// queued, or active, run_until_drained() jumps `cycle_` straight to the
  /// next scheduled release instead of stepping empty cycles one at a time.
  /// Skipped cycles are observationally idle — no counter, stat, or sink
  /// callback would have fired — so results are identical either way; the
  /// toggle exists so equivalence tests can force the naive loop.
  void set_idle_skip(bool on) {
    if (ref_) ref_->set_idle_skip(on);
    idle_skip_ = on;
  }
  bool idle_skip() const { return idle_skip_; }

  /// True when no flit is buffered anywhere and no injection is pending.
  bool drained() const;

  const MeshActivity& activity() const {
    return ref_ ? ref_->activity() : activity_;
  }
  /// Packet latency (inject of head to eject of tail), in cycles.
  const RunningStats& packet_latency() const {
    return ref_ ? ref_->packet_latency() : packet_latency_;
  }
  /// Opt-in per-packet latency recording (for histograms); off by default
  /// to keep the big runs lean.
  void record_latencies(bool on) {
    if (ref_) ref_->record_latencies(on);
    record_latencies_ = on;
  }
  const std::vector<double>& latencies() const {
    return ref_ ? ref_->latencies() : latencies_;
  }
  /// Flits currently buffered in the network.
  std::uint64_t in_flight_flits() const {
    return ref_ ? ref_->in_flight_flits() : in_flight_flits_;
  }
  /// Packets injected but whose tail has not yet ejected.
  std::uint64_t in_flight_packets() const {
    return ref_ ? ref_->in_flight_packets() : in_flight_packets_;
  }
  /// True when this instance runs the retained reference datapath (set by
  /// set_reference_datapath() at construction, or forced by parameters the
  /// SoA layout does not encode, e.g. buffer_depth > 255).
  bool using_reference_datapath() const { return ref_ != nullptr; }

 private:
  // Port order: N, E, S, W, LOCAL-in (injection); outputs: N, E, S, W, EJECT.
  static constexpr int kPortN = 0;
  static constexpr int kPortE = 1;
  static constexpr int kPortS = 2;
  static constexpr int kPortW = 3;
  static constexpr int kPortLocal = 4;
  static constexpr int kPorts = 5;
  // Byte-wide sentinels: -1 as 0xFF so SWAR byte masks can test them.
  static constexpr std::int8_t kNoPort8 = -1;
  static constexpr std::int8_t kNoVc8 = -1;
  static constexpr std::int8_t kFree8 = -1;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;  // packet-list end
  static constexpr std::uint8_t kNoHint8 = 0xFF;      // serve_hint_ empty
  static constexpr std::uint32_t kNoWords = 0xFFFFFFFFu;

  /// Release-queue entry: just the packet id. Every other field of the
  /// original PacketDesc (including its payload vector) was captured into
  /// the pr_* / words_ arenas at inject() time, so releases are POD and the
  /// calendar queue never copies a heap allocation.
  struct Release {
    PacketId id;
  };

  /// A flit crossing a link this cycle. The fields were already written
  /// into the destination ring slot by hop_flit() — they stay invisible
  /// until the count increment commits at end of cycle (head + count is
  /// invariant under pops, so the slot index cannot shift) — leaving only
  /// the destination VC and its router to wake.
  struct Staged {
    std::uint32_t g;  // destination global input-VC index
    NodeId node;
  };

  std::uint32_t vcs() const { return params_.virtual_channels; }
  /// Global input-VC index: router n, port p, VC c. In packed mode the
  /// per-router lane stride is padded to 8 so the scans load one aligned
  /// word per router and lane updates can rewrite the containing word
  /// (keeping store-to-load forwarding size-matched; see lane helpers).
  std::uint32_t gvc(NodeId n, std::uint32_t p, std::uint32_t c) const {
    return n * stride_ + p * vcs() + c;
  }

  // Lane-update helpers for the scanned per-VC byte arrays. Packed mode
  // rewrites the whole (aligned, padded) router word so the next cycle's
  // word load forwards cleanly from the store buffer; a plain byte store
  // followed by a wider load stalls for ~a dozen cycles on current cores.
  static void lane_word_set(std::uint8_t* a, std::uint32_t g, std::uint8_t v);
  void cnt_add(std::uint32_t g, std::uint64_t delta);
  void rt_set(std::uint32_t g, std::uint8_t v);
  void ov_set(std::uint32_t g, std::uint8_t v);
  std::size_t slot_base(std::uint32_t g) const {
    return static_cast<std::size_t>(g) << fifo_shift_;
  }

  // Ring-slot word: packet id in the low half, sequence number in bits
  // [62:32], tail flag in bit 63 (inject() bounds payload_flits to 2^31-1).
  static std::uint64_t slot_word(PacketId packet, std::uint32_t seq,
                                 bool tail) {
    return static_cast<std::uint64_t>(packet) |
           (static_cast<std::uint64_t>(seq) << 32) |
           (static_cast<std::uint64_t>(tail) << 63);
  }
  Flit make_flit(std::uint64_t word) const;

  void arena_push(std::uint32_t g, std::uint64_t word);

  int neighbor(NodeId node, int out_port, NodeId* out_node) const;
  int compute_route(NodeId at, NodeId dst) const;
  // Returns the number of flits ejected this visit (0 or 1); step()
  // batches the per-eject activity counters from the sum.
  std::uint32_t step_router_packed(NodeId n);
  void step_router_generic(NodeId n);
  void update_routing_generic(NodeId n);
  bool serve_outputs_generic(NodeId n);
  bool eject_flit(NodeId n, std::uint32_t i);
  void hop_flit(NodeId n, std::uint32_t i, int o);
  // V == 1 specializations used by step_router_packed(): out-VC is always
  // 0, lane index == input port, and the downstream slot index comes from
  // vc_dest_ instead of the geometry tables.
  bool eject_flit_packed(NodeId n, std::uint32_t i, std::uint64_t w);
  void hop_flit_packed(NodeId n, std::uint32_t i, std::uint32_t o,
                       std::uint64_t word);
  bool serve_injection(NodeId n);
  void activate(NodeId n);
  void enqueue_packet(PacketId id);

  MeshParams params_;
  // Delegation target when the reference datapath is selected; every public
  // method forwards when non-null.
  std::unique_ptr<ReferenceMesh> ref_;

  std::uint32_t vc_total_ = 0;  // kPorts * virtual_channels
  std::uint32_t stride_ = 0;    // lane stride per router (8 when packed)
  std::uint32_t fifo_cap_ = 0;  // bit_ceil(buffer_depth)
  std::uint32_t fifo_mask_ = 0;
  std::uint32_t fifo_shift_ = 0;  // log2(fifo_cap_)
  bool packed_ = false;  // V == 1 SWAR fast path (little-endian only)

  // Flit arena: ring slot s = slot_base(g) + pos holds one packed
  // (packet, seq, tail) word; see slot_word() / make_flit().
  std::vector<std::uint64_t> a_slot_;

  // Per input VC, indexed by gvc(); byte arrays are padded by 8 so the SWAR
  // loads at the last router stay in bounds.
  std::vector<std::uint8_t> vc_head_;
  std::vector<std::uint8_t> vc_count_;
  std::vector<std::int8_t> vc_route_;    // kNoPort8 or output port
  std::vector<std::int8_t> vc_outvc_;    // kNoVc8 or downstream VC
  std::vector<std::uint8_t> vc_routing_; // t_r countdown in progress
  std::vector<std::uint32_t> vc_wait_;   // remaining t_r cycles

  // Per output VC (same indexing as input VCs).
  std::vector<std::int8_t> out_owner_;   // holding input-VC index or kFree8
  std::vector<std::uint8_t> credits_;    // toward the downstream buffer

  // Geometry tables, per (router, output port): downstream node and its
  // receiving port (-1 at a mesh edge). x_/y_ cache the coordinate split so
  // the hot paths never divide by the mesh width. cr_upcred_, per (router,
  // input port), resolves a credit return at push time: the upstream
  // credits_ index (for VC 0) in the high half, the upstream node id in the
  // low half.
  std::vector<NodeId> nbr_node_;
  std::vector<std::int8_t> nbr_in_;
  std::vector<std::uint32_t> x_;
  std::vector<std::uint32_t> y_;
  std::vector<std::uint64_t> cr_upcred_;
  // Packed mode: downstream global input-VC index per lane, resolved once
  // at out-VC allocation so the per-flit hop path never touches the
  // geometry tables. Valid only while the lane holds an allocated out-VC.
  std::vector<std::uint32_t> vc_dest_;
  // Packed mode, per node: `lane | out_port << 3` while the router is in
  // the streaming-worm state (exactly one occupied lane, routed and
  // allocated, empty inject queue), else kNoHint8. A hinted visit serves
  // that worm directly and skips the route/allocate/inject scan entirely;
  // the hint is dropped on a tail, a cross-lane arrival (end-of-cycle
  // commit), or a packet entering the node's inject queue.
  std::vector<std::uint8_t> serve_hint_;

  // Round-robin pointers, per (router, output port); generic path only —
  // with one VC per port every output has at most one allocated candidate,
  // so the packed path never consults them.
  std::vector<std::uint8_t> rr_next_;
  std::vector<std::uint8_t> vc_rr_;
  std::vector<std::uint8_t> inject_vc_rr_;  // per node

  // Packet records, indexed by PacketId: everything inject() captured from
  // the PacketDesc. pr_word_ points into words_ (kNoWords = synthesize
  // payload_base + i); pr_qnext_ is the intrusive inject-queue link.
  std::vector<NodeId> pr_src_;
  std::vector<NodeId> pr_dst_;
  std::vector<std::uint32_t> pr_flits_;  // payload flits (0 = head-tail)
  std::vector<std::uint64_t> pr_base_;
  std::vector<std::uint32_t> pr_word_;
  std::vector<std::uint32_t> pr_qnext_;
  std::vector<std::uint64_t> words_;  // payload word arena

  // Inject queues: one intrusive packet FIFO per (node, local VC), plus the
  // next flit seq to synthesize for the head packet.
  std::vector<std::uint32_t> q_head_;
  std::vector<std::uint32_t> q_tail_;
  std::vector<std::uint32_t> q_cursor_;
  std::uint64_t queued_flits_ = 0;

  CalendarQueue<Release> releases_;
  std::vector<Release> release_buf_;  // scratch for pop_due, reused
  // Smallest key in releases_ (INT64_MAX when empty), so the per-cycle path
  // touches the calendar queue only on cycles with a due release.
  std::int64_t next_release_due_ = std::numeric_limits<std::int64_t>::max();
  std::vector<Staged> staged_;
  // Credit returns, resolved at push: cr_upcred_ entry + (vc << 32).
  std::vector<std::uint64_t> credit_returns_;

  // Activity-gated simulation: only routers in the active set are stepped.
  // A router is in next_active_ iff its stamp equals active_epoch_ + 1; the
  // epoch bump at each step() retires the whole set without a clear loop.
  // The lists are sized nodes()+1 up front and filled through a manual
  // cursor so activate() can be branchless (see its definition).
  std::vector<NodeId> cur_active_;
  std::vector<NodeId> next_active_;
  std::uint32_t cur_active_size_ = 0;
  std::uint32_t next_active_size_ = 0;
  std::vector<std::uint64_t> active_stamp_;
  std::uint64_t active_epoch_ = 0;

  // Packet bookkeeping for latency stats: inject cycle by packet id.
  std::vector<std::int64_t> packet_inject_cycle_;
  RunningStats packet_latency_;
  bool record_latencies_ = false;
  std::vector<double> latencies_;

  std::vector<Sink*> sinks_;
  // Cached Sink::as_consume() downcast per node; non-null lets the ejection
  // path take ConsumeSink::accept_fast() when the sink is not logging.
  std::vector<ConsumeSink*> consume_sink_;
  std::vector<NodeId> stepped_sinks_;  // explicitly attached, need step()
  std::vector<std::unique_ptr<ConsumeSink>> default_sinks_;

  std::int64_t cycle_ = 0;
  std::uint64_t in_flight_flits_ = 0;
  std::uint64_t in_flight_packets_ = 0;
  bool idle_skip_ = true;
  MeshActivity activity_;
};

}  // namespace psync::mesh
