#include "psync/mesh/memory_interface.hpp"

#include "psync/common/check.hpp"

namespace psync::mesh {

MemoryInterface::MemoryInterface(MemoryInterfaceParams params,
                                 std::uint64_t expected_elements)
    : params_(params), expected_elements_(expected_elements) {
  if (params_.element_bits == 0) {
    throw SimulationError("MemoryInterface: element bits must be positive");
  }
  if (params_.dram.row_size_bits % params_.element_bits != 0) {
    throw SimulationError(
        "MemoryInterface: DRAM row must hold a whole number of elements");
  }
}

std::uint64_t MemoryInterface::row_write_cost(std::uint64_t rows) const {
  return rows * dram::row_transaction_cycles(params_.dram);
}

bool MemoryInterface::accept(const Flit& flit, std::int64_t cycle) {
  PSYNC_CHECK(cycle == now_);
  if (accepted_this_cycle_) return false;
  if (cycle < busy_until_) return false;

  accepted_this_cycle_ = true;
  if (flit.is_head() && !flit.is_tail()) {
    // Address header: decode is covered by the ejection cycle itself.
    packet_elements_ = 0;
    packet_src_ = flit.src;
    packet_base_ = flit.payload;
    return true;
  }

  // Data element (body/tail, or single-flit head-tail carrying one element).
  if (collector_) {
    collector_(packet_src_, packet_base_ + packet_elements_, flit.payload);
  }
  ++elements_received_;
  ++packet_elements_;
  row_fill_bits_ += params_.element_bits;

  if (flit.is_tail()) {
    ++packets_received_;
    // Reorder the whole packet, then burst any filled rows to DRAM.
    const std::uint64_t reorder =
        packet_elements_ * params_.reorder_cycles_per_element;
    std::uint64_t write = 0;
    if (row_fill_bits_ >= params_.dram.row_size_bits) {
      const std::uint64_t rows = row_fill_bits_ / params_.dram.row_size_bits;
      row_fill_bits_ %= params_.dram.row_size_bits;
      write = row_write_cost(rows);
    }
    const bool last = elements_received_ == expected_elements_;
    if (last && row_fill_bits_ > 0) {
      // Flush the final partial row.
      write += row_write_cost(1);
      row_fill_bits_ = 0;
    }
    dram_write_cycles_ += write;
    reorder_stall_cycles_ += reorder;
    if (!params_.overlap_stages) {
      busy_until_ = cycle + 1 + static_cast<std::int64_t>(reorder + write);
    } else {
      // Pipelined: the port keeps ejecting; only the DRAM bus time of the
      // *final* packet extends the completion point.
      busy_until_ = cycle + 1;
    }
    if (last) {
      completion_cycle_ =
          params_.overlap_stages
              ? cycle + 1 + static_cast<std::int64_t>(reorder + write)
              : busy_until_;
    }
    packet_elements_ = 0;
  }
  return true;
}

void MemoryInterface::step(std::int64_t cycle) {
  now_ = cycle;
  accepted_this_cycle_ = false;
}

bool MemoryInterface::done() const {
  return elements_received_ == expected_elements_ && now_ >= busy_until_;
}

}  // namespace psync::mesh
