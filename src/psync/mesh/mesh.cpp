#include "psync/mesh/mesh.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>

#include "psync/common/check.hpp"

namespace psync::mesh {

bool ConsumeSink::accept(const Flit& flit, std::int64_t cycle) {
  if (!accept_fast(flit.is_tail(), cycle)) return false;
  if (keep_log_) {
    log_.push_back(flit);
    log_cycles_.push_back(cycle);
  }
  return true;
}

namespace {

std::atomic<bool> g_reference_datapath{false};

constexpr int opposite(int port) {
  switch (port) {
    case 0: return 2;  // N <-> S
    case 1: return 3;  // E <-> W
    case 2: return 0;
    case 3: return 1;
    default: return -1;
  }
}

// Ring-slot word accessors (layout in slot_word()).
constexpr std::uint32_t slot_packet(std::uint64_t w) {
  return static_cast<std::uint32_t>(w);
}
constexpr std::uint32_t slot_seq(std::uint64_t w) {
  return static_cast<std::uint32_t>(w >> 32) & 0x7FFFFFFFu;
}
constexpr bool slot_tail(std::uint64_t w) { return (w >> 63) != 0; }
// Head flits (kHead or kHeadTail) are exactly those with seq == 0.
constexpr bool slot_head(std::uint64_t w) {
  return (w & 0x7FFFFFFF00000000ull) == 0;
}

// SWAR byte-lane masks over one aligned 64-bit load. In packed mode a
// router's five input VCs occupy the low five bytes of an 8-byte-aligned
// word of the per-VC state arrays; kMsb5 keeps only their lanes (the three
// high lanes are padding).
constexpr std::uint64_t kLsb8 = 0x0101010101010101ull;
constexpr std::uint64_t kMsb8 = 0x8080808080808080ull;
constexpr std::uint64_t kMsb5 = 0x0000008080808080ull;
constexpr std::uint64_t kMask5 = 0x000000FFFFFFFFFFull;

inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
inline std::uint64_t load_u64(const std::int8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// 0x80 in every byte lane whose value is nonzero.
inline std::uint64_t bytes_nonzero(std::uint64_t x) {
  return (((x & ~kMsb8) + ~kMsb8) | x) & kMsb8;
}
/// 0x80 in every byte lane equal to `b` (mask the result to the lanes you
/// mean — the complement covers all eight).
inline std::uint64_t bytes_eq(std::uint64_t x, std::uint8_t b) {
  return bytes_nonzero(x ^ (kLsb8 * b)) ^ kMsb8;
}
/// Lane index of the lowest set 0x80 bit.
inline std::uint32_t first_lane(std::uint64_t m) {
  return static_cast<std::uint32_t>(std::countr_zero(m)) >> 3;
}
/// Compress a 0x80-per-lane mask into one bit per lane (movemask).
inline std::uint32_t lane_bits(std::uint64_t m) {
  return static_cast<std::uint32_t>((m * 0x0002040810204081ull) >> 56);
}

}  // namespace

void set_reference_datapath(bool on) {
  g_reference_datapath.store(on, std::memory_order_relaxed);
}
bool reference_datapath() {
  return g_reference_datapath.load(std::memory_order_relaxed);
}

Mesh::Mesh(MeshParams params) : params_(params) {
  if (params_.width == 0 || params_.height == 0) {
    throw SimulationError("Mesh: dimensions must be positive");
  }
  if (params_.buffer_depth == 0) {
    throw SimulationError("Mesh: buffer depth must be positive");
  }
  if (params_.virtual_channels == 0 || params_.virtual_channels > 16) {
    throw SimulationError("Mesh: virtual channels must be in [1, 16]");
  }
  // The SoA layout packs FIFO occupancy and credits into bytes; depths that
  // do not fit take the reference datapath (correct, just not vectorized).
  if (reference_datapath() || params_.buffer_depth > 255) {
    ref_ = std::make_unique<ReferenceMesh>(params_);
    return;
  }

  const std::uint32_t n = nodes();
  const std::uint32_t v = vcs();
  vc_total_ = static_cast<std::uint32_t>(kPorts) * v;
  fifo_cap_ = std::bit_ceil(params_.buffer_depth);
  fifo_mask_ = fifo_cap_ - 1;
  fifo_shift_ = static_cast<std::uint32_t>(std::countr_zero(fifo_cap_));
  packed_ = v == 1 && std::endian::native == std::endian::little;
  // Packed mode pads each router's five lanes to an aligned 8-byte word so
  // the scans load exactly one word per router and the lane-update helpers
  // can rewrite the containing word (store-to-load forwarding stays
  // size-matched; a byte store under a later word load stalls the pipe).
  stride_ = packed_ ? 8u : vc_total_;

  const std::size_t total_lanes = static_cast<std::size_t>(n) * stride_;
  a_slot_.assign(total_lanes * fifo_cap_, 0);

  // +8 pad so word loads/stores at the last router never touch memory past
  // the allocation (packed loads are aligned, but keep the slack for the
  // generic path's unaligned reads too).
  vc_head_.assign(total_lanes + 8, 0);
  vc_count_.assign(total_lanes + 8, 0);
  vc_route_.assign(total_lanes + 8, kNoPort8);
  vc_outvc_.assign(total_lanes + 8, kNoVc8);
  vc_routing_.assign(total_lanes + 8, 0);
  vc_wait_.assign(total_lanes, 0);

  out_owner_.assign(total_lanes, kFree8);
  credits_.assign(total_lanes, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (int p = 0; p < kPortLocal; ++p) {
      NodeId dummy;
      if (neighbor(i, p, &dummy) < 0) continue;
      for (std::uint32_t c = 0; c < v; ++c) {
        // Credits exist only toward real neighbors; eject has none.
        credits_[gvc(i, static_cast<std::uint32_t>(p), c)] =
            static_cast<std::uint8_t>(params_.buffer_depth);
      }
    }
  }

  nbr_node_.assign(static_cast<std::size_t>(n) * kPorts, 0);
  nbr_in_.assign(static_cast<std::size_t>(n) * kPorts, -1);
  cr_upcred_.assign(static_cast<std::size_t>(n) * kPorts, 0);
  x_.resize(n);
  y_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    x_[i] = x_of(i);
    y_[i] = y_of(i);
    for (int p = 0; p < kPorts; ++p) {
      NodeId to;
      const int in_port = neighbor(i, p, &to);
      const std::size_t e = static_cast<std::size_t>(i) * kPorts +
                            static_cast<std::uint32_t>(p);
      if (in_port >= 0) {
        nbr_node_[e] = to;
        nbr_in_[e] = static_cast<std::int8_t>(in_port);
        // A flit arriving at (i, p) came from `to` through its port
        // opposite(p); the credit goes back to that output's VC bank.
        cr_upcred_[e] =
            (static_cast<std::uint64_t>(
                 gvc(to, static_cast<std::uint32_t>(opposite(p)), 0))
             << 32) |
            to;
      }
    }
  }

  rr_next_.assign(static_cast<std::size_t>(n) * kPorts, 0);
  vc_rr_.assign(static_cast<std::size_t>(n) * kPorts, 0);
  inject_vc_rr_.assign(n, 0);

  q_head_.assign(static_cast<std::size_t>(n) * v, kNil);
  q_tail_.assign(static_cast<std::size_t>(n) * v, kNil);
  q_cursor_.assign(static_cast<std::size_t>(n) * v, 0);

  active_stamp_.assign(n, 0);
  sinks_.resize(n, nullptr);
  default_sinks_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    default_sinks_[i] = std::make_unique<ConsumeSink>();
    sinks_[i] = default_sinks_[i].get();
  }
  vc_dest_.assign(total_lanes, 0);
  serve_hint_.assign(n, kNoHint8);
  consume_sink_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    consume_sink_[i] = default_sinks_[i].get();
  }
  // Worst case per cycle: four hops and five credit returns per router.
  staged_.reserve(static_cast<std::size_t>(n) * 4);
  credit_returns_.reserve(static_cast<std::size_t>(n) * kPorts);
  // +1 slot: activate()'s speculative store lands one past the cursor even
  // when every node is already stamped.
  cur_active_.resize(n + 1);
  next_active_.resize(n + 1);
}

NodeId Mesh::node_at(std::uint32_t x, std::uint32_t y) const {
  PSYNC_CHECK(x < params_.width && y < params_.height);
  return y * params_.width + x;
}

std::uint32_t Mesh::manhattan(NodeId a, NodeId b) const {
  const auto dx = static_cast<std::int64_t>(x_of(a)) - x_of(b);
  const auto dy = static_cast<std::int64_t>(y_of(a)) - y_of(b);
  return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
}

void Mesh::set_sink(NodeId node, Sink* sink) {
  if (ref_) {
    ref_->set_sink(node, sink);
    return;
  }
  PSYNC_CHECK(node < nodes());
  PSYNC_CHECK(sink != nullptr);
  sinks_[node] = sink;
  consume_sink_[node] = sink->as_consume();
  if (sink->needs_step()) stepped_sinks_.push_back(node);
}

void Mesh::lane_word_set(std::uint8_t* a, std::uint32_t g, std::uint8_t v) {
  std::uint8_t* const p = a + (g & ~std::uint32_t{7});
  std::uint64_t w;
  std::memcpy(&w, p, sizeof w);
  const std::uint32_t sh = 8 * (g & 7u);
  w = (w & ~(std::uint64_t{0xFF} << sh)) | (std::uint64_t{v} << sh);
  std::memcpy(p, &w, sizeof w);
}

void Mesh::cnt_add(std::uint32_t g, std::uint64_t delta) {
  if (packed_) {
    // Counts are nonzero before a decrement and below depth before an
    // increment, so the lane arithmetic never carries across byte lanes.
    std::uint8_t* const p = vc_count_.data() + (g & ~std::uint32_t{7});
    std::uint64_t w;
    std::memcpy(&w, p, sizeof w);
    w += delta << (8 * (g & 7u));
    std::memcpy(p, &w, sizeof w);
  } else {
    vc_count_[g] = static_cast<std::uint8_t>(
        vc_count_[g] + static_cast<std::uint8_t>(delta));
  }
}

void Mesh::rt_set(std::uint32_t g, std::uint8_t v) {
  if (packed_) {
    lane_word_set(reinterpret_cast<std::uint8_t*>(vc_route_.data()), g, v);
  } else {
    vc_route_[g] = static_cast<std::int8_t>(v);
  }
}

void Mesh::ov_set(std::uint32_t g, std::uint8_t v) {
  if (packed_) {
    lane_word_set(reinterpret_cast<std::uint8_t*>(vc_outvc_.data()), g, v);
  } else {
    vc_outvc_[g] = static_cast<std::int8_t>(v);
  }
}

void Mesh::arena_push(std::uint32_t g, std::uint64_t word) {
  PSYNC_DCHECK(vc_count_[g] < params_.buffer_depth);  // callers check first
  const std::size_t s =
      slot_base(g) + ((static_cast<std::uint32_t>(vc_head_[g]) + vc_count_[g]) &
                      fifo_mask_);
  a_slot_[s] = word;
  cnt_add(g, 1);
  ++activity_.buffer_writes;
}

Flit Mesh::make_flit(std::uint64_t word) const {
  const std::uint32_t pkt = slot_packet(word);
  const std::uint32_t seq = slot_seq(word);
  const std::uint32_t nflits = pr_flits_[pkt];
  FlitKind kind;
  std::uint64_t payload;
  if (seq == 0) {
    kind = nflits == 0 ? FlitKind::kHeadTail : FlitKind::kHead;
    payload = pr_base_[pkt];
  } else {
    kind = seq == nflits ? FlitKind::kTail : FlitKind::kBody;
    payload = pr_word_[pkt] == kNoWords ? pr_base_[pkt] + (seq - 1)
                                        : words_[pr_word_[pkt] + (seq - 1)];
  }
  return Flit{pkt, pr_src_[pkt], pr_dst_[pkt], seq, kind, payload};
}

int Mesh::neighbor(NodeId node, int out_port, NodeId* out_node) const {
  const std::uint32_t x = x_of(node);
  const std::uint32_t y = y_of(node);
  switch (out_port) {
    case kPortN:
      if (y == 0) return -1;
      *out_node = node_at(x, y - 1);
      return kPortS;
    case kPortE:
      if (x + 1 >= params_.width) return -1;
      *out_node = node_at(x + 1, y);
      return kPortW;
    case kPortS:
      if (y + 1 >= params_.height) return -1;
      *out_node = node_at(x, y + 1);
      return kPortN;
    case kPortW:
      if (x == 0) return -1;
      *out_node = node_at(x - 1, y);
      return kPortE;
    default:
      return -1;
  }
}

int Mesh::compute_route(NodeId at, NodeId dst) const {
  const auto dx = static_cast<std::int64_t>(x_[dst]) - x_[at];
  const auto dy = static_cast<std::int64_t>(y_[dst]) - y_[at];
  if (dx == 0 && dy == 0) return kPortLocal;  // eject

  if (params_.algo == RouteAlgo::kXY) {
    if (dx > 0) return kPortE;
    if (dx < 0) return kPortW;
    return dy > 0 ? kPortS : kPortN;
  }

  // West-first minimal adaptive (deadlock-free turn model): any packet that
  // must move west does so first, deterministically; otherwise choose the
  // minimal direction with more total credits (less congestion).
  if (dx < 0) return kPortW;
  int best = -1;
  int best_credits = -1;
  auto consider = [&](int port) {
    int c = 0;
    for (std::uint32_t vc = 0; vc < vcs(); ++vc) {
      c += credits_[gvc(at, static_cast<std::uint32_t>(port), vc)];
    }
    if (c > best_credits) {
      best_credits = c;
      best = port;
    }
  };
  if (dx > 0) consider(kPortE);
  if (dy > 0) consider(kPortS);
  if (dy < 0) consider(kPortN);
  PSYNC_CHECK(best >= 0);
  return best;
}

bool Mesh::eject_flit(NodeId n, std::uint32_t i) {
  const std::uint32_t g = n * stride_ + i;
  const std::size_t s = slot_base(g) + vc_head_[g];
  const Flit front = make_flit(a_slot_[s]);
  if (!sinks_[n]->accept(front, cycle_)) return false;
  vc_head_[g] = static_cast<std::uint8_t>(
      (static_cast<std::uint32_t>(vc_head_[g]) + 1) & fifo_mask_);
  cnt_add(g, static_cast<std::uint64_t>(-1));
  ++activity_.buffer_reads;
  ++activity_.ejected_flits;
  const std::uint32_t in_port = i / vcs();
  if (in_port < static_cast<std::uint32_t>(kPortLocal)) {
    credit_returns_.push_back(
        cr_upcred_[static_cast<std::size_t>(n) * kPorts + in_port] +
        (static_cast<std::uint64_t>(i % vcs()) << 32));
  }
  if (front.is_tail()) {
    out_owner_[gvc(n, kPortLocal, static_cast<std::uint32_t>(vc_outvc_[g]))] =
        kFree8;
    rt_set(g, 0xFF);
    ov_set(g, 0xFF);
    ++activity_.ejected_packets;
    PSYNC_DCHECK(front.packet < packet_inject_cycle_.size());
    const auto lat =
        static_cast<double>(cycle_ - packet_inject_cycle_[front.packet]);
    packet_latency_.add(lat);
    if (record_latencies_) latencies_.push_back(lat);
    PSYNC_DCHECK(in_flight_packets_ > 0);
    --in_flight_packets_;
  }
  PSYNC_DCHECK(in_flight_flits_ > 0);
  --in_flight_flits_;
  return true;
}

void Mesh::hop_flit(NodeId n, std::uint32_t i, int o) {
  const std::size_t e =
      static_cast<std::size_t>(n) * kPorts + static_cast<std::uint32_t>(o);
  const NodeId next_node = nbr_node_[e];
  const int next_in = nbr_in_[e];
  PSYNC_DCHECK(next_in >= 0);  // routes never point off the mesh edge
  const std::uint32_t g = n * stride_ + i;
  const auto out_vc = static_cast<std::uint32_t>(vc_outvc_[g]);
  const std::uint64_t word = a_slot_[slot_base(g) + vc_head_[g]];
  // Write the flit into the downstream slot now; the credit protocol
  // guarantees a free slot, and it stays invisible until the count
  // increment commits at end of cycle.
  const std::uint32_t dg =
      gvc(next_node, static_cast<std::uint32_t>(next_in), out_vc);
  PSYNC_DCHECK(vc_count_[dg] < params_.buffer_depth);
  a_slot_[slot_base(dg) + ((static_cast<std::uint32_t>(vc_head_[dg]) +
                            vc_count_[dg]) &
                           fifo_mask_)] = word;
  staged_.push_back(Staged{dg, next_node});
  vc_head_[g] = static_cast<std::uint8_t>(
      (static_cast<std::uint32_t>(vc_head_[g]) + 1) & fifo_mask_);
  cnt_add(g, static_cast<std::uint64_t>(-1));
  ++activity_.buffer_reads;
  --credits_[gvc(n, static_cast<std::uint32_t>(o), out_vc)];
  ++activity_.crossbar_traversals;
  ++activity_.link_traversals;
  const std::uint32_t in_port = i / vcs();
  if (in_port < static_cast<std::uint32_t>(kPortLocal)) {
    credit_returns_.push_back(
        cr_upcred_[static_cast<std::size_t>(n) * kPorts + in_port] +
        (static_cast<std::uint64_t>(i % vcs()) << 32));
  }
  if (slot_tail(word)) {
    out_owner_[gvc(n, static_cast<std::uint32_t>(o), out_vc)] = kFree8;
    rt_set(g, 0xFF);
    ov_set(g, 0xFF);
  }
}

bool Mesh::eject_flit_packed(NodeId n, std::uint32_t i, std::uint64_t w) {
  // V == 1 specialization of eject_flit(): the allocated out-VC is always 0
  // and lane index == input port, and a cached ConsumeSink that is not
  // logging needs only the tail flag — no Flit reconstruction, no virtual
  // dispatch. `w` is the lane's head slot word, preloaded by the caller.
  const std::uint32_t g = n * 8u + i;
  ConsumeSink* const cs = consume_sink_[n];
  const bool ok = cs != nullptr && !cs->logging()
                      ? cs->accept_fast(slot_tail(w), cycle_)
                      : sinks_[n]->accept(make_flit(w), cycle_);
  if (!ok) return false;
  // buffer_reads and ejected_flits are batched per step from the caller's
  // eject count (exactly one of each per successful eject).
  vc_head_[g] = static_cast<std::uint8_t>(
      (static_cast<std::uint32_t>(vc_head_[g]) + 1) & fifo_mask_);
  cnt_add(g, static_cast<std::uint64_t>(-1));
  if (i < static_cast<std::uint32_t>(kPortLocal)) {
    credit_returns_.push_back(
        cr_upcred_[static_cast<std::size_t>(n) * kPorts + i]);
  }
  if (slot_tail(w)) {
    out_owner_[n * 8u + kPortLocal] = kFree8;
    rt_set(g, 0xFF);
    ov_set(g, 0xFF);
    ++activity_.ejected_packets;
    const std::uint32_t pkt = slot_packet(w);
    PSYNC_DCHECK(pkt < packet_inject_cycle_.size());
    const auto lat = static_cast<double>(cycle_ - packet_inject_cycle_[pkt]);
    packet_latency_.add(lat);
    if (record_latencies_) latencies_.push_back(lat);
    PSYNC_DCHECK(in_flight_packets_ > 0);
    --in_flight_packets_;
  }
  PSYNC_DCHECK(in_flight_flits_ > 0);
  --in_flight_flits_;
  return true;
}

void Mesh::hop_flit_packed(NodeId n, std::uint32_t i, std::uint32_t o,
                           std::uint64_t word) {
  // V == 1 specialization of hop_flit(): out-VC 0, lane index == input
  // port, and the downstream slot index was cached at allocation time
  // (vc_dest_), so the geometry tables stay out of the per-flit path.
  // `word` is the lane's head slot word, already loaded by every caller
  // for its tail test — passing it through keeps the scattered arena read
  // off the per-flit path.
  const std::uint32_t g = n * 8u + i;
  const std::uint32_t dg = vc_dest_[g];
  PSYNC_DCHECK(vc_count_[dg] < params_.buffer_depth);
  a_slot_[slot_base(dg) + ((static_cast<std::uint32_t>(vc_head_[dg]) +
                            vc_count_[dg]) &
                           fifo_mask_)] = word;
  staged_.push_back(Staged{dg, dg >> 3});
  // buffer_reads / crossbar_traversals / link_traversals are batched per
  // step from the staged count (exactly one of each per hop), keeping
  // uint64 member read-modify-writes out of the per-flit path — the byte
  // stores above alias everything, so the compiler could not cache them.
  vc_head_[g] = static_cast<std::uint8_t>(
      (static_cast<std::uint32_t>(vc_head_[g]) + 1) & fifo_mask_);
  cnt_add(g, static_cast<std::uint64_t>(-1));
  --credits_[n * 8u + o];
  if (i < static_cast<std::uint32_t>(kPortLocal)) {
    credit_returns_.push_back(
        cr_upcred_[static_cast<std::size_t>(n) * kPorts + i]);
  }
  if (slot_tail(word)) {
    out_owner_[n * 8u + o] = kFree8;
    rt_set(g, 0xFF);
    ov_set(g, 0xFF);
  }
}

bool Mesh::serve_injection(NodeId n) {
  // One flit per cycle total across the node's local VCs, round-robin.
  const std::uint32_t v = vcs();
  for (std::uint32_t k = 0; k < v; ++k) {
    std::uint32_t vc = inject_vc_rr_[n] + k;
    if (vc >= v) vc -= v;
    const std::size_t qi = static_cast<std::size_t>(n) * v + vc;
    const std::uint32_t pkt = q_head_[qi];
    if (pkt == kNil) continue;
    const std::uint32_t g = gvc(n, kPortLocal, vc);
    if (vc_count_[g] >= params_.buffer_depth) continue;

    // Emit flit `cur` of the head packet: the slot word carries everything
    // the datapath needs; the remaining fields are derived at eject.
    const std::uint32_t cur = q_cursor_[qi];
    const std::uint32_t nflits = pr_flits_[pkt];
    if (cur == 0) packet_inject_cycle_[pkt] = cycle_;
    arena_push(g, slot_word(pkt, cur, cur >= nflits));
    ++activity_.injected_flits;
    ++in_flight_flits_;
    PSYNC_DCHECK(queued_flits_ > 0);
    --queued_flits_;

    if (cur >= nflits) {  // tail (or head-tail) emitted: next packet
      q_head_[qi] = pr_qnext_[pkt];
      if (q_head_[qi] == kNil) q_tail_[qi] = kNil;
      q_cursor_[qi] = 0;
    } else {
      q_cursor_[qi] = cur + 1;
    }
    const std::uint32_t next_vc = vc + 1;
    inject_vc_rr_[n] = static_cast<std::uint8_t>(next_vc >= v ? 0 : next_vc);
    return true;
  }
  return false;
}

void Mesh::activate(NodeId n) {
  // Branchless dedupe: the store is speculative (the list has a spare
  // slot), the cursor advances only on a fresh stamp. This runs ~20 times
  // a cycle with a data-dependent hit rate, so a compare-and-branch here
  // is a steady source of mispredicts.
  const std::uint64_t tag = active_epoch_ + 1;
  next_active_[next_active_size_] = n;
  next_active_size_ += active_stamp_[n] != tag;
  active_stamp_[n] = tag;
}

void Mesh::enqueue_packet(PacketId id) {
  // A non-empty inject queue ends the streaming-worm state for the source
  // router (the hinted visit skips the injection check).
  serve_hint_[pr_src_[id]] = kNoHint8;
  queued_flits_ += pr_flits_[id] == 0 ? 1 : pr_flits_[id] + 1;
  // Assign the whole packet to one local VC, rotating per packet.
  const std::uint32_t vc = id % vcs();
  const std::size_t qi = static_cast<std::size_t>(pr_src_[id]) * vcs() + vc;
  pr_qnext_[id] = kNil;
  if (q_tail_[qi] == kNil) {
    q_head_[qi] = id;
    q_cursor_[qi] = 0;
  } else {
    pr_qnext_[q_tail_[qi]] = id;
  }
  q_tail_[qi] = id;
}

void Mesh::inject(const PacketDesc& desc) {
  if (ref_) {
    ref_->inject(desc);
    return;
  }
  PSYNC_CHECK(desc.src < nodes());
  PSYNC_CHECK(desc.dst < nodes());
  PSYNC_CHECK_MSG(desc.words.empty() || desc.words.size() == desc.payload_flits,
                  "PacketDesc.words size must match payload_flits");
  // The ring-slot word keeps the sequence number in 31 bits (bit 63 is the
  // tail flag); a packet this long could not be buffered anyway.
  PSYNC_CHECK_MSG(desc.payload_flits < 0x80000000u,
                  "payload_flits exceeds 2^31-1");
  const PacketId id = static_cast<PacketId>(packet_inject_cycle_.size());
  packet_inject_cycle_.push_back(-1);
  pr_src_.push_back(desc.src);
  pr_dst_.push_back(desc.dst);
  pr_flits_.push_back(desc.payload_flits);
  pr_base_.push_back(desc.payload_base);
  pr_qnext_.push_back(kNil);
  if (desc.words.empty()) {
    pr_word_.push_back(kNoWords);
  } else {
    pr_word_.push_back(static_cast<std::uint32_t>(words_.size()));
    words_.insert(words_.end(), desc.words.begin(), desc.words.end());
  }
  ++activity_.injected_packets;
  ++in_flight_packets_;
  if (desc.release_cycle <= cycle_) {
    enqueue_packet(id);
    activate(desc.src);
  } else {
    releases_.push(desc.release_cycle, Release{id});
    if (desc.release_cycle < next_release_due_) {
      next_release_due_ = desc.release_cycle;
    }
  }
}

void Mesh::update_routing_generic(NodeId n) {
  const std::uint32_t base = n * stride_;
  const std::uint32_t v = vcs();
  for (std::uint32_t i = 0; i < vc_total_; ++i) {
    const std::uint32_t g = base + i;
    // Route computation for a new head flit at the FIFO front.
    if (vc_count_[g] > 0 && vc_route_[g] == kNoPort8) {
      const std::uint64_t w = a_slot_[slot_base(g) + vc_head_[g]];
      if (slot_head(w)) {
        const NodeId dst = pr_dst_[slot_packet(w)];
        if (!vc_routing_[g]) {
          vc_routing_[g] = 1;
          vc_wait_[g] = params_.route_delay;
          if (vc_wait_[g] == 0) {
            vc_route_[g] = static_cast<std::int8_t>(compute_route(n, dst));
            vc_routing_[g] = 0;
          }
        } else if (--vc_wait_[g] == 0) {
          vc_route_[g] = static_cast<std::int8_t>(compute_route(n, dst));
          vc_routing_[g] = 0;
        }
      }
    }
    // Output-VC allocation once the route is known. The eject "output" has
    // a single lock (VC 0) so packets never interleave at a sink.
    if (vc_route_[g] != kNoPort8 && vc_outvc_[g] == kNoVc8) {
      const auto o = static_cast<std::uint32_t>(vc_route_[g]);
      const std::uint32_t limit = o == kPortLocal ? 1 : v;
      const std::uint32_t start =
          o == kPortLocal ? 0 : vc_rr_[n * kPorts + o];
      for (std::uint32_t k = 0; k < limit; ++k) {
        std::uint32_t cand = start + k;
        if (cand >= limit) cand -= limit;
        auto& owner = out_owner_[base + o * v + cand];
        if (owner == kFree8) {
          owner = static_cast<std::int8_t>(i);
          vc_outvc_[g] = static_cast<std::int8_t>(cand);
          if (o != kPortLocal) {
            const std::uint32_t nxt = cand + 1;
            vc_rr_[n * kPorts + o] =
                static_cast<std::uint8_t>(nxt >= limit ? 0 : nxt);
          }
          ++activity_.arbitrations;
          break;
        }
      }
    }
  }
}

bool Mesh::serve_outputs_generic(NodeId n) {
  bool progress = false;
  const std::uint32_t base = n * stride_;
  const std::uint32_t v = vcs();
  for (int o = 0; o < kPorts; ++o) {
    // Switch allocation: one flit per output per cycle, round-robin over
    // input VCs holding an allocated out-VC toward this output.
    std::int64_t chosen = -1;
    const std::uint32_t rr = rr_next_[static_cast<std::size_t>(n) * kPorts +
                                      static_cast<std::uint32_t>(o)];
    for (std::uint32_t k = 0; k < vc_total_; ++k) {
      std::uint32_t i = rr + k;
      if (i >= vc_total_) i -= vc_total_;
      const std::uint32_t g = base + i;
      if (vc_count_[g] == 0 || vc_route_[g] != static_cast<std::int8_t>(o) ||
          vc_outvc_[g] == kNoVc8) {
        continue;
      }
      if (o == kPortLocal) {
        chosen = i;
        break;
      }
      if (credits_[base + static_cast<std::uint32_t>(o) * v +
                   static_cast<std::uint32_t>(vc_outvc_[g])] > 0) {
        chosen = i;
        break;
      }
    }
    if (chosen < 0) continue;
    const auto i = static_cast<std::uint32_t>(chosen);
    const bool served =
        o == kPortLocal ? eject_flit(n, i) : (hop_flit(n, i, o), true);
    if (!served) continue;
    progress = true;
    const std::uint32_t next_rr = i + 1;
    rr_next_[static_cast<std::size_t>(n) * kPorts +
             static_cast<std::uint32_t>(o)] =
        static_cast<std::uint8_t>(next_rr >= vc_total_ ? 0 : next_rr);
  }
  return progress;
}

void Mesh::step_router_generic(NodeId n) {
  update_routing_generic(n);
  bool progress = serve_outputs_generic(n);
  progress |= serve_injection(n);

  // Sources with pending injections stay active only while some local
  // input VC has room; once all are full they sleep until a pop at this
  // router (progress) frees a slot.
  const std::uint32_t v = vcs();
  bool keep = progress;
  if (!keep) {
    for (std::uint32_t vc = 0; vc < v && !keep; ++vc) {
      if (q_head_[static_cast<std::size_t>(n) * v + vc] != kNil &&
          vc_count_[gvc(n, kPortLocal, vc)] < params_.buffer_depth) {
        keep = true;
      }
    }
  }
  if (!keep) {
    const std::uint32_t base = n * stride_;
    for (std::uint32_t i = 0; i < vc_total_ && !keep; ++i) {
      if (vc_routing_[base + i]) keep = true;  // countdown ticks every cycle
      // (A head waiting for a busy out-VC needs no polling: the VC frees
      // when the holder's tail pops at THIS router, which is progress and
      // keeps the router active for the next cycle's allocation.)
      // Eject-blocked inputs must retry the sink every cycle.
      if (vc_count_[base + i] > 0 &&
          vc_route_[base + i] == static_cast<std::int8_t>(kPortLocal)) {
        keep = true;
      }
    }
  }
  if (keep) activate(n);
}

std::uint32_t Mesh::step_router_packed(NodeId n) {
  // Streaming-worm fast path: while exactly one lane holds flits and that
  // worm is routed and allocated with nothing queued for injection, every
  // visit can only repeat the same serve decision, so the hint replays it
  // directly — one occupancy byte and one credit byte — without the mask
  // scan below. The actions taken are exactly what the full scan would
  // choose (a single-lane `ready`, idle route/alloc/inject phases), so
  // observable behavior is identical.
  const std::uint32_t hint = serve_hint_[n];
  if (hint != kNoHint8) {
    const std::uint32_t i = hint & 7u;
    const std::uint32_t o = hint >> 3;
    const std::uint32_t g = n * 8u + i;
    if (vc_count_[g] == 0) {
      return 0;  // nothing buffered: the next arrival wakes
    }
    if (o == static_cast<std::uint32_t>(kPortLocal)) {
      const std::uint64_t w = a_slot_[slot_base(g) + vc_head_[g]];
      if (eject_flit_packed(n, i, w)) {
        if (slot_tail(w)) serve_hint_[n] = kNoHint8;
        activate(n);
        return 1;
      }
      activate(n);  // eject-blocked: retry the sink next cycle
      return 0;
    }
    if (credits_[n * 8u + o] > 0) {
      const std::uint64_t w = a_slot_[slot_base(g) + vc_head_[g]];
      hop_flit_packed(n, i, o, w);
      if (slot_tail(w)) serve_hint_[n] = kNoHint8;
      activate(n);
    }
    // No credit: the credit return re-activates this router.
    return 0;
  }

  // V == 1: the router's five input VCs are five consecutive bytes, one per
  // port, and every output has at most one allocated candidate (out-VC
  // ownership is exclusive), so the round-robin pointers are unobservable
  // and each serve decision reduces to a byte-mask test. The state words
  // are loaded once and kept coherent in registers as lanes change; the
  // keep-awake checks reuse them, since when nothing progressed nothing
  // was stored either.
  // Byte stores below may alias any member through the char lvalues, so
  // hoist the hot pointers and parameters into locals once.
  std::uint8_t* const vcnt = vc_count_.data();
  std::int8_t* const vrt = vc_route_.data();
  std::int8_t* const vov = vc_outvc_.data();
  const std::uint32_t depth = params_.buffer_depth;

  const std::uint32_t base = n * 8u;
  const std::uint64_t cnt = load_u64(vcnt + base);
  std::uint64_t rt = load_u64(vrt + base);
  const std::uint64_t ov = load_u64(vov + base);
  const std::uint64_t occ = bytes_nonzero(cnt) & kMsb5;

  // Route computation for new head flits.
  std::uint64_t rt_none = bytes_eq(rt, 0xFF);
  std::uint64_t need = occ & rt_none;
  bool any_routing = false;  // a countdown is still pending after this phase
  while (need) {
    const std::uint32_t i = first_lane(need);
    need &= need - 1;
    const std::uint32_t g = base + i;
    const std::uint64_t w = a_slot_[slot_base(g) + vc_head_[g]];
    if (!slot_head(w)) continue;
    if (!vc_routing_[g]) {
      vc_routing_[g] = 1;
      vc_wait_[g] = params_.route_delay;
      if (vc_wait_[g] != 0) {
        any_routing = true;
        continue;
      }
    } else if (--vc_wait_[g] != 0) {
      any_routing = true;
      continue;
    }
    const auto route =
        static_cast<std::uint8_t>(compute_route(n, pr_dst_[slot_packet(w)]));
    lane_word_set(reinterpret_cast<std::uint8_t*>(vrt), g, route);
    vc_routing_[g] = 0;
    rt = (rt & ~(std::uint64_t{0xFF} << (8 * i))) |
         (std::uint64_t{route} << (8 * i));
    rt_none &= ~(std::uint64_t{0x80} << (8 * i));
  }

  // Output-VC allocation (ascending VC order, like the reference loop).
  std::uint64_t ov_none = bytes_eq(ov, 0xFF);
  std::uint64_t alloc = ~rt_none & ov_none & kMsb5;
  while (alloc) {
    const std::uint32_t i = first_lane(alloc);
    alloc &= alloc - 1;
    const std::uint32_t g = base + i;
    const auto o = static_cast<std::uint32_t>(vrt[g]);
    auto& owner = out_owner_[base + o];
    if (owner == kFree8) {
      owner = static_cast<std::int8_t>(i);
      lane_word_set(reinterpret_cast<std::uint8_t*>(vov), g, 0);
      ov_none &= ~(std::uint64_t{0x80} << (8 * i));
      if (o != static_cast<std::uint32_t>(kPortLocal)) {
        // Resolve the downstream input-VC slot once per packet; every flit
        // of the worm reuses it (hop_flit_packed).
        const std::size_t e = static_cast<std::size_t>(n) * kPorts + o;
        vc_dest_[g] =
            gvc(nbr_node_[e], static_cast<std::uint32_t>(nbr_in_[e]), 0);
      }
      ++activity_.arbitrations;
    }
  }

  // Serve outputs in port order from one snapshot: a served VC's byte
  // matches exactly one output lane, so later outputs are unaffected.
  // Out-VC exclusivity means at most one ready lane per output, so the
  // lanes map 1:1 onto a 5-bit output set served in ascending port order
  // (the reference serving order). The lane->output scatter is a fixed
  // branchless unroll (non-ready lanes land in a junk slot), and the
  // per-output credit test folds into the mask up front, so the only
  // data-dependent branches left are the serve loops themselves.
  bool progress = false;
  std::uint8_t new_hint = kNoHint8;
  std::uint32_t ejected = 0;
  const std::uint64_t ready = occ & ~rt_none & ~ov_none;
  if (ready) {
    if ((ready & (ready - 1)) == 0) {
      // One ready lane (the common case): the scatter and the credit fold
      // collapse to a single route-byte and credit-byte test.
      const std::uint32_t i = first_lane(ready);
      const std::uint32_t o = static_cast<std::uint32_t>(rt >> (8 * i)) & 7u;
      const std::uint32_t g = base + i;
      const std::uint64_t w = a_slot_[slot_base(g) + vc_head_[g]];
      const bool tail = slot_tail(w);
      if (o == static_cast<std::uint32_t>(kPortLocal)) {
        progress = eject_flit_packed(n, i, w);
        ejected = progress ? 1u : 0u;
      } else if (credits_[base + o] > 0) {
        hop_flit_packed(n, i, o, w);
        progress = true;
      }
      // Arm the streaming-worm hint when this lane is the only occupied
      // one and its worm continues here (the tail, if any, stayed put).
      if ((occ & ~(std::uint64_t{0x80} << (8 * i))) == 0 &&
          !(progress && tail)) {
        new_hint = static_cast<std::uint8_t>(i | (o << 3));
      }
    } else {
      std::uint8_t lane_for[8];
      std::uint32_t by_o = 0;
      for (std::uint32_t i = 0; i < 5; ++i) {
        const std::uint32_t rb =
            static_cast<std::uint32_t>(ready >> (8 * i + 7)) & 1u;
        // rb == 0 forces o to the junk slot 7 (x | 7 == 7 for x in [0, 7]).
        const std::uint32_t o =
            (static_cast<std::uint32_t>(rt >> (8 * i)) & 7u) |
            ((rb - 1u) & 7u);
        lane_for[o] = static_cast<std::uint8_t>(i);
        by_o |= rb << o;
      }
      const std::uint64_t credw = load_u64(credits_.data() + base);
      const std::uint32_t cred_ok = lane_bits(bytes_nonzero(credw));
      std::uint32_t hops = by_o & cred_ok & 0xFu;
      progress = hops != 0;
      while (hops) {
        const auto o = static_cast<std::uint32_t>(std::countr_zero(hops));
        hops &= hops - 1;
        const std::uint32_t i = lane_for[o];
        const std::uint32_t g = base + i;
        hop_flit_packed(n, i, o, a_slot_[slot_base(g) + vc_head_[g]]);
      }
      if (by_o & 0x10u) {
        const std::uint32_t i = lane_for[4];
        const std::uint32_t g = base + i;
        if (eject_flit_packed(n, i, a_slot_[slot_base(g) + vc_head_[g]])) {
          progress = true;
          ejected = 1;
        }
      }
    }
  }

  // Injection, inlined for V == 1 (queue non-empty checked here; the VC
  // rotation is a no-op with a single local VC). A pending queue also
  // vetoes the streaming hint: the hinted visit skips this check.
  if (q_head_[n] != kNil) new_hint = kNoHint8;
  if (q_head_[n] != kNil && vcnt[base + 4] < depth) {
    const std::uint32_t pkt = q_head_[n];
    const std::uint32_t cur = q_cursor_[n];
    const std::uint32_t nflits = pr_flits_[pkt];
    if (cur == 0) packet_inject_cycle_[pkt] = cycle_;
    arena_push(base + 4, slot_word(pkt, cur, cur >= nflits));
    ++activity_.injected_flits;
    ++in_flight_flits_;
    PSYNC_DCHECK(queued_flits_ > 0);
    --queued_flits_;
    if (cur >= nflits) {  // tail (or head-tail) emitted: next packet
      q_head_[n] = pr_qnext_[pkt];
      if (q_head_[n] == kNil) q_tail_[n] = kNil;
      q_cursor_[n] = 0;
    } else {
      q_cursor_[n] = cur + 1;
    }
    progress = true;
  }

  serve_hint_[n] = new_hint;
  if (progress) {
    activate(n);
    return ejected;
  }
  // Nothing progressed, so cnt/rt stayed as computed above: the keep-awake
  // conditions reduce to register tests. (need == 0 after the routing phase
  // implies no countdown is pending: a counting VC re-enters `need` every
  // cycle until its route resolves.)
  bool keep = q_head_[n] != kNil && ((cnt >> 32) & 0xFF) < depth;
  if (!keep) keep = any_routing;  // a t_r countdown must tick every cycle
  // Eject-blocked inputs must retry the sink every cycle.
  if (!keep) keep = (occ & bytes_eq(rt, 4)) != 0;
  if (keep) activate(n);
  return 0;
}

// Flatten the whole per-cycle path into one frame: the router scan keeps a
// cycle's state words in registers, and inlining hop/eject/serve lets them
// stay live across those calls instead of being spilled at each boundary.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((flatten))
#endif
void Mesh::step() {
  if (ref_) {
    ref_->step();
    return;
  }
  // Explicitly attached sinks see the new cycle first so their per-cycle
  // budgets reset (default sinks are self-clocked).
  for (NodeId n : stepped_sinks_) sinks_[n]->step(cycle_);

  // Release due packets (in cycle order; push order within a cycle is id
  // order, matching the old priority queue's tiebreak). next_release_due_
  // keeps the calendar queue untouched on the other cycles.
  if (cycle_ >= next_release_due_) {
    release_buf_.clear();
    releases_.pop_due(cycle_, &release_buf_);
    next_release_due_ = releases_.empty()
                            ? std::numeric_limits<std::int64_t>::max()
                            : releases_.next_key(cycle_ + 1);
    for (const Release& rel : release_buf_) {
      enqueue_packet(rel.id);
      activate(pr_src_[rel.id]);
    }
  }

  // Process the active set; the epoch bump retires every stamp at once.
  std::swap(cur_active_, next_active_);
  cur_active_size_ = next_active_size_;
  next_active_size_ = 0;
  ++active_epoch_;

  const NodeId* const act = cur_active_.data();
  if (packed_) {
    // The per-hop and per-eject activity counters batch into one flush
    // here: each hop stages exactly one arrival (one buffer read, one
    // crossbar and one link traversal), each successful eject is one
    // buffer read and one ejected flit. Keeping the uint64 increments out
    // of the serve loops matters because the loops' byte stores alias
    // everything, forcing reloads around every counter bump.
    std::uint32_t ejects = 0;
    for (std::uint32_t k = 0; k < cur_active_size_; ++k) {
      ejects += step_router_packed(act[k]);
    }
    const std::uint64_t hops = staged_.size();
    activity_.buffer_reads += hops + ejects;
    activity_.crossbar_traversals += hops;
    activity_.link_traversals += hops;
    activity_.ejected_flits += ejects;
  } else {
    for (std::uint32_t k = 0; k < cur_active_size_; ++k) {
      step_router_generic(act[k]);
    }
  }

  // Commit link traversals; arrivals wake the receiving router. The flit
  // fields are already in place (hop_flit), so the commit is just the
  // occupancy increment that makes them visible.
  activity_.buffer_writes += staged_.size();
  {
    const Staged* const sp = staged_.data();
    const std::size_t sn = staged_.size();
    for (std::size_t k = 0; k < sn; ++k) {
      PSYNC_DCHECK(vc_count_[sp[k].g] < params_.buffer_depth);
      cnt_add(sp[k].g, 1);
      // An arrival on a different lane ends the receiver's streaming-worm
      // state (kNoHint8 maps to itself, so no-hint stays no-hint).
      const std::uint8_t hv = serve_hint_[sp[k].node];
      serve_hint_[sp[k].node] =
          (hv & 7u) == (sp[k].g & 7u) ? hv : kNoHint8;
      activate(sp[k].node);
    }
  }
  staged_.clear();

  // Credit returns wake the upstream router (targets resolved at push).
  {
    std::uint8_t* const cred = credits_.data();
    const std::uint64_t* const cp = credit_returns_.data();
    const std::size_t cn = credit_returns_.size();
    for (std::size_t k = 0; k < cn; ++k) {
      const std::uint64_t w = cp[k];
      ++cred[w >> 32];
      PSYNC_DCHECK(cred[w >> 32] <= params_.buffer_depth);
      activate(static_cast<NodeId>(w));
    }
  }
  credit_returns_.clear();

  ++cycle_;
}

bool Mesh::drained() const {
  if (ref_) return ref_->drained();
  return in_flight_flits_ == 0 && releases_.empty() && queued_flits_ == 0;
}

bool Mesh::run_until_drained(std::int64_t max_cycles) {
  if (ref_) return ref_->run_until_drained(max_cycles);
  // Latency records are appended inside the stepping loop; reserving from
  // the in-flight count here keeps reallocation out of the measurement.
  if (record_latencies_) {
    latencies_.reserve(latencies_.size() + in_flight_packets_);
  }
  const std::size_t packets_before = packet_inject_cycle_.size();
  const std::int64_t limit = cycle_ + max_cycles;
  while (!drained() && cycle_ < limit) {
    // Idle fast-forward: with no flit buffered, nothing queued for
    // injection, and no router scheduled to wake, the network state cannot
    // change until the next release fires — every intervening step() would
    // be a no-op (sinks are quiescent when nothing is in flight). Jump
    // straight to that cycle.
    if (idle_skip_ && in_flight_flits_ == 0 && queued_flits_ == 0 &&
        next_active_size_ == 0 && !releases_.empty()) {
      if (next_release_due_ > cycle_) {
        cycle_ = next_release_due_ < limit ? next_release_due_ : limit;
        continue;
      }
    }
    step();
  }
  PSYNC_CHECK_MSG(packet_inject_cycle_.size() == packets_before,
                  "packet table resized mid-drain");
  return drained();
}

}  // namespace psync::mesh
