#include "psync/mesh/flit.hpp"

#include <sstream>

namespace psync::mesh {

std::string to_string(const Flit& f) {
  std::ostringstream os;
  const char* kind = "?";
  switch (f.kind) {
    case FlitKind::kHead: kind = "H"; break;
    case FlitKind::kBody: kind = "B"; break;
    case FlitKind::kTail: kind = "T"; break;
    case FlitKind::kHeadTail: kind = "HT"; break;
  }
  os << "flit{pkt=" << f.packet << " " << kind << " seq=" << f.seq
     << " src=" << f.src << " dst=" << f.dst << " pay=" << f.payload << "}";
  return os.str();
}

}  // namespace psync::mesh
