#include "psync/mesh/traffic.hpp"

#include "psync/common/check.hpp"

namespace psync::mesh {

std::uint64_t encode_payload(NodeId src, std::uint32_t index) {
  return (static_cast<std::uint64_t>(src) << 32) | index;
}
NodeId payload_src(std::uint64_t payload) {
  return static_cast<NodeId>(payload >> 32);
}
std::uint32_t payload_index(std::uint64_t payload) {
  return static_cast<std::uint32_t>(payload & 0xFFFFFFFFULL);
}

std::vector<PacketDesc> transpose_writeback_traffic(
    const Mesh& mesh, NodeId memory_node, std::uint32_t elements,
    std::uint32_t elements_per_packet) {
  PSYNC_CHECK(elements_per_packet > 0);
  PSYNC_CHECK(elements % elements_per_packet == 0);
  std::vector<PacketDesc> out;
  for (NodeId n = 0; n < mesh.nodes(); ++n) {
    if (n == memory_node) continue;
    for (std::uint32_t e = 0; e < elements; e += elements_per_packet) {
      PacketDesc d;
      d.src = n;
      d.dst = memory_node;
      d.payload_flits = elements_per_packet;
      d.payload_base = encode_payload(n, e);
      out.push_back(d);
    }
  }
  return out;
}

std::vector<PacketDesc> scatter_traffic(const Mesh& mesh, NodeId memory_node,
                                        std::uint32_t elements,
                                        std::uint32_t elements_per_packet) {
  PSYNC_CHECK(elements_per_packet > 0);
  PSYNC_CHECK(elements % elements_per_packet == 0);
  std::vector<PacketDesc> out;
  for (NodeId n = 0; n < mesh.nodes(); ++n) {
    if (n == memory_node) continue;
    for (std::uint32_t e = 0; e < elements; e += elements_per_packet) {
      PacketDesc d;
      d.src = memory_node;
      d.dst = n;
      d.payload_flits = elements_per_packet;
      d.payload_base = encode_payload(memory_node, e);
      out.push_back(d);
    }
  }
  return out;
}

std::vector<PacketDesc> uniform_random_traffic(const Mesh& mesh,
                                               std::uint32_t packets,
                                               std::uint32_t payload_flits,
                                               Rng& rng) {
  PSYNC_CHECK(mesh.nodes() >= 2);
  std::vector<PacketDesc> out;
  out.reserve(packets);
  for (std::uint32_t i = 0; i < packets; ++i) {
    PacketDesc d;
    d.src = static_cast<NodeId>(rng.next_below(mesh.nodes()));
    do {
      d.dst = static_cast<NodeId>(rng.next_below(mesh.nodes()));
    } while (d.dst == d.src);
    d.payload_flits = payload_flits;
    d.payload_base = encode_payload(d.src, i);
    out.push_back(d);
  }
  return out;
}

NodeId nearest_corner(const Mesh& mesh, NodeId n) {
  const auto& p = mesh.params();
  const std::uint32_t x = mesh.x_of(n);
  const std::uint32_t y = mesh.y_of(n);
  const std::uint32_t cx = (x < p.width - x - 1) ? 0 : p.width - 1;
  const std::uint32_t cy = (y < p.height - y - 1) ? 0 : p.height - 1;
  return mesh.node_at(cx, cy);
}

std::vector<PacketDesc> gather_to_corners_traffic(
    const Mesh& mesh, std::uint32_t elements,
    std::uint32_t elements_per_packet) {
  PSYNC_CHECK(elements_per_packet > 0);
  PSYNC_CHECK(elements % elements_per_packet == 0);
  std::vector<PacketDesc> out;
  for (NodeId n = 0; n < mesh.nodes(); ++n) {
    const NodeId corner = nearest_corner(mesh, n);
    if (corner == n) continue;
    for (std::uint32_t e = 0; e < elements; e += elements_per_packet) {
      PacketDesc d;
      d.src = n;
      d.dst = corner;
      d.payload_flits = elements_per_packet;
      d.payload_base = encode_payload(n, e);
      out.push_back(d);
    }
  }
  return out;
}

}  // namespace psync::mesh
