// Memory interface node for the electronic mesh (paper Section V-C-2).
//
// In the transpose, every processor streams its row back to memory through
// this node. Because the mesh imposes arrival disorder, the interface must
// reassemble elements into DRAM-row-sized bursts before writing:
//
//   eject packet (1 flit/cycle)  ->  reorder (t_p cycles per element)
//                                ->  DRAM row write ((S_r + S_h)/S_b cycles)
//
// By default the three stages are serialized per packet, matching the
// behaviour the paper describes ("Reordering the data requires multiple
// cycles ... Further latency is incurred when the data is written to
// memory"). Setting `overlap_stages` pipelines reorder+write behind the next
// packet's ejection — the ablation benches quantify how much of the mesh's
// disadvantage comes from this serialization versus network congestion.
#pragma once

#include <cstdint>
#include <functional>

#include "psync/dram/dram.hpp"
#include "psync/mesh/mesh.hpp"

namespace psync::mesh {

struct MemoryInterfaceParams {
  /// Reorder cost per data element, cycles (paper's t_p; compares 1 and 4).
  std::uint32_t reorder_cycles_per_element = 1;
  /// Bits per data element (paper: 64-bit flits = one element).
  std::uint64_t element_bits = 64;
  /// DRAM the interface writes into.
  dram::DramParams dram;
  /// When true, reorder+write of packet i overlaps ejection of packet i+1.
  bool overlap_stages = false;
};

class MemoryInterface final : public Sink {
 public:
  /// Called for every data element the interface commits: (source node,
  /// element index = head-flit tag + position, payload word). Lets machine
  /// simulators reconstruct the memory image the writeback produced.
  using Collector = std::function<void(NodeId, std::uint64_t, std::uint64_t)>;

  MemoryInterface(MemoryInterfaceParams params,
                  std::uint64_t expected_elements);

  void set_collector(Collector c) { collector_ = std::move(c); }

  bool accept(const Flit& flit, std::int64_t cycle) override;
  void step(std::int64_t cycle) override;

  /// All expected elements received, reordered and written to DRAM.
  bool done() const;
  /// Cycle at which the final DRAM write completed (valid once done()).
  std::int64_t completion_cycle() const { return completion_cycle_; }

  std::uint64_t elements_received() const { return elements_received_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t dram_write_cycles() const { return dram_write_cycles_; }
  std::uint64_t reorder_stall_cycles() const { return reorder_stall_cycles_; }

 private:
  std::uint64_t row_write_cost(std::uint64_t rows) const;

  MemoryInterfaceParams params_;
  std::uint64_t expected_elements_;
  std::uint64_t elements_received_ = 0;
  std::uint64_t packets_received_ = 0;

  // Per-cycle ejection budget (the port accepts one flit per cycle).
  bool accepted_this_cycle_ = false;
  // The interface is busy (not accepting) until this cycle.
  std::int64_t busy_until_ = 0;
  std::int64_t now_ = 0;
  std::int64_t completion_cycle_ = -1;

  // Elements of the in-progress packet (between head and tail).
  std::uint64_t packet_elements_ = 0;
  // Source and base element tag of the in-progress packet.
  NodeId packet_src_ = 0;
  std::uint64_t packet_base_ = 0;
  Collector collector_;
  // Bits accumulated toward the next DRAM row burst.
  std::uint64_t row_fill_bits_ = 0;

  std::uint64_t dram_write_cycles_ = 0;
  std::uint64_t reorder_stall_cycles_ = 0;
};

}  // namespace psync::mesh
