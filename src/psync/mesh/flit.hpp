// Flits and packets for the wormhole-routed electronic mesh.
//
// Paper parameterization (Section V-C-2): 64-bit flits, flit size = FFT
// element size, one header flit carrying the destination address per packet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psync::mesh {

using NodeId = std::uint32_t;
using PacketId = std::uint32_t;

enum class FlitKind : std::uint8_t {
  kHead = 0,      // carries routing info (address header)
  kBody = 1,
  kTail = 2,
  kHeadTail = 3,  // single-flit packet
};

struct Flit {
  PacketId packet = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t seq = 0;  // position within the packet, 0 = head
  FlitKind kind = FlitKind::kHead;
  std::uint64_t payload = 0;

  bool is_head() const {
    return kind == FlitKind::kHead || kind == FlitKind::kHeadTail;
  }
  bool is_tail() const {
    return kind == FlitKind::kTail || kind == FlitKind::kHeadTail;
  }
};

std::string to_string(const Flit& f);

/// A packet to inject: expands to 1 head flit + `payload_flits` body flits
/// (the last payload flit is the tail; zero-payload packets are head-tail).
struct PacketDesc {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t payload_flits = 0;
  /// Head-flit payload (an address/tag in machine runs). When `words` is
  /// empty, body flit i carries payload_base + i so tests can check
  /// integrity end to end.
  std::uint64_t payload_base = 0;
  /// Optional explicit payload words (size == payload_flits); used by the
  /// machine simulators to move real data through the network.
  std::vector<std::uint64_t> words;
  /// Earliest cycle at which the packet may start injecting.
  std::int64_t release_cycle = 0;
};

}  // namespace psync::mesh
