// Retained reference datapath for the mesh NoC: the original array-of-structs
// implementation (per-VC std::vector<Flit> ring buffers, std::deque inject
// queues, PacketDesc copies through the release queue).
//
// The production datapath in mesh.hpp is a structure-of-arrays rewrite of
// this class; the differential suite (test_mesh_soa) asserts the two produce
// byte-identical event traces, stats, and sink logs, and bench_driver's
// `*_reference` entries measure this path so speedups stay honest. Keep the
// stepping semantics here frozen unless the model itself changes.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "psync/common/calendar_queue.hpp"
#include "psync/common/stats.hpp"
#include "psync/mesh/mesh_types.hpp"

namespace psync::mesh {

class ReferenceMesh {
 public:
  explicit ReferenceMesh(MeshParams params);

  const MeshParams& params() const { return params_; }
  std::uint32_t nodes() const { return params_.width * params_.height; }
  std::int64_t cycle() const { return cycle_; }

  NodeId node_at(std::uint32_t x, std::uint32_t y) const;
  std::uint32_t x_of(NodeId n) const { return n % params_.width; }
  std::uint32_t y_of(NodeId n) const { return n / params_.width; }
  std::uint32_t manhattan(NodeId a, NodeId b) const;

  void set_sink(NodeId node, Sink* sink);
  void inject(const PacketDesc& desc);
  void step();
  bool run_until_drained(std::int64_t max_cycles);

  void set_idle_skip(bool on) { idle_skip_ = on; }
  bool idle_skip() const { return idle_skip_; }

  bool drained() const;

  const MeshActivity& activity() const { return activity_; }
  const RunningStats& packet_latency() const { return packet_latency_; }
  void record_latencies(bool on) { record_latencies_ = on; }
  const std::vector<double>& latencies() const { return latencies_; }
  std::uint64_t in_flight_flits() const { return in_flight_flits_; }
  std::uint64_t in_flight_packets() const { return in_flight_packets_; }

 private:
  // Port order: N, E, S, W, LOCAL-in (injection); outputs: N, E, S, W, EJECT.
  static constexpr int kPortN = 0;
  static constexpr int kPortE = 1;
  static constexpr int kPortS = 2;
  static constexpr int kPortW = 3;
  static constexpr int kPortLocal = 4;
  static constexpr int kPorts = 5;
  static constexpr int kNoPort = -1;
  static constexpr int kNoVc = -1;
  static constexpr std::int16_t kFree = -1;

  /// One virtual channel of one input port: its own FIFO and per-packet
  /// routing/allocation state.
  struct InputVc {
    std::vector<Flit> fifo;   // ring buffer, capacity = buffer_depth
    std::uint32_t head = 0;
    std::uint32_t count = 0;
    // State for the packet at the FIFO front.
    int route_out = kNoPort;        // decided output, or kNoPort
    int out_vc = kNoVc;             // allocated downstream VC
    std::uint32_t route_wait = 0;   // remaining t_r cycles
    bool routing = false;           // countdown in progress
  };

  struct Router {
    std::vector<InputVc> in;             // kPorts * V input VCs
    std::vector<std::int16_t> out_owner; // kPorts * V: holding in-VC index
    std::vector<std::uint16_t> credits;  // kPorts * V toward downstream
    std::uint8_t rr_next[kPorts];        // switch round-robin per output
    std::uint8_t vc_rr[kPorts];          // out-VC allocation round-robin
  };

  struct Staged {
    Flit flit;
    NodeId node;
    int in_port;
    int vc;
  };

  struct Release {
    std::int64_t cycle;
    PacketId id;
    PacketDesc desc;
  };

  int vcs() const { return static_cast<int>(params_.virtual_channels); }
  int ivc(int port, int vc) const { return port * vcs() + vc; }

  bool fifo_full(const InputVc& p) const { return p.count >= params_.buffer_depth; }
  std::uint32_t fifo_index(std::uint32_t slot) const { return slot & fifo_mask_; }
  const Flit& fifo_front(const InputVc& p) const { return p.fifo[p.head]; }
  void fifo_push(InputVc& p, const Flit& f);
  Flit fifo_pop(InputVc& p);

  int neighbor(NodeId node, int out_port, NodeId* out_node) const;
  int compute_route(NodeId at, const Flit& head, const Router& r) const;
  void update_routing(Router& r, NodeId n);
  bool serve_outputs(NodeId n, Router& r);
  bool serve_injection(NodeId n);
  void activate(NodeId n);
  void expand_packet(PacketId id, const PacketDesc& desc);

  MeshParams params_;
  std::vector<Router> routers_;
  std::vector<Sink*> sinks_;
  std::vector<NodeId> stepped_sinks_;  // explicitly attached, need step()
  std::vector<std::unique_ptr<ConsumeSink>> default_sinks_;
  // Expanded flits awaiting injection, one queue per (node, local VC);
  // packets are assigned to local VCs round-robin.
  std::vector<std::deque<Flit>> inject_queues_;  // nodes * V
  std::vector<std::uint8_t> inject_vc_rr_;       // per node
  std::uint64_t queued_flits_ = 0;
  // Future-release packets, keyed by release cycle. Packet ids are assigned
  // in inject() order, so push order doubles as the id tiebreak the old
  // priority queue used.
  CalendarQueue<Release> releases_;
  std::vector<Release> release_buf_;  // scratch for pop_due, reused
  std::vector<Staged> staged_;
  struct CreditReturn {
    NodeId node;
    int in_port;
    int vc;
  };
  std::vector<CreditReturn> credit_returns_;

  // Activity-gated simulation: only routers in the active set are stepped.
  std::vector<NodeId> cur_active_;
  std::vector<NodeId> next_active_;
  std::vector<std::uint8_t> in_next_active_;

  // Packet bookkeeping for latency stats: inject cycle by packet id.
  std::vector<std::int64_t> packet_inject_cycle_;
  RunningStats packet_latency_;
  bool record_latencies_ = false;
  std::vector<double> latencies_;

  std::int64_t cycle_ = 0;
  std::uint64_t in_flight_flits_ = 0;
  std::uint64_t in_flight_packets_ = 0;
  // FIFO rings are sized to bit_ceil(buffer_depth) so ring indices wrap with
  // a mask instead of an integer divide; logical capacity is unchanged.
  std::uint32_t fifo_mask_ = 0;
  bool idle_skip_ = true;
  MeshActivity activity_;
};

}  // namespace psync::mesh
