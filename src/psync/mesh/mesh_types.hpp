// Shared types for the wormhole-routed 2D mesh NoC: parameters, sinks, and
// activity counters. Both datapaths (the SoA production path in mesh.hpp and
// the retained reference path in reference_mesh.hpp) build on these, so they
// live in their own header to keep the include graph acyclic.
#pragma once

#include <cstdint>
#include <vector>

#include "psync/mesh/flit.hpp"

namespace psync::mesh {

enum class RouteAlgo : std::uint8_t {
  kXY = 0,
  kWestFirstAdaptive = 1,
};

struct MeshParams {
  std::uint32_t width = 4;
  std::uint32_t height = 4;
  std::uint32_t buffer_depth = 2;   // flits per input VC FIFO (paper: 2)
  std::uint32_t route_delay = 1;    // t_r, cycles per header per router
  RouteAlgo algo = RouteAlgo::kXY;
  /// Virtual channels per physical port (paper's mesh: 1). Each VC has its
  /// own buffer_depth-flit FIFO; one flit still crosses a link per cycle.
  std::uint32_t virtual_channels = 1;
};

class ConsumeSink;

/// Consumer of ejected flits at a node.
class Sink {
 public:
  virtual ~Sink() = default;
  /// Offer a flit this cycle; return false to exert backpressure.
  virtual bool accept(const Flit& flit, std::int64_t cycle) = 0;
  /// Advance internal state one cycle (called once per mesh cycle).
  virtual void step(std::int64_t cycle) { (void)cycle; }
  /// Return false when step() is a no-op; the mesh then skips the per-cycle
  /// call entirely (a measurable saving with one sink on every node).
  virtual bool needs_step() const { return true; }
  /// Non-null when this sink is a plain ConsumeSink; the mesh caches the
  /// downcast at set_sink() time so the ejection hot path can skip both the
  /// virtual dispatch and the Flit reconstruction when the sink is not
  /// logging (accept() only needs the tail flag then).
  virtual ConsumeSink* as_consume() { return nullptr; }
};

/// Unbounded sink consuming up to `rate` flits per cycle; records stats.
/// Self-clocked from the cycle passed to accept(), so it needs no step().
class ConsumeSink final : public Sink {
 public:
  explicit ConsumeSink(std::uint32_t rate = 1) : rate_(rate) {}
  bool accept(const Flit& flit, std::int64_t cycle) override;
  bool needs_step() const override { return false; }
  ConsumeSink* as_consume() override { return this; }

  bool logging() const { return keep_log_; }
  /// Devirtualized accept() for the non-logging case: identical rate and
  /// counter behavior, but the caller passes just the tail flag so the hot
  /// ejection path never materializes a Flit nobody stores.
  bool accept_fast(bool tail, std::int64_t cycle) {
    if (cycle != last_cycle_) {
      last_cycle_ = cycle;
      used_this_cycle_ = 0;
    }
    if (used_this_cycle_ >= rate_) return false;
    ++used_this_cycle_;
    ++flits_;
    if (tail) ++packets_;
    return true;
  }

  std::uint64_t flits() const { return flits_; }
  std::uint64_t packets() const { return packets_; }
  const std::vector<Flit>& log() const { return log_; }
  /// Arrival cycle of log()[i] (kept alongside the flit log).
  const std::vector<std::int64_t>& log_cycles() const { return log_cycles_; }
  /// Enable flit logging; `expected_flits` pre-reserves both log vectors so
  /// long traffic runs never reallocate mid-measurement.
  void keep_log(bool on, std::size_t expected_flits = 0) {
    keep_log_ = on;
    if (on && expected_flits > 0) {
      log_.reserve(expected_flits);
      log_cycles_.reserve(expected_flits);
    }
  }
  /// Drop logged flits (capacity is kept) so a sink can be reused across
  /// measurement windows without accumulating unbounded history.
  void clear_log() {
    log_.clear();
    log_cycles_.clear();
  }

 private:
  std::uint32_t rate_;
  std::uint32_t used_this_cycle_ = 0;
  std::int64_t last_cycle_ = -1;
  std::uint64_t flits_ = 0;
  std::uint64_t packets_ = 0;
  bool keep_log_ = false;
  std::vector<Flit> log_;
  std::vector<std::int64_t> log_cycles_;
};

/// Per-simulation activity counters feeding the ORION-style energy model.
struct MeshActivity {
  std::uint64_t buffer_writes = 0;    // flit enqueued into an input FIFO
  std::uint64_t buffer_reads = 0;     // flit dequeued
  std::uint64_t crossbar_traversals = 0;
  std::uint64_t link_traversals = 0;  // inter-router hops (not local)
  std::uint64_t arbitrations = 0;     // output allocations performed
  std::uint64_t injected_flits = 0;
  std::uint64_t ejected_flits = 0;
  std::uint64_t injected_packets = 0;
  std::uint64_t ejected_packets = 0;
};

}  // namespace psync::mesh
