#include "psync/mesh/energy_orion.hpp"

#include <cmath>

#include "psync/common/check.hpp"

namespace psync::mesh {

double hop_length_mm(const OrionParams& p, std::size_t mesh_dim) {
  PSYNC_CHECK(mesh_dim > 0);
  return p.die_mm / static_cast<double>(mesh_dim);
}

std::size_t repeaters_per_link(const OrionParams& p, std::size_t mesh_dim) {
  const double len = hop_length_mm(p, mesh_dim);
  return static_cast<std::size_t>(std::ceil(len / p.repeater_segment_mm));
}

double per_hop_flit_pj(const OrionParams& p, std::size_t mesh_dim) {
  const double router_bit =
      p.buffer_write_pj_per_bit + p.buffer_read_pj_per_bit +
      p.crossbar_pj_per_bit +
      p.pipeline_pj_per_bit_per_stage * p.router_stages;
  const double link_bit = p.link_pj_per_bit_per_mm * hop_length_mm(p, mesh_dim);
  return (router_bit + link_bit) * p.flit_bits + p.arbiter_pj_per_flit;
}

OrionReport evaluate(const OrionParams& p, const MeshActivity& a,
                     std::size_t mesh_dim, std::uint64_t payload_bits_moved) {
  OrionReport rep;
  rep.link_mm_per_hop = hop_length_mm(p, mesh_dim);
  rep.repeaters_per_link = repeaters_per_link(p, mesh_dim);

  const double fb = p.flit_bits;
  rep.router_pj = PicoJoules(
      static_cast<double>(a.buffer_writes) * p.buffer_write_pj_per_bit * fb +
      static_cast<double>(a.buffer_reads) * p.buffer_read_pj_per_bit * fb +
      static_cast<double>(a.crossbar_traversals) * p.crossbar_pj_per_bit * fb +
      static_cast<double>(a.crossbar_traversals) *
          p.pipeline_pj_per_bit_per_stage * p.router_stages * fb +
      static_cast<double>(a.arbitrations) * p.arbiter_pj_per_flit);
  rep.link_pj = PicoJoules(static_cast<double>(a.link_traversals) *
                           p.link_pj_per_bit_per_mm * rep.link_mm_per_hop * fb);
  rep.total_pj = rep.router_pj + rep.link_pj;
  rep.pj_per_bit =
      payload_bits_moved > 0
          ? rep.total_pj.value() / static_cast<double>(payload_bits_moved)
          : 0.0;
  return rep;
}

double estimate_pj_per_bit(const OrionParams& p, std::size_t mesh_dim,
                           double avg_hops, double header_overhead) {
  PSYNC_CHECK(header_overhead >= 1.0);
  return per_hop_flit_pj(p, mesh_dim) * avg_hops * header_overhead /
         p.flit_bits;
}

}  // namespace psync::mesh
