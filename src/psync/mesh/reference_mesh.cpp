#include "psync/mesh/reference_mesh.hpp"

#include <algorithm>
#include <bit>

#include "psync/common/check.hpp"

namespace psync::mesh {

namespace {
constexpr int opposite(int port) {
  switch (port) {
    case 0: return 2;  // N <-> S
    case 1: return 3;  // E <-> W
    case 2: return 0;
    case 3: return 1;
    default: return -1;
  }
}
}  // namespace

ReferenceMesh::ReferenceMesh(MeshParams params) : params_(params) {
  if (params_.width == 0 || params_.height == 0) {
    throw SimulationError("Mesh: dimensions must be positive");
  }
  if (params_.buffer_depth == 0) {
    throw SimulationError("Mesh: buffer depth must be positive");
  }
  if (params_.virtual_channels == 0 || params_.virtual_channels > 16) {
    throw SimulationError("Mesh: virtual channels must be in [1, 16]");
  }
  const auto n = nodes();
  const int v = vcs();
  const std::uint32_t fifo_cap = std::bit_ceil(params_.buffer_depth);
  fifo_mask_ = fifo_cap - 1;
  routers_.resize(n);
  sinks_.resize(n, nullptr);
  default_sinks_.resize(n);
  inject_queues_.resize(static_cast<std::size_t>(n) * v);
  inject_vc_rr_.assign(n, 0);
  in_next_active_.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    Router& r = routers_[i];
    r.in.resize(static_cast<std::size_t>(kPorts) * v);
    r.out_owner.assign(static_cast<std::size_t>(kPorts) * v, kFree);
    r.credits.assign(static_cast<std::size_t>(kPorts) * v, 0);
    for (int p = 0; p < kPorts; ++p) {
      r.rr_next[p] = 0;
      r.vc_rr[p] = 0;
      NodeId dummy;
      const bool has_neighbor = p < kPortLocal && neighbor(i, p, &dummy) >= 0;
      for (int c = 0; c < v; ++c) {
        r.in[static_cast<std::size_t>(ivc(p, c))].fifo.resize(fifo_cap);
        // Credits exist only toward real neighbors; eject has none.
        if (has_neighbor) {
          r.credits[static_cast<std::size_t>(ivc(p, c))] =
              static_cast<std::uint16_t>(params_.buffer_depth);
        }
      }
    }
    default_sinks_[i] = std::make_unique<ConsumeSink>();
    sinks_[i] = default_sinks_[i].get();
  }
  staged_.reserve(n);
  credit_returns_.reserve(n);
  cur_active_.reserve(n);
  next_active_.reserve(n);
}

NodeId ReferenceMesh::node_at(std::uint32_t x, std::uint32_t y) const {
  PSYNC_CHECK(x < params_.width && y < params_.height);
  return y * params_.width + x;
}

std::uint32_t ReferenceMesh::manhattan(NodeId a, NodeId b) const {
  const auto dx = static_cast<std::int64_t>(x_of(a)) - x_of(b);
  const auto dy = static_cast<std::int64_t>(y_of(a)) - y_of(b);
  return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
}

void ReferenceMesh::set_sink(NodeId node, Sink* sink) {
  PSYNC_CHECK(node < nodes());
  PSYNC_CHECK(sink != nullptr);
  sinks_[node] = sink;
  stepped_sinks_.push_back(node);
}

void ReferenceMesh::fifo_push(InputVc& p, const Flit& f) {
  PSYNC_CHECK_MSG(p.count < params_.buffer_depth, "input FIFO overflow");
  p.fifo[fifo_index(p.head + p.count)] = f;
  ++p.count;
  ++activity_.buffer_writes;
}

Flit ReferenceMesh::fifo_pop(InputVc& p) {
  PSYNC_CHECK(p.count > 0);
  Flit f = p.fifo[p.head];
  p.head = fifo_index(p.head + 1);
  --p.count;
  ++activity_.buffer_reads;
  return f;
}

int ReferenceMesh::neighbor(NodeId node, int out_port, NodeId* out_node) const {
  const std::uint32_t x = x_of(node);
  const std::uint32_t y = y_of(node);
  switch (out_port) {
    case kPortN:
      if (y == 0) return -1;
      *out_node = node_at(x, y - 1);
      return kPortS;
    case kPortE:
      if (x + 1 >= params_.width) return -1;
      *out_node = node_at(x + 1, y);
      return kPortW;
    case kPortS:
      if (y + 1 >= params_.height) return -1;
      *out_node = node_at(x, y + 1);
      return kPortN;
    case kPortW:
      if (x == 0) return -1;
      *out_node = node_at(x - 1, y);
      return kPortE;
    default:
      return -1;
  }
}

int ReferenceMesh::compute_route(NodeId at, const Flit& head,
                                 const Router& r) const {
  const auto dx = static_cast<std::int64_t>(x_of(head.dst)) - x_of(at);
  const auto dy = static_cast<std::int64_t>(y_of(head.dst)) - y_of(at);
  if (dx == 0 && dy == 0) return kPortLocal;  // eject

  if (params_.algo == RouteAlgo::kXY) {
    if (dx > 0) return kPortE;
    if (dx < 0) return kPortW;
    return dy > 0 ? kPortS : kPortN;
  }

  // West-first minimal adaptive (deadlock-free turn model): any packet that
  // must move west does so first, deterministically; otherwise choose the
  // minimal direction with more total credits (less congestion).
  if (dx < 0) return kPortW;
  int best = kNoPort;
  int best_credits = -1;
  auto consider = [&](int port) {
    int c = 0;
    for (int vc = 0; vc < vcs(); ++vc) {
      c += r.credits[static_cast<std::size_t>(ivc(port, vc))];
    }
    if (c > best_credits) {
      best_credits = c;
      best = port;
    }
  };
  if (dx > 0) consider(kPortE);
  if (dy > 0) consider(kPortS);
  if (dy < 0) consider(kPortN);
  PSYNC_CHECK(best != kNoPort);
  return best;
}

void ReferenceMesh::update_routing(Router& r, NodeId n) {
  const int total = kPorts * vcs();
  for (int i = 0; i < total; ++i) {
    InputVc& ip = r.in[static_cast<std::size_t>(i)];
    // Route computation for a new head flit at the FIFO front.
    if (ip.count > 0 && ip.route_out == kNoPort &&
        fifo_front(ip).is_head()) {
      if (!ip.routing) {
        ip.routing = true;
        ip.route_wait = params_.route_delay;
        if (ip.route_wait == 0) {
          ip.route_out = compute_route(n, fifo_front(ip), r);
          ip.routing = false;
        }
      } else {
        --ip.route_wait;
        if (ip.route_wait == 0) {
          ip.route_out = compute_route(n, fifo_front(ip), r);
          ip.routing = false;
        }
      }
    }
    // Output-VC allocation once the route is known. The eject "output" has
    // a single lock (VC 0) so packets never interleave at a sink.
    if (ip.route_out != kNoPort && ip.out_vc == kNoVc) {
      const int o = ip.route_out;
      const int limit = o == kPortLocal ? 1 : vcs();
      const int start = o == kPortLocal ? 0 : r.vc_rr[o];
      for (int k = 0; k < limit; ++k) {
        int cand = start + k;
        if (cand >= limit) cand -= limit;
        auto& owner = r.out_owner[static_cast<std::size_t>(ivc(o, cand))];
        if (owner == kFree) {
          owner = static_cast<std::int16_t>(i);
          ip.out_vc = cand;
          if (o != kPortLocal) {
            const int nxt = cand + 1;
            r.vc_rr[o] = static_cast<std::uint8_t>(nxt >= limit ? 0 : nxt);
          }
          ++activity_.arbitrations;
          break;
        }
      }
    }
  }
}

bool ReferenceMesh::serve_outputs(NodeId n, Router& r) {
  bool progress = false;
  const int total = kPorts * vcs();
  for (int o = 0; o < kPorts; ++o) {
    // Switch allocation: one flit per output per cycle, round-robin over
    // input VCs holding an allocated out-VC toward this output.
    int chosen = -1;
    for (int k = 0; k < total; ++k) {
      int i = r.rr_next[o] + k;
      if (i >= total) i -= total;
      const InputVc& ip = r.in[static_cast<std::size_t>(i)];
      if (ip.count == 0 || ip.route_out != o || ip.out_vc == kNoVc) continue;
      if (o == kPortLocal) {
        chosen = i;
        break;
      }
      if (r.credits[static_cast<std::size_t>(ivc(o, ip.out_vc))] > 0) {
        chosen = i;
        break;
      }
    }
    if (chosen < 0) continue;
    InputVc& ip = r.in[static_cast<std::size_t>(chosen)];

    if (o == kPortLocal) {
      const Flit& front = fifo_front(ip);
      if (!sinks_[n]->accept(front, cycle_)) continue;
      const Flit f = fifo_pop(ip);
      progress = true;
      const int next_rr = chosen + 1;
      r.rr_next[o] = static_cast<std::uint8_t>(next_rr >= total ? 0 : next_rr);
      ++activity_.ejected_flits;
      const int in_port = chosen / vcs();
      if (in_port < kPortLocal) {
        credit_returns_.push_back(CreditReturn{n, in_port, chosen % vcs()});
      }
      if (f.is_tail()) {
        r.out_owner[static_cast<std::size_t>(ivc(o, ip.out_vc))] = kFree;
        ip.route_out = kNoPort;
        ip.out_vc = kNoVc;
        ++activity_.ejected_packets;
        const auto lat =
            static_cast<double>(cycle_ - packet_inject_cycle_[f.packet]);
        packet_latency_.add(lat);
        if (record_latencies_) latencies_.push_back(lat);
        PSYNC_CHECK(in_flight_packets_ > 0);
        --in_flight_packets_;
      }
      PSYNC_CHECK(in_flight_flits_ > 0);
      --in_flight_flits_;
    } else {
      NodeId next_node;
      const int next_in = neighbor(n, o, &next_node);
      PSYNC_CHECK_MSG(next_in >= 0, "flit routed off the mesh edge");
      const int out_vc = ip.out_vc;
      const Flit f = fifo_pop(ip);
      progress = true;
      const int next_rr = chosen + 1;
      r.rr_next[o] = static_cast<std::uint8_t>(next_rr >= total ? 0 : next_rr);
      --r.credits[static_cast<std::size_t>(ivc(o, out_vc))];
      ++activity_.crossbar_traversals;
      ++activity_.link_traversals;
      const int in_port = chosen / vcs();
      if (in_port < kPortLocal) {
        credit_returns_.push_back(CreditReturn{n, in_port, chosen % vcs()});
      }
      staged_.push_back(Staged{f, next_node, next_in, out_vc});
      if (f.is_tail()) {
        r.out_owner[static_cast<std::size_t>(ivc(o, out_vc))] = kFree;
        ip.route_out = kNoPort;
        ip.out_vc = kNoVc;
      }
    }
  }
  return progress;
}

bool ReferenceMesh::serve_injection(NodeId n) {
  // One flit per cycle total across the node's local VCs, round-robin.
  Router& r = routers_[n];
  for (int k = 0; k < vcs(); ++k) {
    int vc = inject_vc_rr_[n] + k;
    if (vc >= vcs()) vc -= vcs();
    auto& q = inject_queues_[static_cast<std::size_t>(n) * vcs() + vc];
    if (q.empty()) continue;
    InputVc& ip = r.in[static_cast<std::size_t>(ivc(kPortLocal, vc))];
    if (fifo_full(ip)) continue;
    const Flit f = q.front();
    q.pop_front();
    PSYNC_CHECK(queued_flits_ > 0);
    --queued_flits_;
    if (f.is_head()) packet_inject_cycle_[f.packet] = cycle_;
    fifo_push(ip, f);
    ++activity_.injected_flits;
    ++in_flight_flits_;
    const int next_vc = vc + 1;
    inject_vc_rr_[n] = static_cast<std::uint8_t>(next_vc >= vcs() ? 0 : next_vc);
    return true;
  }
  return false;
}

void ReferenceMesh::activate(NodeId n) {
  if (!in_next_active_[n]) {
    in_next_active_[n] = 1;
    next_active_.push_back(n);
  }
}

void ReferenceMesh::inject(const PacketDesc& desc) {
  PSYNC_CHECK(desc.src < nodes());
  PSYNC_CHECK(desc.dst < nodes());
  const PacketId id = static_cast<PacketId>(packet_inject_cycle_.size());
  packet_inject_cycle_.push_back(-1);
  ++activity_.injected_packets;
  ++in_flight_packets_;
  if (desc.release_cycle <= cycle_) {
    expand_packet(id, desc);
    activate(desc.src);
  } else {
    releases_.push(desc.release_cycle, Release{desc.release_cycle, id, desc});
  }
}

void ReferenceMesh::expand_packet(PacketId id, const PacketDesc& desc) {
  PSYNC_CHECK_MSG(desc.words.empty() || desc.words.size() == desc.payload_flits,
                  "PacketDesc.words size must match payload_flits");
  queued_flits_ += desc.payload_flits == 0 ? 1 : desc.payload_flits + 1;
  // Assign the whole packet to one local VC, rotating per packet.
  const int vc = static_cast<int>(id) % vcs();
  auto& q = inject_queues_[static_cast<std::size_t>(desc.src) * vcs() + vc];
  if (desc.payload_flits == 0) {
    q.push_back(
        Flit{id, desc.src, desc.dst, 0, FlitKind::kHeadTail, desc.payload_base});
    return;
  }
  q.push_back(Flit{id, desc.src, desc.dst, 0, FlitKind::kHead, desc.payload_base});
  for (std::uint32_t i = 0; i < desc.payload_flits; ++i) {
    const bool last = (i + 1 == desc.payload_flits);
    q.push_back(Flit{id, desc.src, desc.dst, i + 1,
                     last ? FlitKind::kTail : FlitKind::kBody,
                     desc.words.empty() ? desc.payload_base + i : desc.words[i]});
  }
}

void ReferenceMesh::step() {
  // Explicitly attached sinks see the new cycle first so their per-cycle
  // budgets reset (default sinks are self-clocked).
  for (NodeId n : stepped_sinks_) sinks_[n]->step(cycle_);

  // Release due packets (in cycle order; push order within a cycle is id
  // order, matching the old priority queue's tiebreak).
  if (!releases_.empty()) {
    release_buf_.clear();
    releases_.pop_due(cycle_, &release_buf_);
    for (const Release& rel : release_buf_) {
      expand_packet(rel.id, rel.desc);
      activate(rel.desc.src);
    }
  }

  // Process the active set.
  std::swap(cur_active_, next_active_);
  next_active_.clear();
  for (NodeId n : cur_active_) in_next_active_[n] = 0;

  for (NodeId n : cur_active_) {
    Router& r = routers_[n];
    update_routing(r, n);
    bool progress = serve_outputs(n, r);
    progress |= serve_injection(n);

    // Sources with pending injections stay active only while some local
    // input VC has room; once all are full they sleep until a pop at this
    // router (progress) frees a slot.
    bool keep = progress;
    if (!keep) {
      for (int vc = 0; vc < vcs() && !keep; ++vc) {
        if (!inject_queues_[static_cast<std::size_t>(n) * vcs() + vc].empty() &&
            !fifo_full(r.in[static_cast<std::size_t>(ivc(kPortLocal, vc))])) {
          keep = true;
        }
      }
    }
    if (!keep) {
      const int total = kPorts * vcs();
      for (int i = 0; i < total && !keep; ++i) {
        const InputVc& ip = r.in[static_cast<std::size_t>(i)];
        if (ip.routing) keep = true;  // countdown must tick every cycle
        // (A head waiting for a busy out-VC needs no polling: the VC frees
        // when the holder's tail pops at THIS router, which is progress and
        // keeps the router active for the next cycle's allocation.)
        // Eject-blocked inputs must retry the sink every cycle.
        if (ip.count > 0 && ip.route_out == kPortLocal) keep = true;
      }
    }
    if (keep) activate(n);
  }

  // Commit link traversals; arrivals wake the receiving router.
  for (const Staged& s : staged_) {
    fifo_push(routers_[s.node].in[static_cast<std::size_t>(ivc(s.in_port, s.vc))],
              s.flit);
    activate(s.node);
  }
  staged_.clear();

  // Credit returns wake the upstream router.
  for (const CreditReturn& cr : credit_returns_) {
    NodeId up;
    const int up_in = neighbor(cr.node, cr.in_port, &up);
    PSYNC_CHECK(up_in >= 0);
    (void)up_in;
    Router& u = routers_[up];
    const int up_out = opposite(cr.in_port);
    auto& credit = u.credits[static_cast<std::size_t>(ivc(up_out, cr.vc))];
    ++credit;
    PSYNC_CHECK(credit <= params_.buffer_depth);
    activate(up);
  }
  credit_returns_.clear();

  ++cycle_;
}

bool ReferenceMesh::drained() const {
  return in_flight_flits_ == 0 && releases_.empty() && queued_flits_ == 0;
}

bool ReferenceMesh::run_until_drained(std::int64_t max_cycles) {
  // Latency records are appended inside the stepping loop; reserving from
  // the in-flight count here keeps reallocation out of the measurement.
  if (record_latencies_) {
    latencies_.reserve(latencies_.size() + in_flight_packets_);
  }
  const std::size_t packets_before = packet_inject_cycle_.size();
  const std::int64_t limit = cycle_ + max_cycles;
  while (!drained() && cycle_ < limit) {
    // Idle fast-forward: with no flit buffered, nothing queued for
    // injection, and no router scheduled to wake, the network state cannot
    // change until the next release fires — every intervening step() would
    // be a no-op (sinks are quiescent when nothing is in flight). Jump
    // straight to that cycle.
    if (idle_skip_ && in_flight_flits_ == 0 && queued_flits_ == 0 &&
        next_active_.empty() && !releases_.empty()) {
      const std::int64_t next_release = releases_.next_key(cycle_);
      if (next_release > cycle_) {
        cycle_ = next_release < limit ? next_release : limit;
        continue;
      }
    }
    step();
  }
  PSYNC_CHECK_MSG(packet_inject_cycle_.size() == packets_before,
                  "packet table resized mid-drain");
  return drained();
}

}  // namespace psync::mesh
