// ResultCache: the content-addressed index over the journal store.
//
// The daemon keeps one journal per campaign in its cache directory, named
// by the spec digest (<16-hex>.jsonl). Each journal line carries the
// point's content digest ("pd"), so the union of all journals IS the
// durable result cache — this class is only the in-memory index over it.
// On open() the index is rebuilt by scanning every *.jsonl in the
// directory, which is what makes a SIGKILLed daemon's results survive a
// restart: the fsync'd journals are the truth, the index is derived.
//
// Only kOk records are indexed or returned. Failed/quarantined records
// stay in their campaign's journal (so an interrupted campaign resumes
// past them correctly) but are never served to a different submission —
// a transient failure must not poison the cache.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "psync/driver/session.hpp"

namespace psync::serve {

/// The journal filename a campaign's records live under: <16-hex>.jsonl
/// of the spec digest (matches protocol.hpp's campaign_id plus suffix).
std::string campaign_journal_name(std::uint64_t spec_digest);

class ResultCache : public driver::PointCache {
 public:
  ResultCache() = default;

  /// Attach to a cache directory (created if missing) and rebuild the
  /// index from every journal in it. Journal lines that fail to parse,
  /// carry no digest, or are not kOk are skipped, not errors — a cache
  /// scan must tolerate torn tails and pre-digest journals. Throws
  /// SimulationError only when the directory cannot be created.
  void open(const std::string& dir);

  [[nodiscard]] bool is_open() const { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// The campaign journal path for a spec digest: <dir>/<16-hex>.jsonl.
  [[nodiscard]] std::string journal_path(std::uint64_t spec_digest) const;

  /// Indexed records (kOk with a digest), for accounting/tests.
  [[nodiscard]] std::size_t size() const;

  // driver::PointCache — thread-safe; concurrent campaigns share one
  // instance.
  bool lookup(std::uint64_t digest, std::uint64_t seed,
              driver::RunRecord* out) override;
  void store(std::uint64_t digest, std::uint64_t seed,
             const driver::RunRecord& rec) override;

 private:
  struct Entry {
    std::uint64_t seed = 0;
    driver::RunRecord rec;
  };

  mutable std::mutex mu_;
  std::string dir_;
  // Audited: this index is find/insert/size/clear only — nothing ever
  // iterates it, so its hash order cannot reach a journal, a response, or
  // any other serialized byte. The durable order lives in the journals.
  // psync-lint: allow(det-unordered): lookup-only index; iteration order never escapes (see audit note above)
  std::unordered_map<std::uint64_t, Entry> map_;
};

}  // namespace psync::serve
