#include "psync/serve/protocol.hpp"

#include <cstdio>
#include <cstdlib>

#include "psync/driver/campaign.hpp"

namespace psync::serve {

const char* to_string(Op op) {
  switch (op) {
    case Op::kSubmit: return "submit";
    case Op::kStatus: return "status";
    case Op::kResults: return "results";
    case Op::kSubscribe: return "subscribe";
    case Op::kCancel: return "cancel";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(FrameError err) {
  switch (err) {
    case FrameError::kNone: return "none";
    case FrameError::kEmpty: return "empty_frame";
    case FrameError::kNotJson: return "not_json";
    case FrameError::kBadString: return "bad_string";
    case FrameError::kBadValue: return "bad_value";
    case FrameError::kTrailingGarbage: return "trailing_garbage";
    case FrameError::kMissingOp: return "missing_op";
    case FrameError::kUnknownOp: return "unknown_op";
    case FrameError::kUnknownKey: return "unknown_key";
    case FrameError::kBadType: return "bad_type";
    case FrameError::kMissingField: return "missing_field";
    case FrameError::kBadCampaignId: return "bad_campaign_id";
  }
  return "?";
}

namespace {

// A trimmed-down cousin of the journal-line parser (driver/campaign.cpp):
// requests are one-level objects with string / unsigned / bool values, so
// the cursor machinery stays minimal — and every malformed shape maps to
// a FrameError instead of a bool.
struct Cursor {
  const char* p;
  const char* end;
};

void skip_ws(Cursor* c) {
  while (c->p < c->end &&
         (*c->p == ' ' || *c->p == '\t' || *c->p == '\r' || *c->p == '\n')) {
    ++c->p;
  }
}

bool expect(Cursor* c, char ch) {
  skip_ws(c);
  if (c->p < c->end && *c->p == ch) {
    ++c->p;
    return true;
  }
  return false;
}

bool parse_string(Cursor* c, std::string* out) {
  if (!expect(c, '"')) return false;
  out->clear();
  while (c->p < c->end) {
    const char ch = *c->p++;
    if (ch == '"') return true;
    if (ch != '\\') {
      out->push_back(ch);
      continue;
    }
    if (c->p >= c->end) return false;
    const char esc = *c->p++;
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (c->end - c->p < 4) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = *c->p++;
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

bool parse_u64(Cursor* c, std::uint64_t* out) {
  skip_ws(c);
  if (c->p >= c->end || *c->p < '0' || *c->p > '9') return false;
  char* endp = nullptr;
  const unsigned long long v = std::strtoull(c->p, &endp, 10);
  if (endp == c->p || endp > c->end) return false;
  c->p = endp;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_bool(Cursor* c, bool* out) {
  skip_ws(c);
  const std::size_t left = static_cast<std::size_t>(c->end - c->p);
  if (left >= 4 && std::string(c->p, 4) == "true") {
    c->p += 4;
    *out = true;
    return true;
  }
  if (left >= 5 && std::string(c->p, 5) == "false") {
    c->p += 5;
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

std::string campaign_id(std::uint64_t digest) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

bool parse_campaign_id(const std::string& s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char ch : s) {
    v <<= 4;
    if (ch >= '0' && ch <= '9') {
      v |= static_cast<std::uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      v |= static_cast<std::uint64_t>(ch - 'a' + 10);
    } else {
      return false;  // uppercase deliberately rejected: one canonical form
    }
  }
  *out = v;
  return true;
}

std::string json_string(const std::string& s) {
  return '"' + driver::json_escape(s) + '"';
}

std::string error_frame(const std::string& code, const std::string& message) {
  return "{\"ok\":false,\"error\":" + json_string(code) +
         ",\"message\":" + json_string(message) + "}";
}

FrameError parse_request(const std::string& line, Request* out) {
  Cursor c{line.c_str(), line.c_str() + line.size()};
  skip_ws(&c);
  if (c.p == c.end) return FrameError::kEmpty;
  if (!expect(&c, '{')) return FrameError::kNotJson;

  Request req;
  bool saw_op = false;
  std::string op_name;
  std::string campaign_text;
  bool saw_campaign = false;

  if (!expect(&c, '}')) {
    while (true) {
      std::string key;
      if (!parse_string(&c, &key)) return FrameError::kBadString;
      if (!expect(&c, ':')) return FrameError::kNotJson;
      if (key == "op") {
        if (!parse_string(&c, &op_name)) return FrameError::kBadType;
        saw_op = true;
      } else if (key == "config") {
        if (!parse_string(&c, &req.config)) return FrameError::kBadType;
      } else if (key == "campaign") {
        if (!parse_string(&c, &campaign_text)) return FrameError::kBadType;
        saw_campaign = true;
      } else if (key == "format") {
        if (!parse_string(&c, &req.format)) return FrameError::kBadType;
      } else if (key == "wait") {
        if (!parse_bool(&c, &req.wait)) return FrameError::kBadType;
      } else if (key == "threads") {
        if (!parse_u64(&c, &req.threads)) return FrameError::kBadType;
      } else {
        return FrameError::kUnknownKey;
      }
      if (expect(&c, '}')) break;
      if (!expect(&c, ',')) return FrameError::kNotJson;
    }
  }
  skip_ws(&c);
  if (c.p != c.end) return FrameError::kTrailingGarbage;

  if (!saw_op) return FrameError::kMissingOp;
  if (op_name == "submit") {
    req.op = Op::kSubmit;
  } else if (op_name == "status") {
    req.op = Op::kStatus;
  } else if (op_name == "results") {
    req.op = Op::kResults;
  } else if (op_name == "subscribe") {
    req.op = Op::kSubscribe;
  } else if (op_name == "cancel") {
    req.op = Op::kCancel;
  } else if (op_name == "shutdown") {
    req.op = Op::kShutdown;
  } else {
    return FrameError::kUnknownOp;
  }

  if (req.op == Op::kSubmit && req.config.empty()) {
    return FrameError::kMissingField;
  }
  const bool needs_campaign = req.op == Op::kStatus ||
                              req.op == Op::kResults ||
                              req.op == Op::kSubscribe ||
                              req.op == Op::kCancel;
  if (needs_campaign) {
    if (!saw_campaign) return FrameError::kMissingField;
    if (!parse_campaign_id(campaign_text, &req.campaign)) {
      return FrameError::kBadCampaignId;
    }
    req.has_campaign = true;
  }
  if (req.op == Op::kResults && req.format != "json" &&
      req.format != "csv") {
    return FrameError::kBadValue;
  }

  *out = req;
  return FrameError::kNone;
}

namespace {

// Scan the outermost object of `json` for `key` and leave the cursor at
// its value. Depth-aware so nested objects/arrays can't shadow a
// top-level field.
bool find_field(const std::string& json, const std::string& key,
                Cursor* out) {
  Cursor c{json.c_str(), json.c_str() + json.size()};
  if (!expect(&c, '{')) return false;
  if (expect(&c, '}')) return false;
  while (true) {
    std::string name;
    if (!parse_string(&c, &name)) return false;
    if (!expect(&c, ':')) return false;
    if (name == key) {
      skip_ws(&c);
      *out = c;
      return true;
    }
    // Skip the value: string-aware, depth-balanced.
    skip_ws(&c);
    if (c.p >= c.end) return false;
    if (*c.p == '"') {
      std::string ignored;
      if (!parse_string(&c, &ignored)) return false;
    } else if (*c.p == '{' || *c.p == '[') {
      int depth = 0;
      bool in_string = false;
      while (c.p < c.end) {
        const char ch = *c.p++;
        if (in_string) {
          if (ch == '\\') {
            if (c.p < c.end) ++c.p;
          } else if (ch == '"') {
            in_string = false;
          }
          continue;
        }
        if (ch == '"') in_string = true;
        else if (ch == '{' || ch == '[') ++depth;
        else if (ch == '}' || ch == ']') {
          --depth;
          if (depth == 0) break;
        }
      }
      if (c.p > c.end) return false;
    } else {
      while (c.p < c.end && *c.p != ',' && *c.p != '}') ++c.p;
    }
    if (expect(&c, '}')) return false;  // key not present
    if (!expect(&c, ',')) return false;
  }
}

}  // namespace

bool find_string_field(const std::string& json, const std::string& key,
                       std::string* out) {
  Cursor c{nullptr, nullptr};
  if (!find_field(json, key, &c)) return false;
  return parse_string(&c, out);
}

bool find_u64_field(const std::string& json, const std::string& key,
                    std::uint64_t* out) {
  Cursor c{nullptr, nullptr};
  if (!find_field(json, key, &c)) return false;
  return parse_u64(&c, out);
}

bool find_bool_field(const std::string& json, const std::string& key,
                     bool* out) {
  Cursor c{nullptr, nullptr};
  if (!find_field(json, key, &c)) return false;
  return parse_bool(&c, out);
}

}  // namespace psync::serve
