#include "psync/serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "psync/dist/supervisor.hpp"

namespace psync::serve {

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {}

Server::~Server() { stop(); }

bool Server::send_line(int fd, const std::string& line) {
  std::string buf = line;
  buf.push_back('\n');
  std::size_t off = 0;
  while (off < buf.size()) {
    // MSG_NOSIGNAL: a client that hung up must fail this send with EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

void Server::start() {
  PSYNC_CHECK(listen_fd_ < 0);
  // With no cache directory the ResultCache still serves hits in memory
  // (journals and restart durability just don't happen) — unit-test mode.
  if (!opts_.cache_dir.empty()) cache_.open(opts_.cache_dir);
  driver::Session::Options sopts;
  sopts.cache = &cache_;
  if (opts_.dist_workers > 0) {
    dist::SupervisorOptions dopts;
    dopts.workers = opts_.dist_workers;
    dopts.transport = opts_.dist_socket ? dist::TransportKind::kSocket
                                        : dist::TransportKind::kPipe;
    // journal_base stays empty: the executor derives it per campaign from
    // the spec's (cache-directory) journal path, so shard journals land
    // next to the campaign's own journal and resume across restarts.
    sopts.executor = dist::distributed_executor(dopts);
  }
  session_ = driver::Session(sopts);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.empty() ||
      opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw SimulationError("serve: socket path '" + opts_.socket_path +
                          "' is empty or too long for a unix socket");
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw SimulationError(std::string("serve: socket(2) failed: ") +
                          std::strerror(errno));
  }
  // A previous daemon's stale socket file would make bind fail; the unlink
  // is safe because two live daemons on one path is exactly the collision
  // this replaces with a fresh bind.
  ::unlink(opts_.socket_path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw SimulationError("serve: cannot bind '" + opts_.socket_path +
                          "': " + err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(opts_.socket_path.c_str());
    throw SimulationError("serve: listen on '" + opts_.socket_path +
                          "' failed: " + err);
  }
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (stopping_.exchange(true)) return;

  // Break the accept loop first so no new connections arrive while the
  // existing ones are being shut down.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socket_path.c_str());
  }

  // Wake every connection thread: shutdown(2) makes their blocked recv
  // return 0. The fd list only holds live descriptors (serve_connection
  // removes its own before closing), and conn_mu_ excludes that removal,
  // so no reused fd can be hit here.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }

  // Cancel campaigns still running and wait them out so the process can
  // exit without abandoned threads; their journal tails are durable.
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (auto& [digest, entry] : registry_) entry.handle.cancel();
    for (auto& [digest, entry] : registry_) entry.handle.wait();
  }

  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

std::size_t Server::campaigns() const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  return registry_.size();
}

void Server::accept_loop() {
  int accept_failures = 0;
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load()) break;  // stop() shut the listener down
      const int err = errno;
      if (err == ECONNABORTED || err == EPROTO || err == EMFILE ||
          err == ENFILE || err == ENOBUFS || err == ENOMEM ||
          err == EAGAIN || err == EWOULDBLOCK) {
        // Transient: a client that reset before we reached it
        // (ECONNABORTED/EPROTO), fd exhaustion (EMFILE/ENFILE), or
        // kernel memory pressure (ENOBUFS/ENOMEM). None of these may
        // take the daemon's front door down — log, back off so the
        // pressure can clear (an EMFILE tight-loop would burn the CPU
        // without freeing a single descriptor), and keep accepting.
        ++accept_failures;
        std::fprintf(stderr, "psync_serve: accept(2) failed (%s); retrying\n",
                     std::strerror(err));
        const int shift = std::min(accept_failures, 7);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::min(1000, 10 << shift)));
        continue;
      }
      break;  // the listener itself is broken (EBADF, EINVAL): give up
    }
    accept_failures = 0;
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  std::string buf;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: client is gone
    buf.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (!handle_request(fd, line)) {
        open = false;
        break;
      }
    }
    buf.erase(0, start);

    if (buf.size() > opts_.max_line_bytes) {
      send_line(fd, error_frame("frame_too_long",
                                "request line exceeds " +
                                    std::to_string(opts_.max_line_bytes) +
                                    " bytes"));
      break;
    }
  }

  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

bool Server::handle_request(int fd, const std::string& line) {
  Request req;
  const FrameError err = parse_request(line, &req);
  if (err != FrameError::kNone) {
    send_line(fd, error_frame(to_string(err),
                              "malformed request frame (" +
                                  std::string(to_string(err)) + ")"));
    return true;  // a bad frame poisons nothing; keep the connection
  }
  switch (req.op) {
    case Op::kSubmit: handle_submit(fd, req); return true;
    case Op::kStatus: handle_status(fd, req); return true;
    case Op::kResults: handle_results(fd, req); return true;
    case Op::kSubscribe: handle_subscribe(fd, req); return true;
    case Op::kCancel: handle_cancel(fd, req); return true;
    case Op::kShutdown: {
      send_line(fd, "{\"ok\":true,\"shutdown\":true}");
      {
        std::lock_guard<std::mutex> lock(shutdown_mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return false;
    }
  }
  return true;
}

void Server::handle_submit(int fd, const Request& req) {
  driver::FrozenSpec frozen;
  try {
    const IniConfig cfg = IniConfig::parse(req.config);
    driver::ExperimentSpec spec = driver::spec_from_config(cfg);
    if (req.threads > 0) {
      spec.threads = static_cast<std::size_t>(req.threads);
    } else if (opts_.threads > 0) {
      spec.threads = opts_.threads;
    }
    frozen = driver::Session::freeze(spec);
  } catch (const SimulationError& e) {
    send_line(fd, error_frame("invalid_spec", e.what()));
    return;
  }

  // Execution policy is the daemon's, not the submission's: journal into
  // the cache directory under the campaign's content digest, resume
  // always on (a resubmitted campaign IS a resume of its own journal).
  // These fields are excluded from the digest, so the mutation does not
  // detach the frozen spec from its identity.
  if (cache_.is_open()) {
    frozen.spec.journal_path = cache_.journal_path(frozen.digest);
    frozen.spec.resume = true;
  }

  const std::uint64_t digest = frozen.digest;
  const std::size_t points = frozen.points.size();
  bool attached = false;
  {
    // Dedupe by digest: a concurrent identical submission attaches to the
    // in-flight campaign instead of colliding on its journal's flock.
    std::lock_guard<std::mutex> lock(reg_mu_);
    const auto it = registry_.find(digest);
    if (it != registry_.end()) {
      attached = true;
    } else {
      Entry entry;
      entry.handle = session_.submit(std::move(frozen));
      registry_.emplace(digest, std::move(entry));
    }
  }

  std::ostringstream os;
  os << "{\"ok\":true,\"campaign\":" << json_string(campaign_id(digest))
     << ",\"points\":" << points
     << ",\"attached\":" << (attached ? "true" : "false") << '}';
  send_line(fd, os.str());
}

bool Server::find_campaign(int fd, std::uint64_t digest, Entry** out) {
  std::lock_guard<std::mutex> lock(reg_mu_);
  const auto it = registry_.find(digest);
  if (it == registry_.end()) {
    send_line(fd, error_frame("unknown_campaign",
                              "no campaign " + campaign_id(digest) +
                                  " on this daemon"));
    return false;
  }
  // std::map nodes are stable and entries are never erased, so the
  // pointer stays valid after the lock drops.
  *out = &it->second;
  return true;
}

namespace {

std::string progress_fields(const driver::CampaignProgress& p) {
  std::ostringstream os;
  os << "\"total\":" << p.total << ",\"completed\":" << p.completed
     << ",\"executed\":" << p.executed << ",\"cache_hits\":" << p.cache_hits
     << ",\"resumed\":" << p.resumed;
  return os.str();
}

}  // namespace

void Server::handle_status(int fd, const Request& req) {
  Entry* entry = nullptr;
  if (!find_campaign(fd, req.campaign, &entry)) return;
  std::ostringstream os;
  os << "{\"ok\":true,\"campaign\":" << json_string(campaign_id(req.campaign))
     << ",\"state\":" << json_string(to_string(entry->handle.state())) << ','
     << progress_fields(entry->handle.progress()) << '}';
  send_line(fd, os.str());
}

void Server::handle_results(int fd, const Request& req) {
  Entry* entry = nullptr;
  if (!find_campaign(fd, req.campaign, &entry)) return;
  if (!req.wait && !entry->handle.done()) {
    send_line(fd, error_frame("not_finished",
                              "campaign " + campaign_id(req.campaign) +
                                  " is still running (pass wait)"));
    return;
  }

  std::string body;
  try {
    const driver::SweepResult& result = entry->handle.result();
    const bool want_json = req.format == "json";
    {
      std::lock_guard<std::mutex> lock(reg_mu_);
      if (want_json && entry->has_json) body = entry->json_body;
      if (!want_json && entry->has_csv) body = entry->csv_body;
    }
    if (body.empty()) {
      body = want_json ? driver::sweep_json(result)
                       : driver::sweep_csv(result);
      std::lock_guard<std::mutex> lock(reg_mu_);
      if (want_json) {
        entry->json_body = body;
        entry->has_json = true;
      } else {
        entry->csv_body = body;
        entry->has_csv = true;
      }
    }
  } catch (const std::exception& e) {
    send_line(fd, error_frame("campaign_failed", e.what()));
    return;
  }

  std::ostringstream os;
  os << "{\"ok\":true,\"campaign\":" << json_string(campaign_id(req.campaign))
     << ",\"format\":" << json_string(req.format) << ','
     << progress_fields(entry->handle.progress())
     << ",\"body\":" << json_string(body) << '}';
  send_line(fd, os.str());
}

void Server::handle_subscribe(int fd, const Request& req) {
  Entry* entry = nullptr;
  if (!find_campaign(fd, req.campaign, &entry)) return;
  const std::string id = campaign_id(req.campaign);

  std::size_t cursor = 0;
  std::vector<driver::CampaignEvent> events;
  bool alive = true;
  for (;;) {
    events.clear();
    // Replay from the cursor and wait (bounded, so stop() is noticed) for
    // new completions. Cursor 0 replays the full history: a late
    // subscriber misses nothing.
    cursor = entry->handle.events_since(cursor, 250.0, &events);
    for (const auto& ev : events) {
      std::ostringstream os;
      os << "{\"event\":\"point\",\"campaign\":" << json_string(id)
         << ",\"index\":" << ev.index << ",\"status\":"
         << json_string(driver::to_string(ev.status))
         << ",\"source\":" << json_string(driver::to_string(ev.source))
         << ",\"record\":" << driver::point_json(ev.record) << '}';
      if (!send_line(fd, os.str())) {
        alive = false;
        break;
      }
    }
    if (!alive || stopping_.load()) return;
    if (entry->handle.done() && cursor == entry->handle.events_since(
                                              cursor, 0.0, &events)) {
      // Done and drained (the second events_since call re-checks under
      // the campaign lock, so no completion can slip between the two).
      break;
    }
  }

  std::ostringstream os;
  os << "{\"event\":\"done\",\"campaign\":" << json_string(id)
     << ",\"state\":" << json_string(to_string(entry->handle.state())) << ','
     << progress_fields(entry->handle.progress()) << '}';
  send_line(fd, os.str());
}

void Server::handle_cancel(int fd, const Request& req) {
  Entry* entry = nullptr;
  if (!find_campaign(fd, req.campaign, &entry)) return;
  entry->handle.cancel();
  std::ostringstream os;
  os << "{\"ok\":true,\"campaign\":" << json_string(campaign_id(req.campaign))
     << ",\"cancelled\":true}";
  send_line(fd, os.str());
}

}  // namespace psync::serve
