// The campaign service: a Unix-domain stream server that turns the
// driver's Session API into a long-lived daemon.
//
//   client line  ->  protocol::parse_request  ->  dispatch
//     submit     ->  IniConfig::parse + spec_from_config + Session::freeze
//                    -> dedupe by spec digest -> Session::submit
//     status     ->  CampaignHandle::progress
//     results    ->  sweep_json / sweep_csv of the finished campaign
//     subscribe  ->  CampaignHandle::events_since streamed as frames
//     cancel     ->  CampaignHandle::cancel
//     shutdown   ->  wake wait_for_shutdown()
//
// Concurrency model: one accept thread, one thread per connection, one
// campaign thread per distinct submitted spec (Session::submit). Two
// clients submitting the same spec — the digest is the identity — share
// one campaign: the second submit attaches to the running (or finished)
// campaign instead of colliding on its journal's flock. Overlapping but
// different grids share per-point results through the ResultCache.
//
// Durability: with a cache directory configured, every campaign journals
// to <cache_dir>/<spec digest>.jsonl with resume always on. A SIGKILLed
// daemon restarts into the same directory, rebuilds the cache index from
// the journals, and a resubmitted campaign completes from its own
// journal's splice plus the cache — byte-identical to an uninterrupted
// run (tools/serve_smoke.sh proves this in CI).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "psync/driver/session.hpp"
#include "psync/serve/cache.hpp"
#include "psync/serve/protocol.hpp"

namespace psync::serve {

struct ServerOptions {
  /// Filesystem path the Unix-domain socket is bound to. A stale socket
  /// file from a killed daemon is unlinked on start.
  std::string socket_path;
  /// Journal/cache directory; empty runs the daemon with an in-memory
  /// cache only (no durability — unit-test mode).
  std::string cache_dir;
  /// Default SweepEngine threads per campaign when neither the config nor
  /// the submit frame says otherwise (0 = leave the spec's value).
  std::size_t threads = 0;
  /// Reject request lines longer than this (a defense against a client
  /// streaming garbage into the daemon's memory).
  std::size_t max_line_bytes = 1 << 20;
  /// Execute each submitted campaign across this many worker *processes*
  /// via the distributed supervisor (dist::distributed_executor) instead
  /// of the in-process thread pool; 0 keeps the in-process path. Shard
  /// journals (under "<cache journal>.dist.*") own resume in this mode —
  /// the PointCache is not consulted — and the streaming merge feeds
  /// subscribe frames while shards still compute.
  std::size_t dist_workers = 0;
  /// With dist_workers > 0: drive the workers over the TCP socket
  /// transport (journal shipping + epoch fencing) instead of the local
  /// heartbeat pipe. Mostly exercised by tests; the pipe is the right
  /// default on one host.
  bool dist_socket = false;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start the accept loop. Throws SimulationError when
  /// the socket cannot be created or bound.
  void start();

  /// Close the listener and every connection, cancel still-running
  /// campaigns, and join all threads. Idempotent.
  void stop();

  /// Block until a client sends {"op":"shutdown"} or stop() is called.
  void wait_for_shutdown();

  [[nodiscard]] const ResultCache& cache() const { return cache_; }
  /// Campaigns currently registered (running or finished).
  [[nodiscard]] std::size_t campaigns() const;

 private:
  struct Entry {
    driver::CampaignHandle handle;
    // Rendered bodies, memoized on first `results` request per format.
    std::string json_body;
    std::string csv_body;
    bool has_json = false;
    bool has_csv = false;
  };

  void accept_loop();
  void serve_connection(int fd);
  /// Dispatch one request line; returns false when the connection should
  /// close (shutdown).
  bool handle_request(int fd, const std::string& line);
  void handle_submit(int fd, const Request& req);
  void handle_status(int fd, const Request& req);
  void handle_results(int fd, const Request& req);
  void handle_subscribe(int fd, const Request& req);
  void handle_cancel(int fd, const Request& req);
  /// Registry lookup; sends an error frame and returns false on a miss.
  bool find_campaign(int fd, std::uint64_t digest, Entry** out);
  /// Write one '\n'-terminated frame; false when the peer is gone.
  bool send_line(int fd, const std::string& line);

  ServerOptions opts_;
  ResultCache cache_;
  driver::Session session_;

  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;

  mutable std::mutex reg_mu_;
  std::map<std::uint64_t, Entry> registry_;

  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace psync::serve
