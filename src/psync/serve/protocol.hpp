// Wire protocol of the campaign service: line-delimited JSON over a local
// Unix-domain stream socket. One request object per line; the daemon
// answers with one response object per line ("subscribe" streams many).
//
// Requests:
//   {"op":"submit","config":"<INI text>"[,"threads":N]}
//   {"op":"status","campaign":"<16-hex id>"}
//   {"op":"results","campaign":"<id>"[,"format":"json"|"csv"][,"wait":b]}
//   {"op":"subscribe","campaign":"<id>"}
//   {"op":"cancel","campaign":"<id>"}
//   {"op":"shutdown"}
//
// Responses: {"ok":true,...} on success, {"ok":false,"error":"<code>",
// "message":"..."} on failure. A subscribe stream is a sequence of
// {"event":"point",...} frames terminated by one {"event":"done",...}.
//
// The campaign id on the wire is the spec's content digest
// (driver::spec_digest) rendered as 16 lowercase hex digits — the same
// value names the campaign's journal in the cache directory, so a client,
// the daemon and the on-disk store all key by content, never by
// submission order.
//
// The request parser is strict the way the journal-line parser is strict:
// unknown keys, wrong value types, truncated frames and trailing garbage
// are each a typed FrameError, never a silent default — a malformed
// submission must not execute as something else.
#pragma once

#include <cstdint>
#include <string>

namespace psync::serve {

enum class Op {
  kSubmit,
  kStatus,
  kResults,
  kSubscribe,
  kCancel,
  kShutdown,
};

const char* to_string(Op op);

/// Everything that can be wrong with one request frame.
enum class FrameError {
  kNone,
  kEmpty,            // blank line
  kNotJson,          // frame is not a JSON object
  kBadString,        // unterminated or bad-escape string literal
  kBadValue,         // a value failed to parse (number/bool expected)
  kTrailingGarbage,  // bytes after the closing '}'
  kMissingOp,        // no "op" key
  kUnknownOp,        // "op" names no operation
  kUnknownKey,       // a key the protocol does not define
  kBadType,          // right key, wrong JSON type
  kMissingField,     // the op requires a field the frame lacks
  kBadCampaignId,    // campaign id is not 16 hex digits
};

const char* to_string(FrameError err);

/// One parsed request frame.
struct Request {
  Op op = Op::kStatus;
  std::string config;             // submit: the campaign's INI text
  std::uint64_t campaign = 0;     // parsed spec digest
  bool has_campaign = false;
  std::string format = "json";    // results: "json" | "csv"
  bool wait = true;               // results: block until the campaign ends
  std::uint64_t threads = 0;      // submit: per-campaign override (0 = keep)
};

/// Parse one request line. Returns kNone and fills `*out` on success;
/// `*out` is unspecified on failure.
FrameError parse_request(const std::string& line, Request* out);

/// The wire form of a campaign id: 16 lowercase hex digits of the spec
/// digest (zero-padded, no prefix).
std::string campaign_id(std::uint64_t digest);
/// Parse the form campaign_id produces; false on anything else.
bool parse_campaign_id(const std::string& s, std::uint64_t* out);

/// Escape + quote a string as a JSON literal (driver::json_escape rules).
std::string json_string(const std::string& s);

/// One-line error response frame: {"ok":false,"error":code,"message":...}.
std::string error_frame(const std::string& code, const std::string& message);

// Top-level field extraction from a one-line JSON response — what thin
// clients (psync_submit, the smoke test, the unit tests) use instead of a
// JSON library. Depth-aware: only fields of the outermost object match.
// Return false when the key is absent or has a different type.
bool find_string_field(const std::string& json, const std::string& key,
                       std::string* out);
bool find_u64_field(const std::string& json, const std::string& key,
                    std::uint64_t* out);
bool find_bool_field(const std::string& json, const std::string& key,
                     bool* out);

}  // namespace psync::serve
