#include "psync/serve/cache.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "psync/common/journal.hpp"

namespace psync::serve {

void ResultCache::open(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw SimulationError("cache: cannot create directory '" + dir +
                          "': " + std::strerror(errno));
  }
  std::lock_guard<std::mutex> lock(mu_);
  dir_ = dir;
  map_.clear();
  for (const auto& path : list_journal_files(dir)) {
    for (const auto& line : read_journal_lines(path)) {
      driver::JournalEntry entry;
      if (!driver::parse_journal_line(line, &entry)) continue;
      if (entry.point_digest == 0) continue;  // pre-digest journal line
      if (entry.rec.status != driver::PointStatus::kOk) continue;
      // Later lines win (a resubmitted campaign re-journals its splice;
      // agreeing duplicates are byte-identical anyway).
      map_[entry.point_digest] = Entry{entry.seed, std::move(entry.rec)};
    }
  }
}

std::string ResultCache::journal_path(std::uint64_t spec_digest) const {
  PSYNC_CHECK(is_open());
  return dir_ + "/" + campaign_journal_name(spec_digest);
}

std::string campaign_journal_name(std::uint64_t spec_digest) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx.jsonl",
                static_cast<unsigned long long>(spec_digest));
  return buf;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

bool ResultCache::lookup(std::uint64_t digest, std::uint64_t seed,
                         driver::RunRecord* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(digest);
  if (it == map_.end()) return false;
  // The digest covers the seed, so a mismatch can only be a 64-bit hash
  // collision between different points. Serving the wrong record would be
  // silent corruption; missing costs one re-simulation.
  if (it->second.seed != seed) return false;
  *out = it->second.rec;
  return true;
}

void ResultCache::store(std::uint64_t digest, std::uint64_t seed,
                        const driver::RunRecord& rec) {
  if (digest == 0 || rec.status != driver::PointStatus::kOk) return;
  std::lock_guard<std::mutex> lock(mu_);
  map_[digest] = Entry{seed, rec};
}

}  // namespace psync::serve
