// Shared helpers for the reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace psync::bench {

/// Fast mode (PSYNC_FAST=1) shrinks the expensive cycle-level experiments
/// for quick iteration; default regenerates the paper's full configuration.
inline bool fast_mode() {
  const char* v = std::getenv("PSYNC_FAST");
  return v != nullptr && v[0] == '1';
}

/// Tracks pass/fail of shape checks; main() returns fail count.
class ShapeChecks {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
    if (!ok) ++failures_;
  }
  int failures() const { return failures_; }

  int finish(const char* name) const {
    if (failures_ == 0) {
      std::printf("\n%s: all shape checks passed\n", name);
    } else {
      std::printf("\n%s: %d shape check(s) FAILED\n", name, failures_);
    }
    return failures_;
  }

 private:
  int failures_ = 0;
};

}  // namespace psync::bench
