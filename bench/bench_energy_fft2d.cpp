// Extension experiment (ours): end-to-end energy of the full 2D FFT flow on
// both machine simulators, carrying the paper's Fig. 5 per-bit transport
// models through a complete application. The paper's conclusion claims
// "large gains in performance and energy efficiency"; this bench quantifies
// the energy half on the same runs that produce the performance numbers.
#include <cstdio>

#include "bench_util.hpp"
#include "psync/common/rng.hpp"
#include "psync/common/table.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/core/psync_machine.hpp"

namespace {

int run() {
  using namespace psync;
  bench::ShapeChecks checks;

  Rng rng(11);
  const std::size_t dim = 64;
  std::vector<std::complex<double>> input(dim * dim);
  for (auto& v : input) {
    v = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }

  Table t({"machine", "time (us)", "comm E (nJ)", "compute E (nJ)",
           "total E (nJ)", "pJ/flop"});
  t.set_title(
      "End-to-end 2D FFT (64x64, 16 processors): time and energy\n"
      "(comm = transport energy of every word moved; compute = FPU energy)");

  core::PsyncMachineParams pp;
  pp.processors = 16;
  pp.matrix_rows = dim;
  pp.matrix_cols = dim;
  pp.delivery_blocks = 4;
  pp.head.dram.row_switch_cycles = 0;
  core::PsyncMachine psm(pp);
  const auto pr = psm.run_fft2d(input, false);
  t.row()
      .add("P-sync (PSCAN)")
      .add(pr.total_ns * 1e-3, 2)
      .add(pr.comm_energy_pj * 1e-3, 2)
      .add(pr.compute_energy_pj * 1e-3, 2)
      .add(pr.total_energy_pj() * 1e-3, 2)
      .add(pr.pj_per_flop(), 2);

  core::MeshMachineParams mp;
  mp.grid = 4;
  mp.matrix_rows = dim;
  mp.matrix_cols = dim;
  mp.elements_per_packet = 32;
  mp.mi.dram.row_switch_cycles = 0;
  core::MeshMachine msm(mp);
  const auto mr = msm.run_fft2d(input, false);
  t.row()
      .add("electronic mesh")
      .add(mr.total_ns * 1e-3, 2)
      .add(mr.comm_energy_pj * 1e-3, 2)
      .add(mr.compute_energy_pj * 1e-3, 2)
      .add(mr.total_energy_pj() * 1e-3, 2)
      .add(mr.pj_per_flop(), 2);

  std::printf("%s\n", t.to_string().c_str());
  std::printf("Transport energy ratio (mesh / P-sync): %.2fx\n",
              mr.comm_energy_pj / pr.comm_energy_pj);
  std::printf("End-to-end energy ratio: %.2fx\n\n",
              mr.total_energy_pj() / pr.total_energy_pj());

  checks.expect(mr.comm_energy_pj > 2.0 * pr.comm_energy_pj,
                "mesh transport energy >2x P-sync on the same workload");
  checks.expect(mr.total_energy_pj() > pr.total_energy_pj(),
                "P-sync wins end-to-end energy too");
  checks.expect(pr.total_ns < mr.total_ns, "and end-to-end time");
  return checks.finish("bench_energy_fft2d");
}

}  // namespace

int main() { return run(); }
