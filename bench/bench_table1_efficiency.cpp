// Regenerates paper Table I: "Compute efficiency for zero latency" —
// blocked-FFT delivery on 256 processors, 1024-point rows, with bandwidth
// balanced per block size (Eq. 17-20). Also cross-checks the closed form
// against the real P-sync machine simulator (slot-exact SCA delivery plus
// actual FFT butterfly execution) at a machine-feasible configuration.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "psync/analysis/fft_model.hpp"
#include "psync/common/table.hpp"
#include "psync/core/psync_machine.hpp"

namespace {

int run() {
  using namespace psync;
  bench::ShapeChecks checks;

  analysis::FftWorkload w;  // the paper's parameters
  const auto rows = analysis::table1(w, 64);

  const double paper_eta[] = {50.00, 68.97, 83.33, 91.95, 96.39, 98.46, 99.38};
  const double paper_wp[] = {409.6, 455.1, 512.0, 585.1, 682.7, 819.2, 1024.0};

  Table t({"k", "S_b", "t_ck (ns)", "t_cf (ns)", "W_p (Gb/s)", "eta (%)",
           "paper eta (%)"});
  t.set_title(
      "Table I: compute efficiency for zero latency\n"
      "(1024-pt FFTs, P=256, 2 ns FP multiply, 4 mults/butterfly, S_s=64)");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    t.row()
        .add(static_cast<std::int64_t>(r.k))
        .add(static_cast<std::int64_t>(r.block_size))
        .add(r.t_ck_ns.value(), 0)
        .add(r.t_cf_ns.value(), 0)
        .add(r.bandwidth_gbps.value(), 1)
        .add(r.efficiency * 100.0, 2)
        .add(paper_eta[i], 2);
  }
  std::printf("%s\n", t.to_string().c_str());

  for (std::size_t i = 0; i < rows.size(); ++i) {
    checks.expect(std::abs(rows[i].efficiency * 100.0 - paper_eta[i]) < 0.01,
                  "eta matches paper at k=" + std::to_string(rows[i].k));
    checks.expect(std::abs(rows[i].bandwidth_gbps.value() - paper_wp[i]) < 0.05,
                  "W_p matches paper at k=" + std::to_string(rows[i].k));
  }

  // Machine cross-check: the slot-exact simulator's pass-1 window efficiency
  // should track the Model II trend (rising with k).
  std::printf(
      "\nCross-check against the slot-exact P-sync machine "
      "(P=8, 8x512 matrix, waveguide-balanced):\n");
  double prev = 0.0;
  bool monotone = true;
  Table mt({"k", "machine pass-1 window (ns)", "relative speedup"});
  double base = 0.0;
  for (std::size_t k : {1, 2, 4, 8}) {
    core::PsyncMachineParams p;
    p.processors = 8;
    p.matrix_rows = 8;
    p.matrix_cols = 512;
    p.delivery_blocks = k;
    p.bus_length_cm = 0.1;
    p.head.dram.row_switch_cycles = 0;
    core::PsyncMachine m(p);
    std::vector<std::complex<double>> input(8 * 512, {1.0, 0.0});
    const auto rep = m.run_fft2d(input, /*verify=*/false);
    const double window = rep.phase("row_ffts").end_ns -
                          rep.phase("scatter_rows").start_ns;
    if (base == 0.0) base = window;
    mt.row()
        .add(static_cast<std::int64_t>(k))
        .add(window, 1)
        .add(base / window, 3);
    const double eta = 1.0 / window;
    if (eta <= prev) monotone = false;
    prev = eta;
  }
  std::printf("%s\n", mt.to_string().c_str());
  checks.expect(monotone,
                "machine efficiency rises with k (Model II overlap)");

  return checks.finish("bench_table1_efficiency");
}

}  // namespace

int main() { return run(); }
