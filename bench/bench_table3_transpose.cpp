// Regenerates paper Table III: completion time of the 2^20-sample transpose
// writeback.
//
//   * PSCAN side: the slot-exact SCA gather at full waveguide utilization,
//     landed in DRAM rows by the memory controller — Eq. 23/24 predicts
//     1,081,344 bus cycles and the engine must hit it exactly.
//   * Mesh side: the full cycle-level wormhole simulation — 32x32 mesh,
//     2-flit buffers, 64-bit flits, single memory port whose interface
//     reorders at t_p cycles/element (paper compares t_p = 1 and t_p = 4).
//
// The paper reports 3,526,620 cycles (3.26x) and 6,553,448 (6.06x); our
// reconstruction of the unpublished TLM model lands in the same band.
#include <cstdio>

#include "bench_util.hpp"
#include "psync/analysis/transpose_model.hpp"
#include "psync/common/table.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/core/sca.hpp"
#include "psync/dram/controller.hpp"

namespace {

int run() {
  using namespace psync;
  bench::ShapeChecks checks;

  const bool fast = bench::fast_mode();
  const std::size_t grid = fast ? 8 : 32;
  const std::size_t procs = grid * grid;
  const std::uint32_t elements = fast ? 256 : 1024;

  analysis::TransposeParams tp;
  tp.processors = procs;
  tp.row_samples = elements;

  // ---- PSCAN side: run the actual engine + DRAM controller ----
  // (At full scale the gather is 2^20 slot records; the engine handles it.)
  core::ScaEngine engine(core::straight_bus_topology(procs, 8.0));
  const auto sched = core::compile_gather_transpose(
      procs, 1, static_cast<core::Slot>(elements));
  std::vector<std::vector<core::Word>> data(
      procs, std::vector<core::Word>(elements, 0x5A5A5A5AULL));
  const auto g = engine.gather(sched, data);

  dram::DramParams dp;  // paper DRAM: 2048-bit rows, 64-bit bus+header
  dp.row_switch_cycles = 0;
  dram::MemoryController mc(dp);
  const std::uint64_t total_bits =
      static_cast<std::uint64_t>(procs) * elements * 64;
  const auto dram_rep = mc.stream_rows(0, dram::row_transactions(dp, total_bits));

  const std::uint64_t pscan_pred = analysis::pscan_writeback_cycles(tp);
  std::printf("PSCAN writeback (%zu procs x %u samples):\n", procs, elements);
  std::printf("  engine stream: %zu slots, gap-free=%d, utilization=%.4f\n",
              g.stream.size(), g.gap_free ? 1 : 0, g.utilization);
  std::printf("  DRAM bus cycles: %llu (Eq. 23/24 predicts %llu)\n\n",
              static_cast<unsigned long long>(dram_rep.bus_cycles),
              static_cast<unsigned long long>(pscan_pred));
  checks.expect(g.gap_free && g.collisions.empty(),
                "SCA stream gap-free with zero collisions");
  checks.expect(dram_rep.bus_cycles == pscan_pred,
                "PSCAN bus cycles equal Eq. 23 x Eq. 24 exactly");
  if (!fast) {
    checks.expect(pscan_pred == analysis::kPaperPscanCycles,
                  "PSCAN = 1,081,344 cycles (paper Table III)");
  }

  // ---- Mesh side: full cycle-level simulation at t_p = 1 and 4 ----
  Table t({"t_p", "writeback (cycles)", "multiplier vs PSCAN",
           "paper cycles", "paper multiplier"});
  t.set_title("Table III: transpose completion time in cycles");
  const std::uint64_t paper_cycles[] = {analysis::kPaperMeshCyclesTp1,
                                        analysis::kPaperMeshCyclesTp4};
  const double paper_mult[] = {3.26, 6.06};
  int idx = 0;
  for (std::uint32_t t_p : {1u, 4u}) {
    core::MeshMachineParams mp;
    mp.grid = grid;
    mp.matrix_rows = procs;       // informational only for this run
    mp.matrix_cols = elements;
    mp.elements_per_packet = 32;  // one DRAM row per packet
    mp.mi.reorder_cycles_per_element = t_p;
    mp.mi.dram.row_switch_cycles = 0;
    core::MeshMachine mesh(mp);
    const auto rep = mesh.run_transpose_writeback(elements);
    const double mult = static_cast<double>(rep.completion_cycle) /
                        static_cast<double>(pscan_pred);
    t.row()
        .add(static_cast<std::int64_t>(t_p))
        .add(static_cast<std::int64_t>(rep.completion_cycle))
        .add(mult, 2)
        .add(fast ? std::string("-")
                  : std::to_string(paper_cycles[idx]))
        .add(fast ? std::string("-") : format_double(paper_mult[idx], 2));
    if (t_p == 1) {
      checks.expect(mult > 2.6 && mult < 3.9,
                    "t_p=1 multiplier in the paper band (~3.26x)");
    } else {
      checks.expect(mult > 5.2 && mult < 6.8,
                    "t_p=4 multiplier in the paper band (~6.06x)");
    }
    ++idx;
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(mesh: %zux%zu wormhole, 2-flit buffers, 64-bit flits, single "
              "memory port%s)\n",
              grid, grid, fast ? "; PSYNC_FAST reduced scale" : "");

  return checks.finish("bench_table3_transpose");
}

}  // namespace

int main() { return run(); }
