// Regenerates paper Table II: "Electronic mesh compute efficiency with
// latency" — the Table I workload burdened with Eq. 21/22 routing overhead
// (sqrt(P)*t_r cycles per packet). Cross-checks the per-packet overhead
// model against the cycle-level wormhole mesh in an uncongested regime.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "psync/analysis/mesh_model.hpp"
#include "psync/common/table.hpp"
#include "psync/mesh/mesh.hpp"

namespace {

int run() {
  using namespace psync;
  bench::ShapeChecks checks;

  analysis::FftWorkload w;
  analysis::MeshDeliveryParams mesh;  // t_r = 1
  const auto rows = analysis::table2(w, mesh, 64);

  const double paper_eta_d[] = {98.46, 96.97, 94.12, 88.89, 80.00, 66.67, 50.01};
  const double paper_eta[] = {49.23, 66.88, 78.43, 81.74, 77.11, 65.64, 49.70};

  Table t({"k", "eta_d (%)", "paper eta_d (%)", "eta (%)", "paper eta (%)"});
  t.set_title(
      "Table II: electronic mesh compute efficiency with latency\n"
      "(square 256-processor mesh, t_r = 1 cycle per router)");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.row()
        .add(static_cast<std::int64_t>(rows[i].k))
        .add(rows[i].delivery_efficiency * 100.0, 2)
        .add(paper_eta_d[i], 2)
        .add(rows[i].compute_efficiency * 100.0, 2)
        .add(paper_eta[i], 2);
  }
  std::printf("%s\n", t.to_string().c_str());

  std::uint64_t best_k = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    checks.expect(
        std::abs(rows[i].delivery_efficiency * 100.0 - paper_eta_d[i]) < 0.05,
        "eta_d matches paper at k=" + std::to_string(rows[i].k));
    checks.expect(
        std::abs(rows[i].compute_efficiency * 100.0 - paper_eta[i]) < 0.5,
        "eta matches paper at k=" + std::to_string(rows[i].k));
    if (rows[i].compute_efficiency > best) {
      best = rows[i].compute_efficiency;
      best_k = rows[i].k;
    }
  }
  checks.expect(best_k == 8, "efficiency peaks at k=8 (paper: 82% at k=8)");

  // Cycle-level cross-check of the Eq. 21 overhead: a lone packet of F
  // flits crossing H hops takes ~F + (H+1)*(1+t_r) cycles; the per-packet
  // routing overhead term is t_r per traversed router.
  std::printf("Cycle-level check of Eq. 21 overhead (single packet, 16x16 "
              "mesh):\n");
  Table mt({"flits F", "hops H", "measured latency", "F + (H+1)*(1+t_r)"});
  bool overhead_ok = true;
  for (std::uint32_t flits : {16u, 64u, 256u}) {
    mesh::MeshParams mp;
    mp.width = 16;
    mp.height = 16;
    mesh::Mesh net(mp);
    mesh::PacketDesc d;
    d.src = net.node_at(0, 0);
    d.dst = net.node_at(15, 15);
    d.payload_flits = flits;
    net.inject(d);
    net.run_until_drained(100000);
    const double lat = net.packet_latency().mean();
    const double hops = 30.0;
    const double model = flits + (hops + 1.0) * 2.0;
    mt.row()
        .add(static_cast<std::int64_t>(flits))
        .add(static_cast<std::int64_t>(30))
        .add(lat, 1)
        .add(model, 1);
    if (std::abs(lat - model) > 4.0) overhead_ok = false;
  }
  std::printf("%s\n", mt.to_string().c_str());
  checks.expect(overhead_ok,
                "cycle-level per-router overhead matches the Eq. 21 model");

  return checks.finish("bench_table2_mesh");
}

}  // namespace

int main() { return run(); }
