// google-benchmark microbenchmarks for the simulation kernels themselves:
// how fast the simulators simulate. Useful when scaling experiments up.
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "psync/common/rng.hpp"
#include "psync/core/cp_compile.hpp"
#include "psync/core/psync_machine.hpp"
#include "psync/core/sca.hpp"
#include "psync/dram/controller.hpp"
#include "psync/fft/fft.hpp"
#include "psync/fft/plan_cache.hpp"
#include "psync/mesh/mesh.hpp"
#include "psync/mesh/traffic.hpp"

namespace {

using namespace psync;

void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  fft::FftPlan plan(n);
  Rng rng(1);
  std::vector<fft::Complex> sig(n);
  for (auto& v : sig) v = {rng.next_double(), rng.next_double()};
  for (auto _ : state) {
    auto copy = sig;
    benchmark::DoNotOptimize(plan.forward(copy));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftForward)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

// The cost the shared plan cache saves: constructing an FftPlan (twiddle
// tables + bit-reversal) per pass vs one mutex-guarded map lookup. The
// machines used to pay the former on every row/column pass.
void BM_FftPlanConstruct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    fft::FftPlan plan(n);
    benchmark::DoNotOptimize(plan.size());
  }
}
BENCHMARK(BM_FftPlanConstruct)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FftPlanCacheHit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  (void)fft::shared_plan(n);  // warm: all iterations below are hits
  for (auto _ : state) {
    benchmark::DoNotOptimize(&fft::shared_plan(n));
  }
}
BENCHMARK(BM_FftPlanCacheHit)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ScaGatherInterleaved(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const core::Slot elems = 256;
  core::ScaEngine engine(core::straight_bus_topology(nodes, 8.0));
  const auto sched = core::compile_gather_interleaved(nodes, elems);
  std::vector<std::vector<core::Word>> data(
      nodes, std::vector<core::Word>(static_cast<std::size_t>(elems), 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.gather(sched, data));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(nodes) * elems);
}
BENCHMARK(BM_ScaGatherInterleaved)->Arg(16)->Arg(64)->Arg(256);

void BM_MeshUniformRandomCyclesPerSec(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  std::int64_t cycles = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mesh::MeshParams p;
    p.width = dim;
    p.height = dim;
    mesh::Mesh m(p);
    Rng rng(3);
    for (const auto& d :
         mesh::uniform_random_traffic(m, dim * dim * 4, 4, rng)) {
      m.inject(d);
    }
    state.ResumeTiming();
    m.run_until_drained(10'000'000);
    cycles += m.cycle();
  }
  state.SetItemsProcessed(cycles);
  state.counters["sim_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_MeshUniformRandomCyclesPerSec)->Arg(8)->Arg(16)->Arg(32);

void BM_MeshSaturatedGather(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    mesh::MeshParams p;
    p.width = dim;
    p.height = dim;
    mesh::Mesh m(p);
    for (const auto& d : mesh::transpose_writeback_traffic(m, 0, 64, 32)) {
      m.inject(d);
    }
    state.ResumeTiming();
    m.run_until_drained(50'000'000);
  }
}
BENCHMARK(BM_MeshSaturatedGather)->Arg(8)->Arg(16);

void BM_CpCompileTranspose(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compile_gather_transpose(nodes, 1, 1024));
  }
}
BENCHMARK(BM_CpCompileTranspose)->Arg(256)->Arg(1024);

void BM_DramStreamRows(benchmark::State& state) {
  dram::DramParams p;
  for (auto _ : state) {
    dram::MemoryController mc(p);
    benchmark::DoNotOptimize(mc.stream_rows(0, 32768));
  }
}
BENCHMARK(BM_DramStreamRows);

void BM_PsyncMachineEndToEnd(benchmark::State& state) {
  core::PsyncMachineParams p;
  p.processors = 16;
  p.matrix_rows = 64;
  p.matrix_cols = 64;
  p.head.dram.row_switch_cycles = 0;
  std::vector<std::complex<double>> input(64 * 64, {1.0, 0.0});
  for (auto _ : state) {
    core::PsyncMachine m(p);
    benchmark::DoNotOptimize(m.run_fft2d(input, /*verify=*/false));
  }
}
BENCHMARK(BM_PsyncMachineEndToEnd);

}  // namespace
