// Regenerates paper Fig. 5: network energy per bit for the SCA gather
// pattern, electronic mesh vs PSCAN, at equal 320 Gb/s aggregate bandwidth
// to memory on a fixed 2 cm x 2 cm die.
//
//   * Mesh: the cycle-level wormhole simulator runs the gather (every node
//     streams to its nearest corner memory interface, the paper's 4-MC
//     configuration); the ORION-style model converts the recorded buffer /
//     crossbar / arbiter / link activity into picojoules. Link repeater
//     stages shrink with node count (paper Section III-C) but wire energy
//     tracks physical length, so per-bit energy grows with hop count.
//   * PSCAN: 32 wavelengths x 10 Gb/s; laser sized to the serpentine's
//     actual loss budget, plus modulator/receiver/SerDes dynamic energy and
//     per-ring thermal tuning, at the SCA's full utilization.
//
// The paper reports "at least a 5.2x improvement for the networks
// simulated"; every simulated size must beat that factor.
#include <array>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "psync/common/csv.hpp"
#include "psync/common/table.hpp"
#include "psync/mesh/energy_orion.hpp"
#include "psync/mesh/traffic.hpp"
#include "psync/core/sca.hpp"
#include "psync/photonic/energy.hpp"

namespace {

int run() {
  using namespace psync;
  bench::ShapeChecks checks;

  Table t({"nodes", "mesh pJ/bit", "mesh mm/hop", "repeaters/link",
           "PSCAN pJ/bit", "PSCAN spans", "mesh / PSCAN"});
  t.set_title(
      "Fig. 5: energy per bit, SCA gather pattern, 320 Gb/s to memory\n"
      "(2 cm x 2 cm die; mesh: 4 corner MCs, ORION activity model;\n"
      " PSCAN: 32 lambda x 10 Gb/s, laser sized to the link budget)");

  double min_ratio = 1e30;
  double prev_mesh = 0.0;
  bool mesh_grows = true;
  std::vector<std::array<double, 3>> series;

  for (std::uint32_t dim : {4u, 8u, 16u}) {
    const std::size_t nodes = static_cast<std::size_t>(dim) * dim;

    // --- Mesh side: simulate the gather and convert activity to energy ---
    mesh::MeshParams mp;
    mp.width = dim;
    mp.height = dim;
    mesh::Mesh net(mp);
    const std::uint32_t elements = 64;  // per node, 32-element packets
    const auto traffic = mesh::gather_to_corners_traffic(net, elements, 32);
    std::uint64_t payload_bits = 0;
    for (const auto& d : traffic) {
      payload_bits += static_cast<std::uint64_t>(d.payload_flits) * 64;
      net.inject(d);
    }
    net.run_until_drained(10'000'000);

    mesh::OrionParams op;
    op.flit_bits = 64;
    const auto orion = mesh::evaluate(op, net.activity(), dim, payload_bits);

    // --- PSCAN side: run the real SCA for the same payload and account
    // energy from the transaction's actual span (activity-based, like the
    // mesh side) ---
    photonic::PhotonicEnergyParams pp;
    // One 64-bit word per slot at 320 Gb/s aggregate -> 5 GHz slot clock.
    photonic::ClockParams clk;
    clk.frequency_ghz = slot_clock(pp.wdm.aggregate_gbps(), 64.0);
    core::ScaEngine engine(core::straight_bus_topology(nodes, 8.0, clk));
    const auto sched = core::compile_gather_interleaved(nodes, elements);
    std::vector<std::vector<core::Word>> node_data(
        nodes, std::vector<core::Word>(elements, 0xF00D));
    const auto g = engine.gather(sched, node_data);
    const std::uint64_t pscan_bits =
        static_cast<std::uint64_t>(nodes) * elements * 64;
    const auto txn =
        photonic::transaction_energy(pp, nodes, g.span_ps, pscan_bits);
    const auto pscan = photonic::pscan_energy_per_bit(pp, nodes);

    const double ratio = orion.pj_per_bit / txn.pj_per_bit;
    min_ratio = std::min(min_ratio, ratio);
    if (orion.pj_per_bit < prev_mesh) mesh_grows = false;
    prev_mesh = orion.pj_per_bit;
    series.push_back(
        {static_cast<double>(nodes), orion.pj_per_bit, txn.pj_per_bit});

    t.row()
        .add(static_cast<std::int64_t>(nodes))
        .add(orion.pj_per_bit, 3)
        .add(orion.link_mm_per_hop, 2)
        .add(static_cast<std::int64_t>(orion.repeaters_per_link))
        .add(txn.pj_per_bit, 3)
        .add(static_cast<std::int64_t>(pscan.spans))
        .add(ratio, 2);
  }
  std::printf("%s\n", t.to_string().c_str());

  if (auto dir = csv_output_dir()) {
    CsvWriter csv(*dir + "/fig5.csv", {"nodes", "mesh_pj", "pscan_pj"});
    for (const auto& s : series) csv.row().add(s[0]).add(s[1]).add(s[2]);
  }

  // Breakdown of the largest PSCAN configuration for the curious.
  {
    photonic::PhotonicEnergyParams pp;
    const auto e = photonic::pscan_energy_per_bit(pp, 256);
    std::printf("PSCAN 256-node breakdown (fJ/bit): laser %.1f, modulator "
                "%.1f, receiver %.1f, serdes %.1f, thermal %.1f\n\n",
                e.laser_fj_per_bit.value(), e.modulator_fj_per_bit.value(),
                e.receiver_fj_per_bit.value(), e.serdes_fj_per_bit.value(),
                e.thermal_fj_per_bit.value());
  }

  checks.expect(min_ratio >= 5.2,
                "PSCAN >= 5.2x better at every simulated size (paper: 'at "
                "least a 5.2x improvement')");
  checks.expect(mesh_grows,
                "mesh energy/bit grows with node count (hop count dominates "
                "link shortening)");
  return checks.finish("bench_fig5_energy");
}

}  // namespace

int main() { return run(); }
