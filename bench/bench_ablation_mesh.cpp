// Ablations on the mesh side of Table III: which microarchitectural choices
// actually produce the mesh's transpose penalty?
//   * t_p (reorder cycles/element) sweep,
//   * overlapped vs serialized interface stages,
//   * input buffer depth,
//   * XY vs minimal-adaptive routing,
//   * packet size (elements per packet).
#include <cstdio>

#include "bench_util.hpp"
#include "psync/analysis/transpose_model.hpp"
#include "psync/common/table.hpp"
#include "psync/common/rng.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/mesh/traffic.hpp"

namespace {

using psync::core::MeshMachine;
using psync::core::MeshMachineParams;

MeshMachineParams base(bool fast) {
  MeshMachineParams mp;
  mp.grid = fast ? 8 : 16;
  mp.matrix_rows = mp.grid * mp.grid;
  mp.matrix_cols = 256;
  mp.elements_per_packet = 32;
  mp.mi.reorder_cycles_per_element = 1;
  mp.mi.dram.row_switch_cycles = 0;
  return mp;
}

int run() {
  using namespace psync;
  bench::ShapeChecks checks;
  const bool fast = bench::fast_mode();
  const std::uint32_t elements = 256;

  const auto pscan = [&](const MeshMachineParams& mp) {
    analysis::TransposeParams tp;
    tp.processors = mp.grid * mp.grid;
    tp.row_samples = elements;
    return static_cast<double>(analysis::pscan_writeback_cycles(tp));
  };

  std::printf("Mesh transpose ablations (%zux%zu mesh, %u elements/node; "
              "multipliers vs the PSCAN optimum)\n\n",
              base(fast).grid, base(fast).grid, elements);

  // ---- t_p sweep ----
  {
    Table t({"t_p", "cycles", "multiplier"});
    t.set_title("A1: reorder penalty t_p");
    double m1 = 0.0, m8 = 0.0;
    for (std::uint32_t t_p : {0u, 1u, 2u, 4u, 8u}) {
      auto mp = base(fast);
      mp.mi.reorder_cycles_per_element = t_p;
      MeshMachine m(mp);
      const auto rep = m.run_transpose_writeback(elements);
      const double mult =
          static_cast<double>(rep.completion_cycle) / pscan(mp);
      if (t_p == 1) m1 = mult;
      if (t_p == 8) m8 = mult;
      t.row()
          .add(static_cast<std::int64_t>(t_p))
          .add(static_cast<std::int64_t>(rep.completion_cycle))
          .add(mult, 2);
    }
    std::printf("%s\n", t.to_string().c_str());
    checks.expect(m8 > m1 * 2.5, "t_p dominates the penalty once large");
  }

  // ---- Stage overlap ----
  {
    Table t({"stages", "cycles", "multiplier"});
    t.set_title("A2: serialized vs overlapped interface stages (t_p=4)");
    double serial = 0.0, overlap = 0.0;
    for (bool ov : {false, true}) {
      auto mp = base(fast);
      mp.mi.reorder_cycles_per_element = 4;
      mp.mi.overlap_stages = ov;
      MeshMachine m(mp);
      const auto rep = m.run_transpose_writeback(elements);
      const double mult =
          static_cast<double>(rep.completion_cycle) / pscan(mp);
      (ov ? overlap : serial) = mult;
      t.row()
          .add(ov ? "overlapped" : "serialized")
          .add(static_cast<std::int64_t>(rep.completion_cycle))
          .add(mult, 2);
    }
    std::printf("%s\n", t.to_string().c_str());
    checks.expect(serial > 2.0 * overlap,
                  "stage serialization explains most of the 6x case: a "
                  "pipelined interface recovers the port bound");
  }

  // ---- Buffer depth ----
  {
    Table t({"buffer depth", "cycles", "mean pkt latency"});
    t.set_title("A3: input buffer depth");
    std::int64_t d2 = 0, d16 = 0;
    for (std::uint32_t depth : {1u, 2u, 4u, 16u}) {
      auto mp = base(fast);
      mp.net.buffer_depth = depth;
      MeshMachine m(mp);
      const auto rep = m.run_transpose_writeback(elements);
      if (depth == 2) d2 = rep.completion_cycle;
      if (depth == 16) d16 = rep.completion_cycle;
      t.row()
          .add(static_cast<std::int64_t>(depth))
          .add(static_cast<std::int64_t>(rep.completion_cycle))
          .add(rep.mean_packet_latency_cycles, 0);
    }
    std::printf("%s\n", t.to_string().c_str());
    checks.expect(d16 <= d2,
                  "deeper buffers never hurt the saturated gather");
  }

  // ---- Routing algorithm ----
  {
    Table t({"routing", "cycles"});
    t.set_title("A4: XY vs west-first minimal adaptive");
    std::int64_t cycles[2] = {0, 0};
    int i = 0;
    for (auto algo : {mesh::RouteAlgo::kXY, mesh::RouteAlgo::kWestFirstAdaptive}) {
      auto mp = base(fast);
      mp.net.algo = algo;
      MeshMachine m(mp);
      const auto rep = m.run_transpose_writeback(elements);
      cycles[i++] = rep.completion_cycle;
      t.row()
          .add(algo == mesh::RouteAlgo::kXY ? "XY" : "west-first adaptive")
          .add(static_cast<std::int64_t>(rep.completion_cycle));
    }
    std::printf("%s\n", t.to_string().c_str());
    // Adaptivity cannot fix a single-port bottleneck (the paper's point
    // that path diversity does not help the gather endpoint).
    const double rel = static_cast<double>(cycles[1]) /
                       static_cast<double>(cycles[0]);
    checks.expect(rel > 0.9 && rel < 1.1,
                  "adaptive routing does not materially help the "
                  "port-bound transpose");
  }

  // ---- Packet size ----
  {
    Table t({"elements/packet", "cycles", "multiplier"});
    t.set_title("A5: packet size (header amortization)");
    double small_mult = 0.0, big_mult = 0.0;
    for (std::uint32_t epp : {4u, 8u, 16u, 32u, 64u}) {
      auto mp = base(fast);
      mp.elements_per_packet = epp;
      MeshMachine m(mp);
      const auto rep = m.run_transpose_writeback(elements);
      const double mult =
          static_cast<double>(rep.completion_cycle) / pscan(mp);
      if (epp == 4) small_mult = mult;
      if (epp == 64) big_mult = mult;
      t.row()
          .add(static_cast<std::int64_t>(epp))
          .add(static_cast<std::int64_t>(rep.completion_cycle))
          .add(mult, 2);
    }
    std::printf("%s\n", t.to_string().c_str());
    checks.expect(small_mult > big_mult,
                  "small packets pay more header/packetization overhead");
  }

  // ---- Memory-port parallelism ----
  {
    Table t({"ports", "cycles", "speedup vs 1 port",
             "aggregate cycles/element"});
    t.set_title("A6: corner memory interfaces (the paper's 4-MC layout)");
    std::int64_t one = 0;
    double agg4 = 0.0;
    for (std::uint32_t ports : {1u, 2u, 4u}) {
      MeshMachine m(base(fast));
      const auto rep = m.run_transpose_writeback_multiport(elements, ports);
      if (ports == 1) one = rep.completion_cycle;
      const double agg = static_cast<double>(rep.completion_cycle) /
                         static_cast<double>(rep.elements) * ports;
      if (ports == 4) agg4 = agg;
      t.row()
          .add(static_cast<std::int64_t>(ports))
          .add(static_cast<std::int64_t>(rep.completion_cycle))
          .add(static_cast<double>(one) /
                   static_cast<double>(rep.completion_cycle),
               2)
          .add(agg, 2);
    }
    std::printf("%s\n", t.to_string().c_str());
    checks.expect(agg4 > 33.0 / 32.0,
                  "even 4 ports leave the mesh above the PSCAN's aggregate "
                  "cycles/element (port-stage costs persist)");
  }

  // ---- Virtual channels ----
  {
    Table t({"VCs", "transpose cycles", "uniform-random drain cycles"});
    t.set_title(
        "A7: virtual channels — VCs fix head-of-line blocking, not endpoint "
        "bottlenecks");
    std::int64_t tr1 = 0, tr4 = 0, ur1 = 0, ur4 = 0;
    for (std::uint32_t vc : {1u, 2u, 4u}) {
      auto mp = base(fast);
      mp.net.virtual_channels = vc;
      MeshMachine m(mp);
      const auto rep = m.run_transpose_writeback(elements);

      mesh::MeshParams np = mp.net;
      mesh::Mesh uniform(np);
      Rng rng(42);
      const auto traffic = mesh::uniform_random_traffic(
          uniform, uniform.nodes() * 24, 8, rng);
      for (const auto& d : traffic) uniform.inject(d);
      uniform.run_until_drained(10'000'000);

      if (vc == 1) {
        tr1 = rep.completion_cycle;
        ur1 = uniform.cycle();
      }
      if (vc == 4) {
        tr4 = rep.completion_cycle;
        ur4 = uniform.cycle();
      }
      t.row()
          .add(static_cast<std::int64_t>(vc))
          .add(static_cast<std::int64_t>(rep.completion_cycle))
          .add(static_cast<std::int64_t>(uniform.cycle()));
    }
    std::printf("%s\n", t.to_string().c_str());
    const double tr_gain = static_cast<double>(tr1) / static_cast<double>(tr4);
    const double ur_gain = static_cast<double>(ur1) / static_cast<double>(ur4);
    checks.expect(tr_gain < 1.05,
                  "VCs do not rescue the single-port transpose (<5% gain) — "
                  "the paper's gather bottleneck is the endpoint");
    checks.expect(ur_gain > 1.02,
                  "VCs do help uniform-random traffic (head-of-line relief)");
  }

  return checks.finish("bench_ablation_mesh");
}

}  // namespace

int main() { return run(); }
