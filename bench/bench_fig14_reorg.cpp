// Regenerates paper Fig. 14: percentage of total 2D FFT runtime spent
// reorganizing data between the two 1D FFT passes (transpose write-out plus
// reload), mesh (blue) vs P-sync (green), as cores scale.
//
// Paper shape: the mesh's block-transpose share keeps growing with core
// count; the P-sync SCA share levels off at a "significantly more
// reasonable" fraction.
#include <cstdio>

#include "bench_util.hpp"
#include "psync/common/csv.hpp"
#include "psync/common/table.hpp"
#include "psync/llmore/llmore.hpp"

namespace {

int run() {
  using namespace psync;
  bench::ShapeChecks checks;

  llmore::LlmoreParams p;
  const auto pts = llmore::sweep(p, 4, 4096);

  Table t({"cores", "mesh reorg (%)", "P-sync reorg (%)",
           "mesh total (us)", "P-sync total (us)"});
  t.set_title(
      "Fig. 14: fraction of runtime spent reorganizing data for the 2D FFT");
  for (const auto& pt : pts) {
    t.row()
        .add(static_cast<std::int64_t>(pt.cores))
        .add(pt.reorg_frac_mesh * 100.0, 1)
        .add(pt.reorg_frac_psync * 100.0, 1)
        .add(pt.mesh.total_ns() * 1e-3, 1)
        .add(pt.psync.total_ns() * 1e-3, 1);
  }
  std::printf("%s\n", t.to_string().c_str());

  if (auto dir = csv_output_dir()) {
    CsvWriter csv(*dir + "/fig14.csv",
                  {"cores", "mesh_reorg_frac", "psync_reorg_frac"});
    for (const auto& pt : pts) {
      csv.row()
          .add(static_cast<std::int64_t>(pt.cores))
          .add(pt.reorg_frac_mesh)
          .add(pt.reorg_frac_psync);
    }
  }

  bool mesh_grows = true;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].reorg_frac_mesh < pts[i - 1].reorg_frac_mesh * 0.99) {
      mesh_grows = false;
    }
  }
  checks.expect(mesh_grows,
                "mesh reorganization share grows with core count");
  checks.expect(pts.back().reorg_frac_mesh > 0.4,
                "mesh reorganization dominates at 4096 cores");
  const double psync_step =
      pts[pts.size() - 1].reorg_frac_psync - pts[pts.size() - 2].reorg_frac_psync;
  checks.expect(psync_step < 0.05, "P-sync share levels off at scale");
  checks.expect(
      pts.back().reorg_frac_psync < pts.back().reorg_frac_mesh / 1.5,
      "P-sync share significantly below the mesh at scale");
  return checks.finish("bench_fig14_reorg");
}

}  // namespace

int main() { return run(); }
