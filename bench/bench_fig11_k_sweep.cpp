// Regenerates paper Fig. 11: FFT compute efficiency vs delivery block count
// k — P-sync (tracking the zero-latency bound thanks to pre-scheduled SCA^-1
// delivery) against the wormhole mesh whose per-packet routing overhead
// caps and then reverses the gains from smaller blocks.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "psync/analysis/mesh_model.hpp"
#include "psync/common/csv.hpp"
#include "psync/common/table.hpp"
#include "psync/driver/runner.hpp"
#include "psync/mesh/mesh.hpp"

namespace {

// Fig. 11 point as fetched from a driver RunRecord (workload "fig11").
struct Fig11Pt {
  std::uint64_t k = 0;
  double psync = 0.0;
  double mesh = 0.0;
};

int run() {
  using namespace psync;
  bench::ShapeChecks checks;

  // The k sweep dispatches through the shared experiment driver: one axis,
  // one registered workload, the pool free to run points in parallel.
  driver::ExperimentSpec spec;
  spec.workload = "fig11";
  spec.threads = 2;
  spec.axes.push_back({"k", {1, 2, 4, 8, 16, 32, 64}});
  const auto result = driver::Runner::run(spec);

  std::vector<Fig11Pt> pts;
  for (const auto& rec : result.records) {
    Fig11Pt p;
    p.k = static_cast<std::uint64_t>(rec.knobs.front().second);
    p.psync = driver::metric(rec, "psync_eta");
    p.mesh = driver::metric(rec, "mesh_eta");
    pts.push_back(p);
  }

  Table t({"k", "P-sync eta (%)", "mesh eta (%)", "P-sync / mesh"});
  t.set_title(
      "Fig. 11: FFT compute efficiency vs delivery blocks k\n"
      "(P-sync achieves near-ideal efficiency as k increases; the mesh is\n"
      " limited by the overhead of routing smaller packets)");
  for (const auto& p : pts) {
    t.row()
        .add(static_cast<std::int64_t>(p.k))
        .add(p.psync * 100.0, 2)
        .add(p.mesh * 100.0, 2)
        .add(p.psync / p.mesh, 2);
  }
  std::printf("%s\n", t.to_string().c_str());

  if (auto dir = csv_output_dir()) {
    CsvWriter csv(*dir + "/fig11.csv", {"k", "psync_eta", "mesh_eta"});
    for (const auto& p : pts) {
      csv.row()
          .add(static_cast<std::int64_t>(p.k))
          .add(p.psync)
          .add(p.mesh);
    }
  }

  // Cycle-level cross-check of the mesh curve: run the blocked delivery on
  // the real wormhole mesh (memory at a corner, one block per processor per
  // round) and measure overall efficiency with balanced compute
  // (t_ck = P*F cycles), comparing against the Eq. 21/22 closed form.
  {
    std::printf("Cycle-level mesh check (16 processors, 256-sample rows):\n");
    Table mt({"k", "measured eta (%)", "Table II model (%)",
              "pipelined-source model (%)"});
    analysis::FftWorkload w16;
    w16.processors = 16;
    w16.fft_points = 256;
    bool low_k_ok = true;
    std::vector<double> measured_series;
    for (std::uint64_t k : {1ull, 4ull, 16ull, 64ull}) {
      const std::uint32_t P = 16;
      const std::uint32_t n_samples = 256;
      const std::uint32_t flits = n_samples / static_cast<std::uint32_t>(k);

      mesh::MeshParams mp;
      mp.width = 4;
      mp.height = 4;
      mesh::Mesh net(mp);
      std::vector<mesh::ConsumeSink> sinks(net.nodes());
      for (mesh::NodeId n = 0; n < net.nodes(); ++n) {
        sinks[n].keep_log(true);
        net.set_sink(n, &sinks[n]);
      }
      // Round-robin blocked delivery, serialized at the corner memory node.
      for (std::uint64_t round = 0; round < k; ++round) {
        for (mesh::NodeId n = 0; n < net.nodes(); ++n) {
          mesh::PacketDesc d;
          d.src = 0;
          d.dst = n;
          d.payload_flits = flits;
          d.payload_base = round;  // block tag
          net.inject(d);
        }
      }
      net.run_until_drained(10'000'000);

      // Per-node block completion times -> Model II recurrence with
      // balanced compute t_ck = P * F cycles and the final log2(k) phase.
      const double t_ck = static_cast<double>(P) * flits;
      const double t_cf =
          static_cast<double>(analysis::final_mults(w16, k)) /
          static_cast<double>(analysis::block_mults(w16, k)) * t_ck;
      double last_done = 0.0;
      for (mesh::NodeId n = 0; n < net.nodes(); ++n) {
        std::vector<double> block_done(k, 0.0);
        const auto& log = sinks[n].log();
        const auto& cyc = sinks[n].log_cycles();
        for (std::size_t i = 0; i < log.size(); ++i) {
          if (!log[i].is_tail()) continue;  // block completes with its tail
          const std::uint64_t block = log[i].payload - (flits - 1);
          auto& bd = block_done[block];
          bd = std::max(bd, static_cast<double>(cyc[i]));
        }
        double cursor = 0.0;
        for (std::uint64_t b = 0; b < k; ++b) {
          cursor = std::max(cursor, block_done[b]) + t_ck;
        }
        cursor += t_cf;
        last_done = std::max(last_done, cursor);
      }
      const double t_c_total = static_cast<double>(k) * t_ck + t_cf;
      const double measured = t_c_total / last_done;
      const double model =
          analysis::table2_row(w16, k, analysis::MeshDeliveryParams{})
              .compute_efficiency;
      const double refined =
          analysis::mesh_delivery_efficiency_pipelined(
              16.0, static_cast<double>(flits), 1.0) *
          analysis::table1_row(w16, k).efficiency;
      mt.row()
          .add(static_cast<std::int64_t>(k))
          .add(measured * 100.0, 2)
          .add(model * 100.0, 2)
          .add(refined * 100.0, 2);
      measured_series.push_back(measured);
      if (k <= 4 && std::abs(measured - model) > 0.08) low_k_ok = false;
    }
    std::printf("%s", mt.to_string().c_str());
    std::printf(
        "(At large k the cycle-level mesh beats the closed form: Eq. 21 "
        "serializes the\n sqrt(P)*t_r header latency per packet, while a "
        "real pipelined source hides most\n of it. The model is a "
        "conservative bound; the peak-then-decline shape remains.)\n\n");
    checks.expect(low_k_ok,
                  "cycle-level mesh efficiency matches Eq. 21/22 within 8 "
                  "points at k <= 4");
    checks.expect(measured_series[2] > measured_series[0] &&
                      measured_series[3] < measured_series[2],
                  "cycle-level mesh efficiency also peaks then declines in k");
  }

  // Shape checks straight from the paper's narrative.
  bool psync_monotone = true;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].psync <= pts[i - 1].psync) psync_monotone = false;
  }
  checks.expect(psync_monotone, "P-sync efficiency rises monotonically in k");
  checks.expect(pts.back().psync > 0.99,
                "P-sync approaches ideal (>99%) at k=64");
  checks.expect(pts[3].mesh > pts[0].mesh && pts.back().mesh < pts[3].mesh,
                "mesh efficiency rises to k=8 then falls");
  checks.expect(pts.back().psync / pts.back().mesh > 1.9,
                "P-sync ~2x the mesh at k=64");
  bool dominated = true;
  for (const auto& p : pts) dominated &= p.psync > p.mesh;
  checks.expect(dominated, "P-sync dominates the mesh at every k");

  return checks.finish("bench_fig11_k_sweep");
}

}  // namespace

int main() { return run(); }
