// Wall-clock benchmark driver and perf-regression gate.
//
// Times the simulator hot paths (mesh drain, FFT kernels, reliability
// framing, driver sweeps) and writes BENCH_psync.json. Unlike the
// bench_table*/bench_fig* binaries — which check *simulated* results
// against the paper — this binary measures *host* wall time, so CI can
// catch performance regressions:
//
//   bench_driver --quick --json BENCH_psync.json
//   bench_driver --quick --baseline BENCH_psync.json [--max-regress 25]
//
// The `*_naive` / `*_reference` entries time the pre-optimization paths
// (idle-skip disabled, strided radix-2 kernel, per-word codec), which stay
// in the tree as the ground truth for the equivalence tests. Their ratio to
// the fast entries documents the speedup and guards it against erosion.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "psync/common/rng.hpp"
#include "psync/dist/shard.hpp"
#include "psync/dist/supervisor.hpp"
#include "psync/driver/runner.hpp"
#include "psync/driver/session.hpp"
#include "psync/fft/fft.hpp"
#include "psync/fft/four_step.hpp"
#include "psync/mesh/mesh.hpp"
#include "psync/perf/bench_report.hpp"
#include "psync/perf/stopwatch.hpp"
#include "psync/reliability/channel.hpp"
#include "psync/reliability/framing.hpp"

namespace {

using psync::perf::BenchEntry;
using psync::perf::BenchReport;
using psync::perf::Stopwatch;

struct BenchCase {
  std::string name;
  std::string note;
  std::uint64_t iters_full = 1;
  std::uint64_t iters_quick = 1;
  /// Runs `iters` repetitions, returns the domain-event total.
  std::function<std::uint64_t(std::uint64_t iters)> body;
};

// --- mesh ---------------------------------------------------------------

std::uint64_t run_mesh_drain_low_load(std::uint64_t iters, bool idle_skip) {
  std::uint64_t cycles = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    psync::mesh::MeshParams mp;
    mp.width = 8;
    mp.height = 8;
    psync::mesh::Mesh net(mp);
    net.set_idle_skip(idle_skip);
    std::vector<psync::mesh::ConsumeSink> sinks(net.nodes());
    for (psync::mesh::NodeId n = 0; n < net.nodes(); ++n) {
      net.set_sink(n, &sinks[n]);
    }
    // Sparse traffic: one short packet every 16k cycles — the drain is
    // ~99% idle cycles, the idle-skip fast-forward's best case.
    for (int i = 0; i < 64; ++i) {
      psync::mesh::PacketDesc d;
      d.src = static_cast<psync::mesh::NodeId>(i % 64);
      d.dst = static_cast<psync::mesh::NodeId>((i * 37 + 5) % 64);
      d.payload_flits = 8;
      d.release_cycle = static_cast<std::int64_t>(i) * 16384;
      net.inject(d);
    }
    net.run_until_drained(10'000'000);
    cycles += static_cast<std::uint64_t>(net.cycle());
  }
  return cycles;
}

std::uint64_t run_mesh_random_traffic(std::uint64_t iters) {
  std::uint64_t cycles = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    psync::mesh::MeshParams mp;
    mp.width = 8;
    mp.height = 8;
    psync::mesh::Mesh net(mp);
    std::vector<psync::mesh::ConsumeSink> sinks(net.nodes());
    for (psync::mesh::NodeId n = 0; n < net.nodes(); ++n) {
      net.set_sink(n, &sinks[n]);
    }
    psync::Rng rng(2026 + it);
    for (int i = 0; i < 2000; ++i) {
      psync::mesh::PacketDesc d;
      d.src = static_cast<psync::mesh::NodeId>(rng.next_u64() % 64);
      d.dst = static_cast<psync::mesh::NodeId>(rng.next_u64() % 64);
      d.payload_flits = 4 + static_cast<std::uint32_t>(rng.next_u64() % 13);
      d.release_cycle = static_cast<std::int64_t>(rng.next_u64() % 20000);
      net.inject(d);
    }
    net.run_until_drained(10'000'000);
    cycles += static_cast<std::uint64_t>(net.cycle());
  }
  return cycles;
}

// Congested stepping at size, with optional hotspot traffic (half of all
// packets target the center node) and optional reference datapath — the
// `_reference` variants time the retained AoS implementation on identical
// traffic, so the JSON documents the SoA speedup per pattern.
std::uint64_t run_mesh_traffic(std::uint64_t iters, std::uint32_t dim,
                               bool hotspot, bool reference) {
  const bool saved = psync::mesh::reference_datapath();
  psync::mesh::set_reference_datapath(reference);
  const std::uint32_t nodes = dim * dim;
  const int packets = static_cast<int>(nodes) * 31;  // ~2k at 8x8
  std::uint64_t cycles = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    psync::mesh::MeshParams mp;
    mp.width = dim;
    mp.height = dim;
    psync::mesh::Mesh net(mp);
    std::vector<psync::mesh::ConsumeSink> sinks(net.nodes());
    for (psync::mesh::NodeId n = 0; n < net.nodes(); ++n) {
      net.set_sink(n, &sinks[n]);
    }
    const psync::mesh::NodeId center = net.node_at(dim / 2, dim / 2);
    psync::Rng rng(2026 + it);
    for (int i = 0; i < packets; ++i) {
      psync::mesh::PacketDesc d;
      d.src = static_cast<psync::mesh::NodeId>(rng.next_u64() % nodes);
      d.dst = static_cast<psync::mesh::NodeId>(rng.next_u64() % nodes);
      if (hotspot && (i & 1) != 0) d.dst = center;
      d.payload_flits = 4 + static_cast<std::uint32_t>(rng.next_u64() % 13);
      d.release_cycle = static_cast<std::int64_t>(rng.next_u64() % 20000);
      net.inject(d);
    }
    net.run_until_drained(10'000'000);
    cycles += static_cast<std::uint64_t>(net.cycle());
  }
  psync::mesh::set_reference_datapath(saved);
  return cycles;
}

// --- fft ----------------------------------------------------------------

std::vector<psync::fft::Complex> fft_input(std::size_t n) {
  std::vector<psync::fft::Complex> x(n);
  psync::Rng rng(7);
  for (auto& v : x) {
    v = {rng.next_double() - 0.5, rng.next_double() - 0.5};
  }
  return x;
}

std::uint64_t run_fft_kernel(std::uint64_t iters, bool fast) {
  const bool saved = psync::fft::fast_kernel();
  psync::fft::set_fast_kernel(fast);
  const std::size_t n = 4096;
  psync::fft::FftPlan plan(n);
  const auto input = fft_input(n);
  auto data = input;
  std::uint64_t butterflies = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    data = input;
    const auto ops = plan.forward(data);
    butterflies += ops.butterflies;
  }
  psync::fft::set_fast_kernel(saved);
  return butterflies;
}

std::uint64_t run_fft_four_step(std::uint64_t iters) {
  const std::size_t n = 65536;
  const auto input = fft_input(n);
  auto data = input;
  std::uint64_t butterflies = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    data = input;
    const auto ops = psync::fft::fft1d_four_step(data);
    butterflies += ops.butterflies;
  }
  return butterflies;
}

// --- reliability --------------------------------------------------------

std::uint64_t run_reliability_codec(std::uint64_t iters, bool fast) {
  const std::size_t kWords = 65536;
  const std::size_t kBlock = 64;
  std::vector<std::uint64_t> payload(kWords);
  psync::Rng rng(11);
  for (auto& w : payload) w = rng.next_u64();

  std::vector<std::uint64_t> wire;
  std::uint64_t words = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    psync::reliability::BlockDecode dec;
    for (std::size_t off = 0; off < kWords; off += kBlock) {
      wire.clear();
      if (fast) {
        psync::reliability::encode_block(payload.data() + off, kBlock, &wire);
        psync::reliability::decode_block_into(wire.data(), kBlock, true, &dec);
      } else {
        psync::reliability::encode_block_reference(payload.data() + off,
                                                   kBlock, &wire);
        dec = psync::reliability::decode_block_reference(wire.data(), kBlock,
                                                         true);
      }
      if (!dec.good()) std::abort();  // clean wire must decode
    }
    words += kWords;
  }
  return words;
}

std::uint64_t run_reliability_channel(std::uint64_t iters) {
  const std::size_t kWords = 65536;
  std::vector<std::uint64_t> payload(kWords);
  psync::Rng rng(13);
  for (auto& w : payload) w = rng.next_u64();

  std::uint64_t words = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    psync::reliability::FaultModel fault;
    fault.random_ber = 1e-6;
    fault.seed = 17 + it;
    psync::reliability::ReliabilityParams rp;
    rp.policy = psync::reliability::ReliabilityPolicy::kCorrectRetry;
    psync::reliability::ProtectedChannel ch(fault, rp);
    const auto tx = ch.transmit(payload);
    if (tx.retry.residual_errors != 0) std::abort();
    words += kWords;
  }
  return words;
}

// --- driver sweeps ------------------------------------------------------

std::uint64_t run_fig11_sweep(std::uint64_t iters) {
  std::uint64_t points = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    psync::driver::ExperimentSpec spec;
    spec.workload = "fig11";
    spec.axes.push_back({"k", {1, 2, 4, 8, 16, 32, 64}});
    const auto result = psync::driver::Session().run(spec);
    points += result.records.size();
  }
  return points;
}

std::uint64_t run_fig13_sweep(std::uint64_t iters) {
  std::uint64_t points = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    psync::driver::ExperimentSpec spec;
    spec.workload = "fig13";
    for (double c = 4; c <= 4096; c *= 4) {
      if (spec.axes.empty()) spec.axes.push_back({"cores", {}});
      spec.axes.front().values.push_back(c);
    }
    const auto result = psync::driver::Session().run(spec);
    points += result.records.size();
  }
  return points;
}

std::uint64_t run_fig13_fft2d(std::uint64_t iters, bool fast) {
  const bool saved = psync::fft::fast_kernel();
  psync::fft::set_fast_kernel(fast);
  std::uint64_t elements = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    // The fig13 measurement point re-run as a full machine simulation: a
    // 128x128 2D FFT on 16 processors with Model II (k=4) delivery,
    // verified against the monolithic reference — FFT-kernel dominated.
    psync::driver::ExperimentSpec spec;
    spec.workload = "fft2d";
    spec.machine.processors = 16;
    spec.machine.matrix_rows = 128;
    spec.machine.matrix_cols = 128;
    spec.machine.delivery_blocks = 4;
    spec.verify = true;
    const auto result = psync::driver::Session().run(spec);
    if (result.records.empty()) std::abort();
    elements += 128 * 128;
  }
  psync::fft::set_fast_kernel(saved);
  return elements;
}

// The checkpoint journal writes one fsync'd line per completed sweep point.
// This pair times the same sweep with and without the journal so the
// overhead of crash-safety stays visible — and gated — as a number.
constexpr const char* kBenchJournalPath = "bench_journal.tmp.jsonl";

std::uint64_t run_driver_sweep_fft2d(std::uint64_t iters, bool journal) {
  std::uint64_t points = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    psync::driver::ExperimentSpec spec;
    spec.workload = "fft2d";
    spec.machine.processors = 16;
    spec.machine.matrix_rows = 256;
    spec.machine.matrix_cols = 256;
    spec.axes.push_back({"blocks", {1, 2, 4, 8}});
    if (journal) spec.journal_path = kBenchJournalPath;
    const auto result = psync::driver::Session().run(spec);
    if (!result.campaign.all_ok()) std::abort();
    points += result.records.size();
    if (journal) std::remove(kBenchJournalPath);
  }
  return points;
}

// The distributed leader adds fork/exec, heartbeat supervision, and a
// final journal merge around the same sweep. With a single worker that
// wrapper is pure overhead, so timing it against the in-process journaled
// sweep isolates the cost of distribution itself.
constexpr const char* kBenchDistBase = "bench_dist.tmp";

std::uint64_t run_driver_sweep_dist(std::uint64_t iters) {
  std::uint64_t points = 0;
  for (std::uint64_t it = 0; it < iters; ++it) {
    psync::driver::ExperimentSpec spec;
    spec.workload = "fft2d";
    spec.machine.processors = 16;
    spec.machine.matrix_rows = 256;
    spec.machine.matrix_cols = 256;
    spec.axes.push_back({"blocks", {1, 2, 4, 8}});
    psync::dist::SupervisorOptions opts;
    opts.workers = 1;
    opts.journal_base = kBenchDistBase;
    const auto result = psync::dist::run_distributed(spec, opts);
    if (!result.campaign.all_ok()) std::abort();
    points += result.records.size();
    std::remove(psync::dist::shard_journal_path(kBenchDistBase, 0).c_str());
  }
  return points;
}

// --- harness ------------------------------------------------------------

std::vector<BenchCase> make_cases() {
  std::vector<BenchCase> cases;
  // Quick-mode counts for the gated entries stay >= 3 so the baseline
  // comparison is min-of-3 vs min-of-N, not min-of-1: a single descheduled
  // iteration on a shared runner would otherwise read as a regression.
  cases.push_back({"mesh_drain_low_load",
                   "8x8 mesh, 64 packets over ~1M cycles, idle-skip on",
                   20, 10,
                   [](std::uint64_t n) { return run_mesh_drain_low_load(n, true); }});
  cases.push_back({"mesh_drain_low_load_naive",
                   "same drain with idle-skip disabled (pre-optimization path)",
                   3, 1,
                   [](std::uint64_t n) { return run_mesh_drain_low_load(n, false); }});
  cases.push_back({"mesh_random_traffic",
                   "8x8 mesh, 2000 random packets (congested stepping)",
                   5, 3, run_mesh_random_traffic});
  cases.push_back({"mesh_random_traffic_reference",
                   "same traffic on the retained AoS reference datapath",
                   2, 1,
                   [](std::uint64_t n) { return run_mesh_traffic(n, 8, false, true); }});
  cases.push_back({"mesh_random_traffic_16x16",
                   "16x16 mesh, ~8000 random packets (congested stepping)",
                   3, 2,
                   [](std::uint64_t n) { return run_mesh_traffic(n, 16, false, false); }});
  cases.push_back({"mesh_random_traffic_16x16_reference",
                   "same 16x16 traffic on the AoS reference datapath",
                   1, 1,
                   [](std::uint64_t n) { return run_mesh_traffic(n, 16, false, true); }});
  cases.push_back({"mesh_hotspot",
                   "8x8 mesh, half of all packets target the center node",
                   3, 3,
                   [](std::uint64_t n) { return run_mesh_traffic(n, 8, true, false); }});
  cases.push_back({"mesh_hotspot_reference",
                   "same hotspot traffic on the AoS reference datapath",
                   1, 1,
                   [](std::uint64_t n) { return run_mesh_traffic(n, 8, true, true); }});
  cases.push_back({"fft_kernel_4096",
                   "4096-point forward FFT, fused radix-4 kernel",
                   2000, 200,
                   [](std::uint64_t n) { return run_fft_kernel(n, true); }});
  cases.push_back({"fft_kernel_4096_reference",
                   "4096-point forward FFT, strided radix-2 reference",
                   400, 50,
                   [](std::uint64_t n) { return run_fft_kernel(n, false); }});
  cases.push_back({"fft_four_step_64k",
                   "65536-point four-step FFT (shared twiddle table)",
                   20, 5, run_fft_four_step});
  cases.push_back({"reliability_codec",
                   "SECDED+CRC framing, 64k words, batched encode/decode",
                   30, 5,
                   [](std::uint64_t n) { return run_reliability_codec(n, true); }});
  cases.push_back({"reliability_codec_reference",
                   "SECDED+CRC framing, per-word reference encode/decode",
                   5, 2,
                   [](std::uint64_t n) { return run_reliability_codec(n, false); }});
  cases.push_back({"reliability_channel",
                   "ProtectedChannel correct+retry, 64k words, BER 1e-6",
                   30, 5, run_reliability_channel});
  cases.push_back({"fig11_sweep",
                   "driver k-sweep, 7 points (LLMORE closed form + models)",
                   40, 10, run_fig11_sweep});
  cases.push_back({"fig13_sweep",
                   "driver cores-sweep, 6 points (LLMORE closed form)",
                   200, 50, run_fig13_sweep});
  cases.push_back({"fig13_fft2d",
                   "fig13 point as machine sim: 128x128 fft2d, P=16, k=4",
                   10, 2,
                   [](std::uint64_t n) { return run_fig13_fft2d(n, true); }});
  cases.push_back({"fig13_fft2d_reference",
                   "same machine sim on the strided radix-2 reference kernel",
                   4, 1,
                   [](std::uint64_t n) { return run_fig13_fft2d(n, false); }});
  cases.push_back({"driver_sweep_no_journal",
                   "4-point 256x256 fft2d sweep, no checkpoint journal",
                   6, 2,
                   [](std::uint64_t n) { return run_driver_sweep_fft2d(n, false); }});
  cases.push_back({"driver_sweep_journal",
                   "same sweep with a per-point fsync'd checkpoint journal",
                   6, 2,
                   [](std::uint64_t n) { return run_driver_sweep_fft2d(n, true); }});
  cases.push_back({"driver_sweep_dist_1worker",
                   "same sweep through the distributed leader (1 worker)",
                   6, 2, run_driver_sweep_dist});
  return cases;
}

int usage(const char* argv0) {
  std::printf(
      "usage: %s [--quick] [--json PATH] [--baseline PATH]\n"
      "          [--max-regress PCT] [--filter SUBSTR] [--list]\n"
      "\n"
      "  --quick           reduced iteration counts (CI smoke run)\n"
      "  --json PATH       write results as JSON (default BENCH_psync.json)\n"
      "  --baseline PATH   compare against a previous JSON report; exit 1\n"
      "                    if any benchmark regressed (*_reference/*_naive\n"
      "                    oracle entries are reported but not gated)\n"
      "  --max-regress PCT allowed per-iteration slowdown (default 25)\n"
      "  --filter SUBSTR   only run benchmarks whose name contains SUBSTR\n"
      "  --list            print benchmark names and exit\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool list = false;
  std::string json_path = "BENCH_psync.json";
  std::string baseline_path;
  std::string filter;
  double max_regress = 25.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--baseline") {
      baseline_path = next();
    } else if (arg == "--max-regress") {
      max_regress = std::stod(next());
    } else if (arg == "--filter") {
      filter = next();
    } else if (arg == "--list") {
      list = true;
    } else {
      return usage(argv[0]);
    }
  }

  const auto cases = make_cases();
  if (list) {
    for (const auto& c : cases) std::printf("%s\n", c.name.c_str());
    return 0;
  }

  BenchReport report;
  report.quick = quick;
  std::printf("%-32s %10s %8s %14s  %s\n", "benchmark", "iters", "wall_ms",
              "per_iter_ms", "rate");
  for (const auto& c : cases) {
    if (!filter.empty() && c.name.find(filter) == std::string::npos) continue;
    BenchEntry e;
    e.name = c.name;
    e.note = c.note;
    e.iters = quick ? c.iters_quick : c.iters_full;
    c.body(1);  // untimed warmup: plan caches, twiddle tables, allocators
    // Time in up to 10 chunks and keep the fastest chunk's per-iteration
    // time: min-of-N is robust against scheduler noise on shared machines,
    // while chunking keeps per-case setup (plans, inputs) amortized.
    const std::uint64_t chunks = e.iters < 10 ? e.iters : 10;
    double min_iter = 0.0;
    for (std::uint64_t ch = 0; ch < chunks; ++ch) {
      std::uint64_t n = e.iters / chunks + (ch < e.iters % chunks ? 1 : 0);
      if (n == 0) continue;
      Stopwatch watch;
      e.events += c.body(n);
      const double ms = watch.elapsed_ms();
      e.wall_ms += ms;
      const double per = ms / static_cast<double>(n);
      if (min_iter == 0.0 || per < min_iter) min_iter = per;
    }
    e.min_iter_ms = min_iter;
    report.entries.push_back(e);
    std::printf("%-32s %10llu %8.1f %14.3f  %s\n", e.name.c_str(),
                static_cast<unsigned long long>(e.iters), e.wall_ms,
                e.per_iter_ms(),
                psync::perf::format_rate(e.events_per_sec(), "ev").c_str());
  }

  // Checkpoint-journal overhead gate: crash-safety must stay in the noise
  // next to the simulation itself. Fail only when the journaled sweep is
  // both >5% slower AND >5 ms/iter slower than the plain one — the absolute
  // floor keeps millisecond-level fsync jitter from flaking CI.
  {
    const BenchEntry* plain = nullptr;
    const BenchEntry* journaled = nullptr;
    for (const auto& e : report.entries) {
      if (e.name == "driver_sweep_no_journal") plain = &e;
      if (e.name == "driver_sweep_journal") journaled = &e;
    }
    if (plain != nullptr && journaled != nullptr &&
        plain->min_iter_ms > 0.0) {
      const double delta = journaled->min_iter_ms - plain->min_iter_ms;
      const double pct = 100.0 * delta / plain->min_iter_ms;
      std::printf("\njournal overhead: %+.3f ms/iter on %.3f ms/iter (%+.1f%%)\n",
                  delta, plain->min_iter_ms, pct);
      if (delta > 5.0 && pct > 5.0) {
        std::printf("FAIL: checkpoint journal costs more than 5%% of sweep time\n");
        return 1;
      }
    }
  }

  // Distributed-leader overhead gate: fork/exec, heartbeat supervision,
  // and the final shard merge must stay cheap next to the sweep itself.
  // Compared against the *journaled* in-process sweep — the worker also
  // journals, so the difference is distribution alone. Same dual
  // threshold shape: >10% AND >10 ms/iter, so process-spawn jitter on
  // loaded CI hosts can't flake the gate.
  {
    const BenchEntry* inproc = nullptr;
    const BenchEntry* dist = nullptr;
    for (const auto& e : report.entries) {
      if (e.name == "driver_sweep_journal") inproc = &e;
      if (e.name == "driver_sweep_dist_1worker") dist = &e;
    }
    if (inproc != nullptr && dist != nullptr && inproc->min_iter_ms > 0.0) {
      const double delta = dist->min_iter_ms - inproc->min_iter_ms;
      const double pct = 100.0 * delta / inproc->min_iter_ms;
      std::printf("dist overhead: %+.3f ms/iter on %.3f ms/iter (%+.1f%%)\n",
                  delta, inproc->min_iter_ms, pct);
      if (delta > 10.0 && pct > 10.0) {
        std::printf(
            "FAIL: distributed leader costs more than 10%% of sweep time\n");
        return 1;
      }
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    out << psync::perf::bench_report_json(report);
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const auto baseline = psync::perf::parse_bench_report(buf.str());
    // The gate protects the fast paths. *_reference / *_naive entries are
    // the deliberately slow oracles kept around to document the speedup
    // ratio; a "regression" there is machine noise, not a lost
    // optimization, so they stay in the JSON but out of the comparison.
    const auto ungated = [](const std::string& name) {
      const auto ends_with = [&](const char* suffix) {
        const std::size_t n = std::strlen(suffix);
        return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
      };
      return ends_with("_reference") || ends_with("_naive");
    };
    psync::perf::BenchReport gated_base = baseline;
    psync::perf::BenchReport gated_cur = report;
    std::erase_if(gated_base.entries,
                  [&](const auto& e) { return ungated(e.name); });
    std::erase_if(gated_cur.entries,
                  [&](const auto& e) { return ungated(e.name); });
    const auto cmp =
        psync::perf::compare_bench_reports(gated_base, gated_cur, max_regress);
    std::printf("\nbaseline comparison (max allowed regression %.0f%%):\n%s",
                max_regress, cmp.table().c_str());
    if (!cmp.ok) {
      std::printf("FAIL: performance regression detected\n");
      return 1;
    }
    std::printf("OK: no benchmark regressed\n");
  }
  return 0;
}
