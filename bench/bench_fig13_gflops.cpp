// Regenerates paper Fig. 13: simulated 2D FFT performance (GFLOPS) of the
// electronic mesh vs the P-sync architecture as cores scale 4 -> 4096, with
// the ideal curve (limited by 4 memory controllers and the row-level
// parallelism of the 1024 x 1024 matrix).
//
// Paper shape: P-sync converges to ideal; the mesh peaks around 256 cores
// and declines; for P > 256 P-sync is 2-10x better.
#include <cstdio>

#include "bench_util.hpp"
#include "psync/common/csv.hpp"
#include "psync/common/table.hpp"
#include "psync/driver/runner.hpp"
#include "psync/llmore/llmore.hpp"

namespace {

// Fig. 13 point as fetched from a driver RunRecord (workload "fig13").
struct Fig13Pt {
  std::uint64_t cores = 0;
  double gflops_mesh = 0.0;
  double gflops_psync = 0.0;
  double gflops_ideal = 0.0;
};

int run() {
  using namespace psync;
  bench::ShapeChecks checks;

  // Core-count sweep through the shared experiment driver (default LLMORE
  // params: 1024x1024, 4 ports x 80 Gb/s = 320 Gb/s aggregate).
  driver::ExperimentSpec spec;
  spec.workload = "fig13";
  spec.threads = 2;
  // Paper sweep: 4 to 4096 cores in powers of 4 (mesh dim 2..64).
  for (double c = 4; c <= 4096; c *= 4) {
    if (spec.axes.empty()) spec.axes.push_back({"cores", {}});
    spec.axes.front().values.push_back(c);
  }
  const auto result = driver::Runner::run(spec);

  std::vector<Fig13Pt> pts;
  for (const auto& rec : result.records) {
    Fig13Pt pt;
    pt.cores = static_cast<std::uint64_t>(rec.knobs.front().second);
    pt.gflops_mesh = driver::metric(rec, "gflops_mesh");
    pt.gflops_psync = driver::metric(rec, "gflops_psync");
    pt.gflops_ideal = driver::metric(rec, "gflops_ideal");
    pts.push_back(pt);
  }

  Table t({"cores", "mesh GFLOPS", "P-sync GFLOPS", "ideal GFLOPS",
           "P-sync/mesh"});
  t.set_title(
      "Fig. 13: 2D FFT performance vs cores (1024x1024, Model I delivery,\n"
      "equal aggregate memory bandwidth; LLMORE-style phase simulation)");
  for (const auto& pt : pts) {
    t.row()
        .add(static_cast<std::int64_t>(pt.cores))
        .add(pt.gflops_mesh, 2)
        .add(pt.gflops_psync, 2)
        .add(pt.gflops_ideal, 2)
        .add(pt.gflops_psync / pt.gflops_mesh, 2);
  }
  std::printf("%s\n", t.to_string().c_str());

  if (auto dir = csv_output_dir()) {
    CsvWriter csv(*dir + "/fig13.csv",
                  {"cores", "mesh_gflops", "psync_gflops", "ideal_gflops"});
    for (const auto& pt : pts) {
      csv.row()
          .add(static_cast<std::int64_t>(pt.cores))
          .add(pt.gflops_mesh)
          .add(pt.gflops_psync)
          .add(pt.gflops_ideal);
    }
  }

  // Shape checks from the paper's narrative.
  std::uint64_t best_cores = 0;
  double best = 0.0;
  for (const auto& pt : pts) {
    if (pt.gflops_mesh > best) {
      best = pt.gflops_mesh;
      best_cores = pt.cores;
    }
  }
  checks.expect(best_cores == 256,
                "mesh performance peaks around 256 cores (paper)");
  checks.expect(pts.back().gflops_mesh < best,
                "mesh declines beyond its peak");
  bool psync_monotone = true;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].gflops_psync < pts[i - 1].gflops_psync * 0.999) {
      psync_monotone = false;
    }
  }
  checks.expect(psync_monotone, "P-sync performance never declines");
  checks.expect(pts.back().gflops_psync / pts.back().gflops_ideal > 0.85,
                "P-sync converges toward ideal at 4096 cores");
  for (const auto& pt : pts) {
    if (pt.cores > 256) {
      const double r = pt.gflops_psync / pt.gflops_mesh;
      checks.expect(r > 2.0 && r < 12.0,
                    "P-sync 2-10x the mesh at " + std::to_string(pt.cores) +
                        " cores (paper: 'two to ten times')");
    }
  }
  return checks.finish("bench_fig13_gflops");
}

}  // namespace

int main() { return run(); }
