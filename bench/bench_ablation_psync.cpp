// Ablations on the P-sync side: which design parameters matter for the
// architecture's efficiency?
//   * delivery block count k (Model I -> Model II),
//   * DRAM row size (burst amortization of the SCA writeback),
//   * bus length (flight time is pipeline fill, not throughput),
//   * waveguide rate (bandwidth balance, Eq. 19/20).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "psync/common/table.hpp"
#include "psync/core/psync_machine.hpp"

namespace {

using psync::core::PsyncMachine;
using psync::core::PsyncMachineParams;

PsyncMachineParams base() {
  PsyncMachineParams p;
  p.processors = 16;
  p.matrix_rows = 64;
  p.matrix_cols = 512;
  p.head.dram.row_switch_cycles = 0;
  return p;
}

std::vector<std::complex<double>> input_for(const PsyncMachineParams& p) {
  return std::vector<std::complex<double>>(p.matrix_rows * p.matrix_cols,
                                           {1.0, -0.5});
}

int run() {
  using namespace psync;
  bench::ShapeChecks checks;

  // ---- k sweep (Model I -> Model II) ----
  {
    Table t({"k", "total (us)", "efficiency (%)", "verified"});
    t.set_title("B1: delivery blocks k on the slot-exact machine");
    double eff1 = 0.0, eff8 = 0.0;
    for (std::size_t k : {1, 2, 4, 8, 16}) {
      auto p = base();
      p.delivery_blocks = k;
      PsyncMachine m(p);
      const auto rep = m.run_fft2d(input_for(p));
      if (k == 1) eff1 = rep.compute_efficiency;
      if (k == 8) eff8 = rep.compute_efficiency;
      t.row()
          .add(static_cast<std::int64_t>(k))
          .add(rep.total_ns * 1e-3, 2)
          .add(rep.compute_efficiency * 100.0, 2)
          .add(rep.max_error_vs_reference < 1e-4 ? "yes" : "NO");
      if (rep.max_error_vs_reference >= 1e-4 || !rep.sca_gap_free) {
        checks.expect(false, "machine run stays correct at k=" +
                                 std::to_string(k));
      }
    }
    std::printf("%s\n", t.to_string().c_str());
    checks.expect(eff8 > eff1,
                  "Model II overlap beats Model I on the real machine");
  }

  // ---- DRAM row size ----
  {
    Table t({"row bits", "transpose phase (us)"});
    t.set_title("B2: DRAM row size (SCA writeback burst amortization)");
    double small_row = 0.0, big_row = 0.0;
    for (std::uint64_t row_bits : {512ull, 1024ull, 2048ull, 8192ull}) {
      auto p = base();
      p.head.dram.row_size_bits = row_bits;
      PsyncMachine m(p);
      const auto rep = m.run_fft2d(input_for(p), /*verify=*/false);
      const double dur = rep.phase("sca_transpose").duration_ns();
      if (row_bits == 512) small_row = dur;
      if (row_bits == 8192) big_row = dur;
      t.row()
          .add(static_cast<std::int64_t>(row_bits))
          .add(dur * 1e-3, 2);
    }
    std::printf("%s\n", t.to_string().c_str());
    checks.expect(big_row < small_row,
                  "larger DRAM rows amortize headers (smaller t_t/S_r)");
  }

  // ---- Bus length ----
  {
    Table t({"bus (cm)", "total (us)", "transpose phase (us)"});
    t.set_title("B3: waveguide length (flight time is fill, not rate)");
    double t_short = 0.0, t_long = 0.0;
    for (double cm : {0.5, 2.0, 8.0, 32.0}) {
      auto p = base();
      p.bus_length_cm = cm;
      PsyncMachine m(p);
      const auto rep = m.run_fft2d(input_for(p), /*verify=*/false);
      if (cm == 0.5) t_short = rep.total_ns;
      if (cm == 32.0) t_long = rep.total_ns;
      t.row()
          .add(cm, 1)
          .add(rep.total_ns * 1e-3, 3)
          .add(rep.phase("sca_transpose").duration_ns() * 1e-3, 3);
    }
    std::printf("%s\n", t.to_string().c_str());
    // 31.5 cm extra at 7 cm/ns = 4.5 ns per collective, a few tens of ns
    // across the flow — negligible against ~100 us totals.
    checks.expect((t_long - t_short) / t_short < 0.01,
                  "64x longer bus changes total time by <1% (distance "
                  "independence)");
  }

  // ---- Waveguide rate ----
  {
    Table t({"Gb/s", "total (us)", "efficiency (%)"});
    t.set_title("B4: waveguide aggregate rate");
    double slow_eff = 0.0, fast_eff = 0.0;
    for (double gbps : {80.0, 160.0, 320.0, 640.0}) {
      auto p = base();
      p.waveguide_gbps = gbps;
      PsyncMachine m(p);
      const auto rep = m.run_fft2d(input_for(p), /*verify=*/false);
      if (gbps == 80.0) slow_eff = rep.compute_efficiency;
      if (gbps == 640.0) fast_eff = rep.compute_efficiency;
      t.row()
          .add(gbps, 0)
          .add(rep.total_ns * 1e-3, 2)
          .add(rep.compute_efficiency * 100.0, 2);
    }
    std::printf("%s\n", t.to_string().c_str());
    checks.expect(fast_eff > slow_eff,
                  "more bandwidth raises efficiency until compute bound");
  }

  return checks.finish("bench_ablation_psync");
}

}  // namespace

int main() { return run(); }
