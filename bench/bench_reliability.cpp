// google-benchmark microbenchmarks for the reliability layer: SECDED codec
// throughput, CRC folding, streaming fault injection (the geometric-gap
// fast path), and end-to-end ProtectedChannel transmissions. These bound
// how much wall-clock the fault loop adds to large machine simulations.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "psync/common/rng.hpp"
#include "psync/reliability/channel.hpp"
#include "psync/reliability/crc32.hpp"
#include "psync/reliability/fault_model.hpp"
#include "psync/reliability/framing.hpp"
#include "psync/reliability/secded.hpp"

namespace {

using namespace psync;

std::vector<std::uint64_t> random_words(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& w : v) w = rng.next_u64();
  return v;
}

void BM_SecdedEncode(benchmark::State& state) {
  const auto words = random_words(4096, 1);
  for (auto _ : state) {
    for (const auto w : words) {
      benchmark::DoNotOptimize(reliability::secded_encode(w));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(words.size()));
}
BENCHMARK(BM_SecdedEncode);

void BM_SecdedDecodeClean(benchmark::State& state) {
  const auto words = random_words(4096, 2);
  std::vector<std::uint8_t> checks(words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    checks[i] = reliability::secded_encode(words[i]);
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < words.size(); ++i) {
      benchmark::DoNotOptimize(
          reliability::secded_decode(words[i], checks[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(words.size()));
}
BENCHMARK(BM_SecdedDecodeClean);

void BM_Crc32Words(benchmark::State& state) {
  const auto words =
      random_words(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reliability::crc32_words(words.data(), words.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(words.size() * 8));
}
BENCHMARK(BM_Crc32Words)->Arg(64)->Arg(4096);

// The satellite fix under test: streaming injection must be O(flips), so
// sweeping the BER from 1e-9 to 1e-3 should change throughput only mildly
// compared to the naive 64-draws-per-word approach.
void BM_FaultStreamCorrupt(benchmark::State& state) {
  reliability::FaultModel fault;
  fault.random_ber = 1.0 / static_cast<double>(state.range(0));
  fault.dead_wavelengths = {13};
  reliability::FaultStream stream(fault);
  const auto words = random_words(4096, 4);
  for (auto _ : state) {
    for (const auto w : words) {
      benchmark::DoNotOptimize(stream.corrupt(w));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(words.size()));
}
BENCHMARK(BM_FaultStreamCorrupt)
    ->Arg(1000)
    ->Arg(1000000)
    ->Arg(1000000000);

void BM_EncodeDecodeBlock(benchmark::State& state) {
  const auto payload = random_words(64, 5);
  for (auto _ : state) {
    std::vector<std::uint64_t> wire;
    reliability::encode_block(payload.data(), payload.size(), &wire);
    benchmark::DoNotOptimize(
        reliability::decode_block(wire.data(), payload.size(), true));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EncodeDecodeBlock);

void BM_ChannelTransmit(benchmark::State& state) {
  reliability::FaultModel fault;
  fault.random_ber = 1e-6;
  fault.dead_wavelengths = {13, 41};
  reliability::ReliabilityParams params;
  params.policy = reliability::ReliabilityPolicy::kCorrectRetry;
  reliability::ProtectedChannel ch(fault, params);
  const auto payload =
      random_words(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.transmit(payload));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_ChannelTransmit)->Arg(4096)->Arg(65536);

}  // namespace
