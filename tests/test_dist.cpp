// Distributed sweeps (src/psync/dist): shard planning, the heartbeat wire
// codec, flock journal ownership, the crash-identical journal merge, the
// Runner's shard window, and full leader/worker supervision — worker
// crash restart, wedge detection via heartbeat liveness, crash-loop
// quarantine, and work stealing — all asserted against the tentpole
// invariant: the merged output is byte-identical to a single-process run.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/common/journal.hpp"
#include "psync/dist/heartbeat.hpp"
#include "psync/dist/merge.hpp"
#include "psync/dist/shard.hpp"
#include "psync/dist/supervisor.hpp"
#include "psync/dist/worker.hpp"
#include "psync/driver/runner.hpp"

namespace psync::dist {
namespace {

using driver::ExperimentSpec;
using driver::FailureKind;
using driver::PointStatus;
using driver::RunPoint;
using driver::RunRecord;
using driver::Runner;
using driver::SweepEngine;

/// Unique per test-process journal base: a stale journal from an earlier
/// run would otherwise be resumed (that's the feature) and poison a test.
std::string fresh_base(const std::string& name) {
  return testing::TempDir() + "psync_dist_" + std::to_string(::getpid()) +
         "_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// Cheap deterministic workload: the metric depends only on the point's
/// seed (which depends only on the global grid index), so any correctly
/// merged execution is byte-identical to a serial one. The t_p knob value
/// doubles as a per-point host sleep in ms, to give the supervisor's
/// timing machinery (stealing, liveness) something to observe.
class DistTestWorkload final : public driver::Workload {
 public:
  std::string name() const override { return "dist_test"; }
  RunRecord run(const RunPoint& pt) const override {
    double tp = 0.0;
    for (const auto& [knob, value] : pt.knobs) {
      if (knob == "t_p") tp = value;
    }
    if (tp > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(tp)));
    }
    RunRecord rec;
    rec.metrics.push_back(
        {"val", static_cast<double>(pt.seed % 1000003ULL) / 997.0, -1});
    return rec;
  }
};

ExperimentSpec make_spec(std::vector<double> tp_values) {
  driver::register_workload(std::make_unique<DistTestWorkload>());
  ExperimentSpec spec;
  spec.workload = "dist_test";
  spec.axes.push_back({"t_p", std::move(tp_values)});
  spec.threads = 1;
  spec.guard.max_retries = 0;
  return spec;
}

std::vector<double> uniform(std::size_t n, double v) {
  return std::vector<double>(n, v);
}

SupervisorOptions fast_opts(const std::string& base, std::size_t workers) {
  SupervisorOptions opts;
  opts.workers = workers;
  opts.journal_base = base;
  opts.heartbeat_ms = 10.0;
  opts.liveness_factor = 20.0;  // 200 ms — generous for loaded CI hosts
  opts.restart_backoff_ms = 1.0;
  opts.restart_backoff_max_ms = 10.0;
  opts.min_steal_points = 2;
  return opts;
}

// ---------------------------------------------------------------------------
// Shard planning

TEST(ShardPlan, BalancedContiguousGapFreeCover) {
  const auto shards = plan_shards(10, 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 4u);  // 10 % 3 extra point goes first
  EXPECT_EQ(shards[1].begin, 4u);
  EXPECT_EQ(shards[1].end, 7u);
  EXPECT_EQ(shards[2].begin, 7u);
  EXPECT_EQ(shards[2].end, 10u);
}

TEST(ShardPlan, MoreWorkersThanPointsYieldsSingletons) {
  const auto shards = plan_shards(3, 8);
  ASSERT_EQ(shards.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(shards[i].begin, i);
    EXPECT_EQ(shards[i].end, i + 1);
  }
}

TEST(ShardPlan, EdgeCases) {
  EXPECT_TRUE(plan_shards(0, 4).empty());
  const auto zero_workers = plan_shards(5, 0);  // treated as one worker
  ASSERT_EQ(zero_workers.size(), 1u);
  EXPECT_EQ(zero_workers[0].size(), 5u);
}

TEST(ShardPlan, SplitRangePreservesWindow) {
  const auto chunks = split_range({10, 21}, 4);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks.front().begin, 10u);
  EXPECT_EQ(chunks.back().end, 21u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].begin, chunks[i - 1].end);  // gap-free
    EXPECT_GE(chunks[i - 1].size(), chunks[i].size());
  }
}

TEST(ShardPlan, JournalNaming) {
  EXPECT_EQ(shard_journal_path("/tmp/base", 2), "/tmp/base.shard2.jsonl");
  EXPECT_EQ(shard_journal_path("/tmp/base", 2, 3),
            "/tmp/base.shard2.steal3.jsonl");
}

// ---------------------------------------------------------------------------
// Heartbeat wire codec

TEST(HeartbeatCodec, RoundTripsEveryKind) {
  for (const auto kind :
       {Heartbeat::Kind::kProgress, Heartbeat::Kind::kPointStart,
        Heartbeat::Kind::kPointDone}) {
    Heartbeat hb;
    hb.shard = 7;
    hb.kind = kind;
    hb.points_done = 42;
    hb.inflight = kind == Heartbeat::Kind::kPointStart ? 1337 : -1;
    Heartbeat parsed;
    ASSERT_TRUE(parse_heartbeat_line(heartbeat_line(hb), &parsed));
    EXPECT_EQ(parsed.shard, hb.shard);
    EXPECT_EQ(parsed.kind, hb.kind);
    EXPECT_EQ(parsed.points_done, hb.points_done);
    EXPECT_EQ(parsed.inflight, hb.inflight);
  }
}

TEST(HeartbeatCodec, RejectsGarbage) {
  Heartbeat hb;
  EXPECT_FALSE(parse_heartbeat_line("", &hb));
  EXPECT_FALSE(parse_heartbeat_line("hb", &hb));
  EXPECT_FALSE(parse_heartbeat_line("hb 1 x 0 -", &hb));
  EXPECT_FALSE(parse_heartbeat_line("hb 1 p 0", &hb));
  EXPECT_FALSE(parse_heartbeat_line("hb 1 p 0 - trailing", &hb));
  EXPECT_FALSE(parse_heartbeat_line("hb one p 0 -", &hb));
  EXPECT_FALSE(parse_heartbeat_line("xx 1 p 0 -", &hb));
  EXPECT_FALSE(parse_heartbeat_line("hb 1 p 0 -\n", &hb));  // raw newline
}

// ---------------------------------------------------------------------------
// Journal ownership (flock)

TEST(JournalLock, SecondOpenerGetsTypedBusyError) {
  const std::string path = fresh_base("lock.jsonl");
  JournalWriter owner;
  owner.open(path, /*keep_existing=*/false);
  owner.append("held");
  JournalWriter intruder;
  EXPECT_THROW(intruder.open(path, /*keep_existing=*/true), JournalBusyError);
  // The refused open must not have truncated or corrupted the journal.
  owner.append("still mine");
  owner.close();
  EXPECT_EQ(read_journal_lines(path),
            (std::vector<std::string>{"held", "still mine"}));
  // Ownership is releasable: after close the lock is free.
  JournalWriter next;
  EXPECT_NO_THROW(next.open(path, /*keep_existing=*/true));
  next.close();
  std::remove(path.c_str());
}

TEST(JournalLock, BusyIsASimulationErrorSubtype) {
  const std::string path = fresh_base("lock2.jsonl");
  JournalWriter owner;
  owner.open(path, false);
  JournalWriter intruder;
  EXPECT_THROW(intruder.open(path, true), SimulationError);
  owner.close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Journal merge

/// A complete shard journal file for `range`, built from a serial run.
void write_journal_for(const ExperimentSpec& spec, const ShardRange& range,
                       const std::string& path) {
  ExperimentSpec shard = spec;
  shard.shard_begin = range.begin;
  shard.shard_end = range.end;
  shard.journal_path = path;
  (void)Runner::run(shard);
}

TEST(Merge, ReassemblesInterleavedShardsInGridOrder) {
  const auto spec = make_spec(uniform(9, 0.0));
  const auto points = SweepEngine::expand(spec);
  const std::string base = fresh_base("merge");
  std::vector<std::string> paths;
  for (std::size_t s = 0; s < 3; ++s) {
    paths.push_back(shard_journal_path(base, s));
    write_journal_for(spec, {s * 3, s * 3 + 3}, paths.back());
  }
  const MergedJournal merged = merge_journals(points, "dist_test", paths);
  EXPECT_TRUE(merged.missing.empty());
  EXPECT_EQ(merged.duplicates, 0u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(merged.records[i].index, i);
    EXPECT_EQ(merged.records[i].status, PointStatus::kOk);
  }
  for (const auto& p : paths) std::remove(p.c_str());
}

TEST(Merge, AgreeingDuplicatesAreDedupedFirstWins) {
  const auto spec = make_spec(uniform(4, 0.0));
  const auto points = SweepEngine::expand(spec);
  const std::string base = fresh_base("dup");
  const std::string a = shard_journal_path(base, 0);
  const std::string b = shard_journal_path(base, 0, 1);
  write_journal_for(spec, {0, 4}, a);
  write_journal_for(spec, {2, 4}, b);  // overlaps points 2, 3
  const MergedJournal merged = merge_journals(points, "dist_test", {a, b});
  EXPECT_TRUE(merged.missing.empty());
  EXPECT_EQ(merged.duplicates, 2u);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Merge, ConflictingDuplicateStatusIsATypedError) {
  const auto spec = make_spec(uniform(2, 0.0));
  const auto points = SweepEngine::expand(spec);
  const std::string base = fresh_base("conflict");
  RunRecord ok;
  ok.index = 1;
  ok.workload = "dist_test";
  ok.metrics.push_back({"val", 1.0, 2});
  RunRecord failed = ok;
  failed.status = PointStatus::kFailed;
  failed.metrics.clear();
  failed.failure =
      driver::PointFailure{FailureKind::kInternalError, "boom", 1};
  const std::string a = base + ".a.jsonl";
  const std::string b = base + ".b.jsonl";
  write_file(a, driver::journal_line(ok, points[1].seed) + "\n");
  write_file(b, driver::journal_line(failed, points[1].seed) + "\n");
  EXPECT_THROW(merge_journals(points, "dist_test", {a, b}),
               JournalConflictError);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(Merge, OutOfGridAndMismatchedCampaignsAreTypedErrors) {
  const auto spec = make_spec(uniform(2, 0.0));
  const auto points = SweepEngine::expand(spec);
  const std::string path = fresh_base("alien.jsonl");
  RunRecord rec;
  rec.index = 99;  // outside the 2-point grid
  rec.workload = "dist_test";
  write_file(path, driver::journal_line(rec, 1) + "\n");
  EXPECT_THROW(merge_journals(points, "dist_test", {path}),
               JournalConflictError);
  rec.index = 0;  // in grid, wrong seed
  write_file(path, driver::journal_line(rec, points[0].seed + 1) + "\n");
  EXPECT_THROW(merge_journals(points, "dist_test", {path}),
               JournalConflictError);
  std::remove(path.c_str());
}

TEST(Merge, CorruptLineIsATypedError) {
  const auto spec = make_spec(uniform(2, 0.0));
  const auto points = SweepEngine::expand(spec);
  const std::string path = fresh_base("corrupt.jsonl");
  write_file(path, "{not a journal line}\n");
  EXPECT_THROW(merge_journals(points, "dist_test", {path}),
               JournalCorruptError);
  std::remove(path.c_str());
}

TEST(Merge, MissingFilesAndPointsAreReportedNotInvented) {
  const auto spec = make_spec(uniform(6, 0.0));
  const auto points = SweepEngine::expand(spec);
  const std::string base = fresh_base("sparse");
  const std::string have = shard_journal_path(base, 0);
  write_journal_for(spec, {0, 3}, have);
  const MergedJournal merged = merge_journals(
      points, "dist_test", {have, shard_journal_path(base, 1)});
  EXPECT_EQ(merged.missing, (std::vector<std::size_t>{3, 4, 5}));
  std::remove(have.c_str());
}

// ---------------------------------------------------------------------------
// Runner shard window

TEST(RunnerShard, WindowLimitsExecutionAndAccounting) {
  auto spec = make_spec(uniform(8, 0.0));
  spec.shard_begin = 2;
  spec.shard_end = 5;
  const auto result = Runner::run(spec);
  ASSERT_EQ(result.records.size(), 8u);
  EXPECT_EQ(result.campaign.points, 3u);
  EXPECT_EQ(result.campaign.ok, 3u);
  for (std::size_t i = 0; i < 8; ++i) {
    const bool in_window = i >= 2 && i < 5;
    EXPECT_EQ(!result.records[i].metrics.empty(), in_window) << "point " << i;
  }
}

TEST(RunnerShard, InvertedWindowIsAConfigError) {
  auto spec = make_spec(uniform(4, 0.0));
  spec.shard_begin = 3;
  spec.shard_end = 1;
  EXPECT_THROW(Runner::run(spec), ConfigError);
}

TEST(RunnerShard, ResumeToleratesOutOfWindowEntries) {
  // A replacement worker can inherit a journal whose range was since
  // re-partitioned: entries outside its window are spliced, not errors,
  // and only in-window entries count as resumed.
  auto spec = make_spec(uniform(6, 0.0));
  const std::string journal = fresh_base("window.jsonl");
  spec.journal_path = journal;
  (void)Runner::run(spec);  // full-grid journal: 6 entries

  auto windowed = spec;
  windowed.resume = true;
  windowed.shard_begin = 4;
  windowed.shard_end = 6;
  const auto result = Runner::run(windowed);
  EXPECT_EQ(result.campaign.resumed, 2u);  // only the in-window entries
  EXPECT_EQ(result.campaign.points, 2u);
  std::remove(journal.c_str());
}

// ---------------------------------------------------------------------------
// Distributed execution (in-process fork workers)

TEST(Distributed, MatchesSerialRunByteForByte) {
  const auto spec = make_spec(uniform(12, 1.0));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("happy");
  const auto dist = run_distributed(spec, fast_opts(base, 3));
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  EXPECT_EQ(driver::sweep_csv(dist), driver::sweep_csv(serial));
  EXPECT_EQ(dist.campaign.worker_restarts, 0u);
  EXPECT_TRUE(dist.campaign.worker_failures.empty());
}

TEST(Distributed, MissingJournalBaseIsAConfigError) {
  const auto spec = make_spec(uniform(4, 0.0));
  SupervisorOptions opts;
  opts.workers = 2;  // journal_base left empty
  EXPECT_THROW(run_distributed(spec, opts), ConfigError);
}

TEST(Distributed, AlreadyCancelledLeaderThrowsCancelled) {
  const auto spec = make_spec(uniform(4, 0.0));
  CancelToken cancel;
  cancel.cancel();
  auto opts = fast_opts(fresh_base("precancel"), 2);
  opts.cancel = &cancel;
  EXPECT_THROW(run_distributed(spec, opts), CancelledError);
}

TEST(Distributed, CrashedWorkerIsRestartedAndOutputIsIdentical) {
  const auto spec = make_spec(uniform(12, 1.0));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("crash");
  // First launch of shard 1 dies mid-shard with a hard _exit (no unwind,
  // no journal flush beyond completed points) — the SIGKILL shape.
  const LaunchHook hook = [](WorkerConfig& cfg) {
    if (cfg.shard == 1 && cfg.generation == 0) {
      cfg.crash_on_index = static_cast<std::int64_t>(cfg.range.begin + 1);
    }
  };
  auto opts = fast_opts(base, 3);
  // No stealing: if the other seats go idle before the crash is reaped
  // they would reclaim the dying shard as a steal, and this test is about
  // the restart path specifically (stealing has its own test).
  opts.steal = false;
  const auto dist = run_distributed(spec, opts, {}, hook);
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  EXPECT_EQ(driver::sweep_csv(dist), driver::sweep_csv(serial));
  EXPECT_GE(dist.campaign.worker_restarts, 1u);
  bool crash_incident = false;
  for (const auto& incident : dist.campaign.worker_failures) {
    crash_incident |= incident.kind == FailureKind::kInternalError;
  }
  EXPECT_TRUE(crash_incident);
}

TEST(Distributed, WedgedWorkerIsKilledByLivenessAndOutputIsIdentical) {
  const auto spec = make_spec(uniform(8, 1.0));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("wedge");
  auto opts = fast_opts(base, 2);
  opts.heartbeat_ms = 10.0;
  opts.liveness_factor = 8.0;  // 80 ms of silence = wedged
  opts.term_grace_ms = 200.0;
  // No stealing: the idle seat would otherwise SIGTERM the wedged worker
  // for its range before the liveness timeout gets to prove itself.
  opts.steal = false;
  // First launch of shard 0 goes silent (heartbeats stopped, thread hung)
  // at its second point — only the liveness timeout can catch this.
  const LaunchHook hook = [](WorkerConfig& cfg) {
    if (cfg.shard == 0 && cfg.generation == 0) {
      cfg.stall_on_index = static_cast<std::int64_t>(cfg.range.begin + 1);
    }
  };
  const auto dist = run_distributed(spec, opts, {}, hook);
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  EXPECT_GE(dist.campaign.worker_restarts, 1u);
  bool wedge_incident = false;
  for (const auto& incident : dist.campaign.worker_failures) {
    wedge_incident |= incident.kind == FailureKind::kTimeout;
  }
  EXPECT_TRUE(wedge_incident) << "liveness timeout should be in the taxonomy";
}

TEST(Distributed, CrashLoopingPointIsQuarantinedNotFatal) {
  const auto spec = make_spec(uniform(9, 0.0));
  const std::string base = fresh_base("quarantine");
  auto opts = fast_opts(base, 3);
  opts.crash_quarantine_after = 2;
  // Point 4 kills its worker on every launch, forever.
  const LaunchHook hook = [](WorkerConfig& cfg) {
    if (cfg.range.contains(4)) cfg.crash_on_index = 4;
  };
  const auto dist = run_distributed(spec, opts, {}, hook);
  ASSERT_EQ(dist.records.size(), 9u);
  EXPECT_EQ(dist.records[4].status, PointStatus::kQuarantined);
  ASSERT_TRUE(dist.records[4].failure.has_value());
  EXPECT_EQ(dist.records[4].failure->kind, FailureKind::kWorkerCrash);
  EXPECT_EQ(dist.campaign.quarantined, 1u);
  EXPECT_EQ(dist.campaign.ok, 8u);  // the sweep itself survived
  bool quarantine_incident = false;
  for (const auto& incident : dist.campaign.worker_failures) {
    quarantine_incident |= incident.kind == FailureKind::kWorkerCrash;
  }
  EXPECT_TRUE(quarantine_incident);
}

TEST(Distributed, IdleWorkersStealFromStragglersAndOutputIsIdentical) {
  // Shard 0's points are instant, shard 1's are slow: the first seat goes
  // idle early and must reclaim part of the straggler's range.
  std::vector<double> tp = uniform(6, 0.0);
  const auto slow = uniform(6, 40.0);
  tp.insert(tp.end(), slow.begin(), slow.end());
  const auto spec = make_spec(std::move(tp));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("steal");
  auto opts = fast_opts(base, 2);
  opts.term_grace_ms = 2000.0;
  const auto dist = run_distributed(spec, opts);
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  EXPECT_EQ(driver::sweep_csv(dist), driver::sweep_csv(serial));
  EXPECT_GE(dist.campaign.worker_steals, 1u);
}

// ---------------------------------------------------------------------------
// Socket transport (TCP frames, journal shipped to the leader)

SupervisorOptions socket_opts(const std::string& base, std::size_t workers) {
  auto opts = fast_opts(base, workers);
  opts.transport = TransportKind::kSocket;
  opts.listen_host = "127.0.0.1";
  opts.listen_port = 0;  // ephemeral
  return opts;
}

TEST(DistributedSocket, MatchesSerialRunByteForByte) {
  const auto spec = make_spec(uniform(12, 1.0));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("sock_happy");
  const auto dist = run_distributed(spec, socket_opts(base, 3));
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  EXPECT_EQ(driver::sweep_csv(dist), driver::sweep_csv(serial));
  EXPECT_EQ(dist.campaign.worker_restarts, 0u);
  EXPECT_EQ(dist.campaign.worker_fenced, 0u);
  EXPECT_TRUE(dist.campaign.worker_failures.empty());
}

TEST(DistributedSocket, StreamingMergeDeliversRecordsInGridOrder) {
  const auto spec = make_spec(uniform(10, 1.0));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("sock_stream");
  auto opts = socket_opts(base, 3);
  std::vector<std::size_t> streamed;
  opts.on_record = [&](std::size_t index, const RunRecord& rec) {
    streamed.push_back(index);
    EXPECT_EQ(rec.index, index);
  };
  const auto dist = run_distributed(spec, opts);
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  // Every point streamed, exactly once, in strictly ascending grid order.
  ASSERT_EQ(streamed.size(), 10u);
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], i);
  }
}

TEST(DistributedSocket, ChaosLossyLinksStillProduceIdenticalOutput) {
  const auto spec = make_spec(uniform(12, 2.0));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("sock_chaos");
  auto opts = socket_opts(base, 3);
  // Every link drops, duplicates, reorders and delays frames. The
  // correctness claim: at-least-once shipping + leader dedup + the
  // journal merge make all of this invisible in the output.
  const LaunchHook hook = [](WorkerConfig& cfg) {
    cfg.chaos.seed = 1000 + cfg.shard;
    cfg.chaos.drop = 0.15;
    cfg.chaos.duplicate = 0.15;
    cfg.chaos.reorder = 0.1;
    cfg.chaos.delay = 0.1;
    cfg.chaos.delay_ms = 10.0;
  };
  const auto dist = run_distributed(spec, opts, {}, hook);
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  EXPECT_EQ(driver::sweep_csv(dist), driver::sweep_csv(serial));
  EXPECT_EQ(dist.campaign.failed, 0u);
}

TEST(DistributedSocket, CrashedWorkerIsRestartedAndOutputIsIdentical) {
  const auto spec = make_spec(uniform(12, 1.0));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("sock_crash");
  auto opts = socket_opts(base, 3);
  opts.steal = false;  // the restart path specifically
  const LaunchHook hook = [](WorkerConfig& cfg) {
    if (cfg.shard == 1 && cfg.generation == 0) {
      cfg.crash_on_index = static_cast<std::int64_t>(cfg.range.begin + 1);
    }
  };
  const auto dist = run_distributed(spec, opts, {}, hook);
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  EXPECT_EQ(driver::sweep_csv(dist), driver::sweep_csv(serial));
  EXPECT_GE(dist.campaign.worker_restarts, 1u);
}

TEST(DistributedSocket, PartitionedWorkerIsFencedOnReconnect) {
  // The full zombie story. Shard 0's link partitions mid-shard: the
  // leader sees the connection die, waits out the liveness window,
  // declares kConnectionLost, revokes the epoch and relaunches the shard
  // — WITHOUT killing the old process (it may be unreachable, not dead).
  // The partition heals, the zombie reconnects claiming its revoked
  // epoch, and the leader must refuse it before it writes a single
  // record. Shard 2 is slow on purpose so the sweep is still running
  // when the zombie comes back.
  std::vector<double> tp;
  for (std::size_t i = 0; i < 4; ++i) tp.push_back(40.0);  // shard 0
  for (std::size_t i = 0; i < 4; ++i) tp.push_back(2.0);   // shard 1
  for (std::size_t i = 0; i < 4; ++i) tp.push_back(150.0); // shard 2
  const auto spec = make_spec(std::move(tp));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("sock_fence");
  auto opts = socket_opts(base, 3);
  opts.heartbeat_ms = 10.0;
  opts.liveness_factor = 10.0;  // 100 ms of post-disconnect silence
  opts.steal = false;  // idle seats must not reclaim the slow shard
  const LaunchHook hook = [](WorkerConfig& cfg) {
    if (cfg.shard == 0 && cfg.generation == 0) {
      cfg.chaos.seed = 77;
      cfg.chaos.partition_after = 10;  // a few beats in
      cfg.chaos.partition_ms = 250.0;  // heals while the sweep still runs
    }
  };
  const auto dist = run_distributed(spec, opts, {}, hook);
  // Identity is the non-negotiable part: the zombie's late writes were
  // fenced out, the replacement's journal is the only truth for shard 0.
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  EXPECT_EQ(driver::sweep_csv(dist), driver::sweep_csv(serial));
  EXPECT_GE(dist.campaign.worker_restarts, 1u);
  EXPECT_GE(dist.campaign.worker_fenced, 1u)
      << "the healed zombie should have been refused";
  bool lost_incident = false;
  for (const auto& incident : dist.campaign.worker_failures) {
    lost_incident |= incident.kind == FailureKind::kConnectionLost;
  }
  EXPECT_TRUE(lost_incident)
      << "connection loss should be its own failure class, not a wedge";
}

TEST(DistributedSocket, ReconnectingWorkerResumesWithoutDataLoss) {
  // A transient partition *shorter* than the liveness window: the leader
  // keeps the seat, the worker reconnects with the SAME epoch, retransmits
  // its unacked tail, and nothing is lost or duplicated in the output.
  const auto spec = make_spec(uniform(10, 15.0));
  const auto serial = Runner::run(spec);
  const std::string base = fresh_base("sock_reconnect");
  auto opts = socket_opts(base, 2);
  opts.heartbeat_ms = 10.0;
  opts.liveness_factor = 40.0;  // 400 ms — longer than the partition
  opts.steal = false;
  const LaunchHook hook = [](WorkerConfig& cfg) {
    if (cfg.shard == 0 && cfg.generation == 0) {
      cfg.chaos.seed = 99;
      cfg.chaos.partition_after = 8;
      cfg.chaos.partition_ms = 60.0;  // heals well inside liveness
    }
  };
  const auto dist = run_distributed(spec, opts, {}, hook);
  EXPECT_EQ(driver::sweep_json(dist), driver::sweep_json(serial));
  EXPECT_EQ(dist.campaign.worker_fenced, 0u)
      << "same-epoch reconnect inside the liveness window is welcome";
  EXPECT_GE(dist.campaign.worker_reconnects, 1u);
  EXPECT_EQ(dist.campaign.worker_restarts, 0u);
}

TEST(Distributed, WorkerEntryPointCompletesAShardInProcess) {
  const auto spec = make_spec(uniform(5, 0.0));
  const std::string journal = fresh_base("worker.jsonl");
  WorkerConfig cfg;
  cfg.range = {1, 4};
  cfg.journal_path = journal;
  cfg.heartbeat_fd = -1;  // no pipe: single-process smoke of the entry
  EXPECT_EQ(run_worker(spec, cfg), kWorkerExitOk);
  const auto lines = read_journal_lines(journal);
  EXPECT_EQ(lines.size(), 3u);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace psync::dist
