// Fixture: linted under a pretend src/psync/upper/ path against
// mini_layers.txt — upper -> lower is the declared downward edge.
#include "psync/lower/base.hpp"
#include "psync/upper/other.hpp"

int use_lower();
