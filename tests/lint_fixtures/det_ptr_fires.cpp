// Fixture: formatting an address into output must fire det-pointer-format
// (printf %-conversion, static_cast<void*> stream, C-style (void*) stream).
#include <cstdio>
#include <iostream>

void leak_addresses(const int* p) {
  std::printf("at %p\n", static_cast<const void*>(p));
  std::cout << static_cast<const void*>(p) << "\n";
  std::cout << (void*)p << "\n";  // NOLINT: fixture exercises the C cast
}
