// Fixture: a using-directive at header scope must fire
// hyg-using-namespace (the guard is present, so only that rule fires).
#pragma once

#include <string>

using namespace std;

string leaky();
