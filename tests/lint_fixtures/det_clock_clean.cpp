// Fixture: simulation time is not wall time — members and other-namespace
// functions named time() must NOT fire det-wall-clock.
struct Event {
  long time_ps = 0;
  [[nodiscard]] long time() const { return time_ps; }
};

namespace sim {
long time() { return 42; }
}  // namespace sim

long sim_now(const Event& e) { return e.time() + sim::time(); }
