// Fixture: std::map in an order-sensitive module is the fix, not a
// finding.
#include <cstdint>
#include <map>
#include <string>

std::map<std::uint64_t, std::string> index_by_digest();
