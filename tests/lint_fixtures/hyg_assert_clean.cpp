// Fixture: side-effect-free asserts (comparisons only) on a durability
// path are fine.
#include <cassert>

void verify(int written, int expected) {
  assert(written == expected);
  assert(written <= expected && written >= 0);
}
