// Fixture: the same unordered container under an audited suppression must
// not count as a finding — but must be reported as a used suppression.
#include <cstdint>
#include <string>
#include <unordered_map>

// psync-lint: allow(det-unordered): fixture audit — lookup-only, order never serialized
std::unordered_map<std::uint64_t, std::string> index_by_digest();
