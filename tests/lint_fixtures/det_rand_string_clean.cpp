// Fixture: "rand()" in string literals, raw strings, char sequences and
// comments must NOT fire det-rand — the tokenizer, not a grep, decides.
// A comment mentioning rand() or std::random_device is documentation.
#include <string>

std::string describe() {
  const std::string a = "call rand() never";         // rand() in a string
  const std::string b = R"(raw rand() srand(42))";   // rand() in a raw string
  const std::string c = "time(nullptr) no clock";    /* also just text */
  return a + b + c;
}
