// Fixture: a suppression that silences nothing must itself become a
// lint-unused-suppression finding.
// psync-lint: allow(det-rand): stale allowance left behind by a refactor
int quiet() { return 7; }
