// Fixture: wall-clock reads in a non-allowlisted module must fire
// det-wall-clock (chrono clock mention and a bare time() call).
#include <chrono>
#include <ctime>

long wall_now() {
  const auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count() + time(nullptr);
}
