// Fixture: an unordered container in an order-sensitive module (the test
// lints this under a pretend dist/merge path) must fire det-unordered.
#include <cstdint>
#include <string>
#include <unordered_map>

std::unordered_map<std::uint64_t, std::string> index_by_digest();
