// Fixture: a header without #pragma once must fire hyg-pragma-once.
int missing_guard();
