// Fixture: an untokenizable file (unterminated raw string) must be a
// parse failure, never a silent skip.
const char* oops = R"(this raw string never closes;
