// Fixture: downward edges that the frozen DAG allows (dist -> common,
// dist -> driver, dist -> dist) must pass.
#include "psync/common/journal.hpp"
#include "psync/dist/merge.hpp"
#include "psync/driver/session.hpp"

int use_allowed();
