// Fixture: a relative quoted include inside src/psync bypasses the layer
// check and must fire layer-relative-include.
#include "merge.hpp"

int use_relative();
