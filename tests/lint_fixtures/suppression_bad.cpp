// Fixture: suppressions without a reason or naming unknown rules must
// fire lint-bad-suppression — the audit trail is mandatory.
#include <cstdlib>

// psync-lint: allow(det-rand)
int a() { return rand(); }

// psync-lint: allow(not-a-rule): misspelled rule id
int b() { return 1; }
