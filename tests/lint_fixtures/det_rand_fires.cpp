// Fixture: ambient randomness in result-determining code must fire
// det-rand (three shapes: bare call, std::-qualified, random_device).
#include <cstdlib>
#include <random>

int noisy_seed() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand() + std::rand();
}
