// Fixture: printing ids and shifting integers must NOT fire
// det-pointer-format.
#include <cstdio>
#include <iostream>

void print_id(int id, int shift) {
  std::printf("point %d\n", id);
  std::cout << (id << shift) << "\n";
}
