// Fixture: linted under a pretend src/psync/dist/ path against the REAL
// tools/lint_layers.txt — dist must not include serve, so this is the
// acceptance-criteria upward edge that has to be rejected.
#include "psync/serve/server.hpp"

int use_serve();
