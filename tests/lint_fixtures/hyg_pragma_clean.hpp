// Fixture: #pragma once present — hygiene rules must stay quiet.
#pragma once

int guarded();
