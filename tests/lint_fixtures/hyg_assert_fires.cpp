// Fixture: linted under a pretend src/psync/dist/ path — an assert whose
// argument mutates state vanishes under NDEBUG and must fire
// hyg-assert-side-effect.
#include <cassert>

void commit(int* written, int expected) {
  assert(++*written == expected);
}
