// Fixture: linted under a pretend src/psync/lower/ path against
// mini_layers.txt — lower -> upper is an upward edge and must be
// rejected; psync/ghost/ is an undeclared module.
#include "psync/ghost/haunt.hpp"
#include "psync/upper/api.hpp"

int use_upper();
