#include "psync/mesh/energy_orion.hpp"

#include <gtest/gtest.h>

#include "psync/mesh/traffic.hpp"

namespace psync::mesh {
namespace {

TEST(Orion, HopLengthShrinksWithMeshDim) {
  OrionParams p;  // 20 mm die
  EXPECT_DOUBLE_EQ(hop_length_mm(p, 4), 5.0);
  EXPECT_DOUBLE_EQ(hop_length_mm(p, 20), 1.0);
}

TEST(Orion, RepeatersInverselyRelatedToNodeCount) {
  // Paper Section III-C: "the link-repeater stages are inversely related to
  // the number of network nodes" at fixed die size.
  OrionParams p;
  EXPECT_GT(repeaters_per_link(p, 2), repeaters_per_link(p, 16));
  EXPECT_EQ(repeaters_per_link(p, 20), 1u);
  EXPECT_EQ(repeaters_per_link(p, 2), 10u);
}

TEST(Orion, PerHopEnergyDropsWithShorterLinks) {
  OrionParams p;
  EXPECT_GT(per_hop_flit_pj(p, 2), per_hop_flit_pj(p, 8));
}

TEST(Orion, EstimateScalesLinearlyWithHops) {
  OrionParams p;
  const double one = estimate_pj_per_bit(p, 8, 1.0);
  const double four = estimate_pj_per_bit(p, 8, 4.0);
  EXPECT_NEAR(four, 4.0 * one, 1e-12);
}

TEST(Orion, HeaderOverheadInflatesEnergy) {
  OrionParams p;
  EXPECT_GT(estimate_pj_per_bit(p, 8, 4.0, 33.0 / 32.0),
            estimate_pj_per_bit(p, 8, 4.0, 1.0));
}

TEST(Orion, EvaluateFromSimulatedActivity) {
  MeshParams mp;
  mp.width = 4;
  mp.height = 4;
  Mesh m(mp);
  const auto traffic = gather_to_corners_traffic(m, 16, 4);
  std::uint64_t payload_bits = 0;
  for (const auto& d : traffic) {
    payload_bits += static_cast<std::uint64_t>(d.payload_flits) * 64;
    m.inject(d);
  }
  ASSERT_TRUE(m.run_until_drained(100000));

  OrionParams p;
  p.flit_bits = 64;
  const auto rep = evaluate(p, m.activity(), 4, payload_bits);
  EXPECT_GT(rep.total_pj.value(), 0.0);
  EXPECT_GT(rep.pj_per_bit, 0.0);
  EXPECT_NEAR(rep.total_pj.value(), (rep.router_pj + rep.link_pj).value(),
              1e-9);
  // Links dominate at this die size with repeated global wires.
  EXPECT_GT(rep.link_pj.value(), 0.0);
}

TEST(Orion, EnergyPerBitGrowsWithMeshSizeForGatherTraffic) {
  // Bigger meshes mean more hops to the corner; per-hop link shortening
  // does not offset the hop growth for router energy.
  OrionParams p;
  double prev = 0.0;
  for (std::size_t dim : {2, 4, 8, 16}) {
    const double hops = static_cast<double>(dim) / 2.0;
    const double e = estimate_pj_per_bit(p, dim, hops, 33.0 / 32.0);
    if (prev > 0.0) {
      EXPECT_GT(e, prev * 0.8);  // roughly non-decreasing
    }
    prev = e;
  }
}

}  // namespace
}  // namespace psync::mesh
