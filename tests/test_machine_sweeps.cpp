// Parameterized correctness sweeps across machine configurations: every
// (processors, matrix, delivery-blocks) combination must produce a
// numerically correct transform with clean SCA accounting; every segmented
// topology must preserve the gap-free invariant.
#include <gtest/gtest.h>

#include <tuple>

#include "psync/common/rng.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/core/psync_machine.hpp"
#include "psync/core/segmented.hpp"

namespace psync::core {
namespace {

std::vector<std::complex<double>> random_matrix(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> m(n);
  for (auto& v : m) {
    v = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return m;
}

// ---- P-sync machine grid ----

using PsyncCfg = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t>;

class PsyncSweep : public ::testing::TestWithParam<PsyncCfg> {};

TEST_P(PsyncSweep, Fft2dCorrectAndClean) {
  const auto [procs, rows, cols, k] = GetParam();
  PsyncMachineParams p;
  p.processors = procs;
  p.matrix_rows = rows;
  p.matrix_cols = cols;
  p.delivery_blocks = k;
  p.head.dram.row_switch_cycles = 0;
  PsyncMachine m(p);
  const auto rep =
      m.run_fft2d(random_matrix(rows * cols, procs * 31 + rows + k));
  EXPECT_TRUE(rep.sca_gap_free);
  EXPECT_EQ(rep.sca_collisions, 0u);
  EXPECT_LT(rep.max_error_vs_reference, 1e-4);
  EXPECT_GT(rep.compute_efficiency, 0.0);
  EXPECT_LE(rep.compute_efficiency, 1.0);
  EXPECT_GT(rep.comm_energy_pj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PsyncSweep,
    ::testing::Values(PsyncCfg{2, 8, 8, 1}, PsyncCfg{2, 8, 8, 2},
                      PsyncCfg{4, 16, 32, 1}, PsyncCfg{4, 16, 32, 8},
                      PsyncCfg{8, 32, 16, 2}, PsyncCfg{8, 64, 64, 16},
                      PsyncCfg{16, 32, 128, 4}, PsyncCfg{16, 16, 16, 16},
                      PsyncCfg{32, 64, 32, 8}, PsyncCfg{64, 64, 64, 1}));

TEST_P(PsyncSweep, Fft1dCorrectAndClean) {
  const auto [procs, rows, cols, k] = GetParam();
  PsyncMachineParams p;
  p.processors = procs;
  p.matrix_rows = rows;
  p.matrix_cols = cols;
  p.delivery_blocks = k;
  p.head.dram.row_switch_cycles = 0;
  PsyncMachine m(p);
  const auto rep =
      m.run_fft1d(random_matrix(rows * cols, procs * 57 + cols + k));
  EXPECT_TRUE(rep.sca_gap_free);
  EXPECT_EQ(rep.sca_collisions, 0u);
  EXPECT_LT(rep.max_error_vs_reference, 1e-3);
}

// ---- Mesh machine grid ----

using MeshCfg = std::tuple<std::size_t, std::size_t, std::size_t,
                           std::uint32_t, std::uint32_t>;

class MeshSweep : public ::testing::TestWithParam<MeshCfg> {};

TEST_P(MeshSweep, Fft2dCorrect) {
  const auto [grid, rows, cols, epp, vcs] = GetParam();
  MeshMachineParams p;
  p.grid = grid;
  p.matrix_rows = rows;
  p.matrix_cols = cols;
  p.elements_per_packet = epp;
  p.net.virtual_channels = vcs;
  p.mi.dram.row_switch_cycles = 0;
  MeshMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(rows * cols, grid * 91 + rows));
  EXPECT_LT(rep.max_error_vs_reference, 1e-4);
  EXPECT_GT(rep.comm_energy_pj, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MeshSweep,
    ::testing::Values(MeshCfg{2, 8, 8, 4, 1}, MeshCfg{2, 16, 16, 8, 2},
                      MeshCfg{2, 32, 8, 2, 1}, MeshCfg{4, 16, 32, 8, 1},
                      MeshCfg{4, 32, 32, 16, 4}, MeshCfg{4, 64, 16, 4, 2}));

// ---- Segmented bus fuzz ----

class SegmentedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SegmentedFuzz, RandomChainsStayGapFree) {
  Rng rng(GetParam());
  const std::size_t nodes = 3 + rng.next_below(12);
  const std::size_t spans = 1 + rng.next_below(5);
  const double span_cm = 2.0 + rng.next_double() * 20.0;
  auto topo = segmented_bus_topology(nodes, spans, span_cm);
  topo.repeater_latency_ps = static_cast<TimePs>(rng.next_below(2000));

  SegmentedScaEngine engine(topo);
  const Slot elems = static_cast<Slot>(2 + rng.next_below(30));
  const auto sched = compile_gather_interleaved(nodes, elems);
  std::vector<std::vector<Word>> data(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    for (Slot j = 0; j < elems; ++j) {
      data[i].push_back((static_cast<Word>(i) << 32) | static_cast<Word>(j));
    }
  }
  const auto g = engine.gather(sched, data);
  ASSERT_TRUE(g.gap_free);
  ASSERT_TRUE(g.collisions.empty());
  EXPECT_DOUBLE_EQ(g.utilization, 1.0);
  // Word order is the interleave, regardless of spans/latency.
  const auto words = g.words();
  for (std::size_t s = 0; s < words.size(); ++s) {
    EXPECT_EQ(words[s] >> 32, s % nodes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentedFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace psync::core
