// Journal-reader fuzz suite: the checkpoint journal codec and the shard
// merge face files written by processes that died at arbitrary
// instructions. Whatever the bytes, the readers must parse cleanly or
// raise a *typed* error — never crash, never silently drop a point.
//
// All randomness is a fixed-seed mt19937_64: failures reproduce exactly.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/common/journal.hpp"
#include "psync/dist/merge.hpp"
#include "psync/driver/runner.hpp"

namespace psync::driver {
namespace {

std::string fuzz_path(const std::string& name) {
  return testing::TempDir() + "psync_fuzz_" + std::to_string(::getpid()) +
         "_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// A varied, valid journal record: knobs/metrics/failures/report
/// fragments all exercised, values drawn from the generator.
RunRecord random_record(std::mt19937_64& rng, std::size_t index) {
  RunRecord rec;
  rec.index = index;
  rec.workload = "fuzz_wl";
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  std::uniform_int_distribution<int> coin(0, 1);
  rec.knobs = {{"alpha", value(rng)}, {"beta", value(rng)}};
  if (coin(rng) != 0) {
    rec.metrics = {{"m0", value(rng), 2}, {"m1", value(rng), -1}};
  } else {
    rec.status = PointStatus::kFailed;
    rec.failure = PointFailure{FailureKind::kSimDiverged,
                               "msg \"with\" \\escapes\n and \t control", 2};
  }
  if (coin(rng) != 0) {
    rec.psync_json = "{\"total_ns\":" + std::to_string(value(rng)) +
                     ",\"phases\":[{\"name\":\"p0\"}]}";
  }
  return rec;
}

TEST(JournalFuzz, RandomTruncationNeverParsesAndNeverCrashes) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int iter = 0; iter < 200; ++iter) {
    const RunRecord rec = random_record(rng, static_cast<std::size_t>(iter));
    const std::string line = journal_line(rec, rng());
    JournalEntry entry;
    ASSERT_TRUE(parse_journal_line(line, &entry));
    std::uniform_int_distribution<std::size_t> cut(0, line.size() - 1);
    const std::string truncated = line.substr(0, cut(rng));
    EXPECT_FALSE(parse_journal_line(truncated, &entry))
        << "truncated journal line parsed as complete: " << truncated;
  }
}

TEST(JournalFuzz, RandomByteMutationsParseCleanlyOrFail) {
  std::mt19937_64 rng(0xBADF00D);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iter = 0; iter < 300; ++iter) {
    const RunRecord rec = random_record(rng, static_cast<std::size_t>(iter));
    std::string line = journal_line(rec, rng());
    std::uniform_int_distribution<std::size_t> pos(0, line.size() - 1);
    const std::size_t mutations = 1 + (rng() % 4);
    for (std::size_t m = 0; m < mutations; ++m) {
      line[pos(rng)] = static_cast<char>(byte(rng));
    }
    // A mutation may happen to keep the line valid (e.g. a digit swap in a
    // metric); the contract is only: a clean bool verdict, no crash, no
    // exception escaping as anything but a typed SimulationError.
    JournalEntry entry;
    try {
      (void)parse_journal_line(line, &entry);
    } catch (const SimulationError&) {
      ADD_FAILURE() << "parse_journal_line leaked an exception for: " << line;
    }
  }
}

TEST(JournalFuzz, RandomBinaryFilesReadAsLinesWithoutCrashing) {
  std::mt19937_64 rng(0x5EED);
  std::uniform_int_distribution<int> byte(0, 255);
  const std::string path = fuzz_path("binary.jsonl");
  for (int iter = 0; iter < 20; ++iter) {
    std::string blob;
    const std::size_t len = rng() % 4096;
    blob.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      blob.push_back(static_cast<char>(byte(rng)));
    }
    write_file(path, blob);
    JournalEntry entry;
    for (const auto& line : read_journal_lines(path)) {
      (void)parse_journal_line(line, &entry);  // must not crash
    }
  }
  std::remove(path.c_str());
}

TEST(JournalFuzz, MidFileGarbageIsATypedMergeError) {
  std::mt19937_64 rng(0xD15EA5E);
  auto points = std::vector<RunPoint>(4);
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].index = i;
    points[i].seed = rng();
  }
  const std::string path = fuzz_path("garbage.jsonl");
  RunRecord rec = random_record(rng, 1);
  write_file(path, journal_line(rec, points[1].seed) +
                       "\n%% mid-line garbage %%\n" +
                       journal_line(random_record(rng, 2), points[2].seed) +
                       "\n");
  EXPECT_THROW(psync::dist::merge_journals(points, "fuzz_wl", {path}),
               JournalCorruptError);
  std::remove(path.c_str());
}

TEST(JournalFuzz, DuplicatedPointLinesNeverSilentlyDrop) {
  // Duplicates with agreeing status merge (counted); a flipped status is a
  // typed conflict. Either way the reader never quietly picks one.
  std::mt19937_64 rng(0xFACADE);
  auto points = std::vector<RunPoint>(3);
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].index = i;
    points[i].seed = rng();
  }
  RunRecord rec;
  rec.index = 1;
  rec.workload = "fuzz_wl";
  rec.metrics = {{"m", 1.25, 2}};
  const std::string line = journal_line(rec, points[1].seed);
  const std::string path = fuzz_path("dup.jsonl");
  write_file(path, line + "\n" + line + "\n" + line + "\n");
  const auto merged = psync::dist::merge_journals(points, "fuzz_wl", {path});
  EXPECT_EQ(merged.duplicates, 2u);
  EXPECT_EQ(merged.missing, (std::vector<std::size_t>{0, 2}));

  RunRecord flipped = rec;
  flipped.status = PointStatus::kFailed;
  flipped.metrics.clear();
  flipped.failure = PointFailure{FailureKind::kInternalError, "x", 1};
  write_file(path,
             line + "\n" + journal_line(flipped, points[1].seed) + "\n");
  EXPECT_THROW(psync::dist::merge_journals(points, "fuzz_wl", {path}),
               JournalConflictError);
  std::remove(path.c_str());
}

TEST(JournalFuzz, RandomShardInterleavingsMergeIdentically) {
  // Scatter one grid's records across a random number of files in random
  // order; the merge must always reassemble the same grid-order records.
  std::mt19937_64 rng(0xAB1E);
  constexpr std::size_t kPoints = 24;
  auto points = std::vector<RunPoint>(kPoints);
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < kPoints; ++i) {
    points[i].index = i;
    points[i].seed = rng();
    lines.push_back(journal_line(random_record(rng, i), points[i].seed));
  }
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t files = 1 + rng() % 5;
    std::vector<std::string> contents(files);
    std::vector<std::size_t> order(kPoints);
    for (std::size_t i = 0; i < kPoints; ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), rng);
    for (const std::size_t i : order) {
      contents[rng() % files] += lines[i] + "\n";
    }
    std::vector<std::string> paths;
    for (std::size_t f = 0; f < files; ++f) {
      paths.push_back(fuzz_path("ileave" + std::to_string(f) + ".jsonl"));
      write_file(paths[f], contents[f]);
    }
    const auto merged = psync::dist::merge_journals(points, "fuzz_wl", paths);
    EXPECT_TRUE(merged.missing.empty());
    EXPECT_EQ(merged.duplicates, 0u);
    for (std::size_t i = 0; i < kPoints; ++i) {
      EXPECT_EQ(merged.records[i].index, i);
      // Re-rendering the merged record must reproduce the original bytes —
      // the identity the distributed merge's determinism stands on.
      EXPECT_EQ(journal_line(merged.records[i], points[i].seed), lines[i]);
    }
    for (const auto& p : paths) std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace psync::driver
