#include "psync/core/arbiter.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/core/sca.hpp"

namespace psync::core {
namespace {

TEST(Arbiter, GrantsAreContiguousAndOrdered) {
  SlotArbiter arb;
  const auto a = arb.reserve(100, "sca");
  const auto b = arb.reserve(20, "control");
  const auto c = arb.reserve(50, "background");
  EXPECT_EQ(a.base, 0);
  EXPECT_EQ(b.base, 100);
  EXPECT_EQ(c.base, 120);
  EXPECT_EQ(arb.horizon(), 170);
  EXPECT_EQ(arb.grants().size(), 3u);
}

TEST(Arbiter, ShiftProgramPreservesShape) {
  CommProgram cp;
  cp.add(CpStride{2, 3, 10, 4, CpAction::kDrive});
  const CommProgram moved = shift_program(cp, 1000);
  EXPECT_EQ(moved.strides()[0].first, 1002);
  EXPECT_EQ(moved.strides()[0].stride, 10);
  EXPECT_EQ(moved.slot_count(CpAction::kDrive), cp.slot_count(CpAction::kDrive));
}

TEST(Arbiter, ComposeRejectsOversizedSchedule) {
  SlotArbiter arb;
  const auto g = arb.reserve(10, "tiny");
  const auto sched = compile_gather_blocks(4, 8);  // 32 slots
  EXPECT_THROW((void)arb.compose(sched, g), SimulationError);
}

TEST(Arbiter, MergedTransactionsShareTheBusWithoutCollisions) {
  // An SCA gather plus a background transaction composed onto one bus.
  const std::size_t nodes = 4;
  SlotArbiter arb;
  const auto sca_sched = compile_gather_interleaved(nodes, 4);   // 16 slots
  const auto bg_sched = compile_gather_blocks(nodes, 2);         // 8 slots
  const auto g1 = arb.reserve(sca_sched.total_slots, "sca");
  const auto g2 = arb.reserve(bg_sched.total_slots, "background");
  const auto merged =
      arb.merge({arb.compose(sca_sched, g1), arb.compose(bg_sched, g2)});
  EXPECT_EQ(merged.total_slots, 24);
  const auto check = check_schedule(merged, CpAction::kDrive);
  EXPECT_TRUE(check.disjoint);
  EXPECT_TRUE(check.gap_free);

  // And it actually runs: one waveguide, two logical transactions.
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  std::vector<std::vector<Word>> data(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    const Slot n = merged.node_cps[i].slot_count(CpAction::kDrive);
    for (Slot j = 0; j < n; ++j) {
      data[i].push_back(static_cast<Word>(i * 100 + static_cast<Word>(j)));
    }
  }
  const auto g = engine.gather(merged, data);
  EXPECT_TRUE(g.gap_free);
  EXPECT_EQ(g.stream.size(), 24u);
  // Slots [0,16) carry the interleaved SCA; [16,24) the background blocks.
  for (std::size_t s = 0; s < 16; ++s) {
    EXPECT_EQ(g.stream[s].source, static_cast<std::int32_t>(s % nodes));
  }
  for (std::size_t s = 16; s < 24; ++s) {
    EXPECT_EQ(g.stream[s].source,
              static_cast<std::int32_t>((s - 16) / 2));
  }
}

TEST(Arbiter, MergeDetectsCrossTransactionCollision) {
  SlotArbiter arb;
  const auto sched = compile_gather_blocks(2, 4);
  const auto g1 = arb.reserve(8, "a");
  (void)g1;
  // Compose the same schedule twice into the SAME grant region by abusing
  // shift_schedule directly: merge must catch the overlap.
  const auto s1 = arb.compose(sched, arb.grants()[0]);
  EXPECT_THROW((void)arb.merge({s1, s1}), SimulationError);
}

TEST(Arbiter, RejectsBadInputs) {
  SlotArbiter arb;
  EXPECT_THROW((void)arb.reserve(0, "zero"), SimulationError);
  EXPECT_THROW((void)arb.merge({}), SimulationError);
}

TEST(Arbiter, UtilizationAccountingViaScheduleCheck) {
  // A half-empty grant shows up as <100% bus utilization.
  SlotArbiter arb;
  const auto sched = compile_gather_blocks(2, 2);  // 4 slots
  const auto g = arb.reserve(8, "padded");
  const auto composed = arb.compose(sched, g);
  const auto check = check_schedule(composed, CpAction::kDrive);
  EXPECT_TRUE(check.disjoint);
  EXPECT_FALSE(check.gap_free);
  EXPECT_DOUBLE_EQ(check.utilization, 0.5);
}

}  // namespace
}  // namespace psync::core
