// Meta-property: the schedule linter and the SCA engine must agree. For
// randomly generated schedules — valid partitions and deliberately
// corrupted ones — lint_transaction reports ok exactly when the engine
// accepts the transaction in strict mode.
#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/analysis/mesh_model.hpp"
#include "psync/core/lint.hpp"
#include "psync/core/permutation.hpp"

namespace psync::core {
namespace {

struct Generated {
  CpSchedule schedule;
  std::vector<std::vector<Word>> data;
};

Generated random_partition(Rng& rng, std::size_t nodes, Slot total) {
  std::vector<std::size_t> owner(static_cast<std::size_t>(total));
  for (std::size_t s = 0; s < owner.size(); ++s) {
    owner[s] = s < nodes ? s : rng.next_below(nodes);
  }
  rng.shuffle(owner);
  std::vector<std::vector<Slot>> slots_of(nodes);
  for (std::size_t s = 0; s < owner.size(); ++s) {
    slots_of[owner[s]].push_back(static_cast<Slot>(s));
  }
  CollectiveSpec spec;
  spec.nodes = nodes;
  spec.total_slots = total;
  spec.elements_of = [slots_of](std::size_t i) {
    return static_cast<Slot>(slots_of[i].size());
  };
  spec.slot_of = [slots_of](std::size_t i, Slot j) {
    return slots_of[i][static_cast<std::size_t>(j)];
  };
  Generated out;
  out.schedule = compile_collective(spec, CpAction::kDrive);
  out.data.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    out.data[i].assign(slots_of[i].size(), 0xAB);
  }
  return out;
}

bool engine_accepts(const PscanTopology& topo, const Generated& g) {
  try {
    ScaEngine engine(topo);
    (void)engine.gather(g.schedule, g.data, /*strict=*/true);
    return true;
  } catch (const SimulationError&) {
    return false;
  }
}

class LintConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LintConsistency, ValidPartitionsPassBoth) {
  Rng rng(GetParam());
  const std::size_t nodes = 2 + rng.next_below(6);
  const Slot total = static_cast<Slot>(16 + rng.next_below(100));
  const auto g = random_partition(rng, nodes, total);
  const auto topo = straight_bus_topology(nodes, 8.0);

  std::vector<std::size_t> sizes;
  for (const auto& d : g.data) sizes.push_back(d.size());
  const auto rep = lint_transaction(topo, g.schedule, CpAction::kDrive, sizes);
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_TRUE(engine_accepts(topo, g));
}

TEST_P(LintConsistency, CorruptedSchedulesFailBoth) {
  Rng rng(GetParam() ^ 0x5EED);
  const std::size_t nodes = 2 + rng.next_below(6);
  const Slot total = static_cast<Slot>(16 + rng.next_below(100));
  auto g = random_partition(rng, nodes, total);
  const auto topo = straight_bus_topology(nodes, 8.0);

  // Corrupt: give node 0 an extra claim on a random slot it does not own.
  Slot victim = 0;
  for (int tries = 0; tries < 64; ++tries) {
    victim = static_cast<Slot>(rng.next_below(static_cast<std::uint64_t>(total)));
    if (element_of_slot(g.schedule.node_cps[0], CpAction::kDrive, victim) < 0) {
      break;
    }
  }
  if (element_of_slot(g.schedule.node_cps[0], CpAction::kDrive, victim) >= 0) {
    GTEST_SKIP() << "node 0 owns everything in this draw";
  }
  g.schedule.node_cps[0].add(CpStride{victim, 1, 1, 1, CpAction::kDrive});
  g.data[0].push_back(0xAB);

  std::vector<std::size_t> sizes;
  for (const auto& d : g.data) sizes.push_back(d.size());
  const auto rep = lint_transaction(topo, g.schedule, CpAction::kDrive, sizes);
  EXPECT_FALSE(rep.ok);
  EXPECT_FALSE(engine_accepts(topo, g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LintConsistency,
                         ::testing::Values(7, 14, 21, 28, 35, 42, 49, 56));

// The pipelined-source delivery model (our Eq. 21 refinement) tracks the
// cycle-level mesh at the configuration the fig11 bench uses.
TEST(MeshModelPipelined, RefinementBetweenIdealAndEq21) {
  for (double f : {4.0, 16.0, 64.0, 256.0}) {
    const double eq21 = analysis::mesh_delivery_cycles(16, f, 1.0);
    const double pipe = analysis::mesh_delivery_cycles_pipelined(16, f, 1.0);
    const double ideal = 16.0 * f;
    EXPECT_GE(pipe, ideal);
    EXPECT_LE(pipe, eq21);
    EXPECT_GT(analysis::mesh_delivery_efficiency_pipelined(16, f, 1.0),
              analysis::mesh_delivery_efficiency(16, f, 1.0) - 1e-12);
  }
  // At small packets the refinement is dramatically tighter: F=4, P=16:
  // Eq. 21 charges 16*4 + 16*4 = 128; pipelined charges 16*5 + 4 = 84.
  EXPECT_DOUBLE_EQ(analysis::mesh_delivery_cycles(16, 4, 1.0), 128.0);
  EXPECT_DOUBLE_EQ(analysis::mesh_delivery_cycles_pipelined(16, 4, 1.0), 84.0);
}

}  // namespace
}  // namespace psync::core
