#include "psync/photonic/power.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync::photonic {
namespace {

TEST(Power, DbmMwRoundTrip) {
  EXPECT_DOUBLE_EQ(mw_to_dbm(1.0), 0.0);
  EXPECT_NEAR(mw_to_dbm(2.0), 3.0103, 1e-4);
  EXPECT_NEAR(dbm_to_mw(10.0), 10.0, 1e-12);
  for (double mw : {0.01, 0.5, 1.0, 3.7, 100.0}) {
    EXPECT_NEAR(dbm_to_mw(mw_to_dbm(mw)), mw, 1e-12);
  }
}

TEST(Power, RatioDb) {
  EXPECT_DOUBLE_EQ(ratio_to_db(10.0), 10.0);
  EXPECT_NEAR(ratio_to_db(2.0), 3.0103, 1e-4);
  EXPECT_NEAR(db_to_ratio(-3.0103), 0.5, 1e-4);
}

TEST(Power, NonPositiveInputsThrow) {
  EXPECT_THROW(mw_to_dbm(0.0), SimulationError);
  EXPECT_THROW(mw_to_dbm(-1.0), SimulationError);
  EXPECT_THROW(ratio_to_db(0.0), SimulationError);
}

TEST(PowerDbm, AttenuationChainsLinearlyInDb) {
  PowerDbm p(3.0);
  const PowerDbm q = p.attenuated(DecibelsDb{1.5}).attenuated(DecibelsDb{2.5});
  EXPECT_DOUBLE_EQ(q.dbm(), -1.0);
  EXPECT_DOUBLE_EQ(q.amplified(DecibelsDb{4.0}).dbm(), 3.0);
}

TEST(PowerDbm, HalfPowerIs3Db) {
  PowerDbm p(0.0);  // 1 mW
  EXPECT_NEAR(p.attenuated(DecibelsDb{3.0103}).mw(), 0.5, 1e-4);
}

TEST(PowerDbm, Detectability) {
  PowerDbm p(-19.9);
  EXPECT_TRUE(p.detectable_by(DbmPower{-20.0}));
  EXPECT_FALSE(p.attenuated(DecibelsDb{0.2}).detectable_by(DbmPower{-20.0}));
  // Boundary counts as detectable (Eq. 1 uses >=).
  EXPECT_TRUE(PowerDbm(-20.0).detectable_by(DbmPower{-20.0}));
}

}  // namespace
}  // namespace psync::photonic
