#include "psync/dram/controller.hpp"
#include "psync/dram/dram.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "psync/common/check.hpp"

namespace psync::dram {
namespace {

DramParams paper() {
  DramParams p;  // defaults are the paper's: 2048-bit rows, 64-bit bus/header
  return p;
}

TEST(Dram, RowTransactionCyclesIsEq24) {
  // t_t = (S_r + S_h) / S_b = (2048 + 64) / 64 = 33.
  EXPECT_EQ(row_transaction_cycles(paper()), 33u);
}

TEST(Dram, RowTransactionsIsEq23) {
  // P_t = N*S_s*P / S_r = 1024*64*1024 / 2048 = 32768.
  const std::uint64_t total_bits = 1024ULL * 64 * 1024;
  EXPECT_EQ(row_transactions(paper(), total_bits), 32768u);
}

TEST(Dram, OpenRowPolicyCountsHitsAndMisses) {
  auto p = paper();
  p.row_switch_cycles = 24;
  Dram d(p);
  // Two accesses in the same row: one miss then one hit.
  d.access(0, 64);
  d.access(64, 64);
  EXPECT_EQ(d.row_misses(), 1u);
  EXPECT_EQ(d.row_hits(), 1u);
  // A different row (different bank may be open; force same bank by jumping
  // banks*row_size).
  d.access(p.row_size_bits * p.banks, 64);
  EXPECT_EQ(d.row_misses(), 2u);
}

TEST(Dram, AccessCyclesIncludeSwitchPenalty) {
  auto p = paper();
  p.row_switch_cycles = 24;
  Dram d(p);
  // First access: 24 (switch) + 1 (one bus beat).
  EXPECT_EQ(d.access(0, 64), 25u);
  // Row hit: 1 cycle.
  EXPECT_EQ(d.access(64, 64), 1u);
}

TEST(Dram, CrossRowAccessSplits) {
  auto p = paper();
  p.row_switch_cycles = 10;
  Dram d(p);
  // Access straddling a row boundary touches two rows.
  const std::uint64_t cycles = d.access(p.row_size_bits - 64, 128);
  EXPECT_EQ(d.row_misses(), 2u);
  EXPECT_EQ(cycles, 10u + 1u + 10u + 1u);
}

TEST(Dram, BankInterleavingKeepsRowsOpen) {
  auto p = paper();
  p.row_switch_cycles = 24;
  Dram d(p);
  // Rows 0..banks-1 map to distinct banks; revisiting them all hits.
  for (std::uint64_t r = 0; r < p.banks; ++r) {
    d.access(r * p.row_size_bits, 64);
  }
  for (std::uint64_t r = 0; r < p.banks; ++r) {
    d.access(r * p.row_size_bits + 64, 64);
  }
  EXPECT_EQ(d.row_misses(), p.banks);
  EXPECT_EQ(d.row_hits(), p.banks);
}

TEST(Dram, InvalidParamsRejected) {
  DramParams p;
  p.row_size_bits = 100;  // not a multiple of bus width
  EXPECT_THROW(Dram{p}, SimulationError);
  DramParams q;
  q.banks = 0;
  EXPECT_THROW(Dram{q}, SimulationError);
}

TEST(MemoryController, StreamRowsMatchesPaperTransposeCount) {
  // The PSCAN transpose writeback: 32768 rows x 33 cycles = 1,081,344.
  auto p = paper();
  p.row_switch_cycles = 0;  // the paper's optimal streaming assumption
  MemoryController mc(p);
  const auto rep = mc.stream_rows(0, 32768);
  EXPECT_EQ(rep.transactions, 32768u);
  EXPECT_EQ(rep.bus_cycles, 1'081'344u);
}

TEST(MemoryController, StreamRowsWithPrechargeCostsMore) {
  auto p = paper();
  p.row_switch_cycles = 24;
  MemoryController mc(p);
  const auto rep = mc.stream_rows(0, 1024);
  EXPECT_GT(rep.bus_cycles, 1024u * 33u);
  EXPECT_EQ(rep.row_misses, 1024u);
}

TEST(MemoryController, ScatteredWordWritesAreFarWorse) {
  // The "extremely inefficient" direct-forwarding case of Section V-C-2:
  // word-granular writes at transpose-strided addresses.
  auto p = paper();
  p.row_switch_cycles = 24;
  MemoryController mc(p);

  // Column-major visit of a 64x64 matrix stored row-major, 64-bit words.
  std::vector<std::uint64_t> addrs;
  for (std::uint64_t c = 0; c < 64; ++c) {
    for (std::uint64_t r = 0; r < 64; ++r) {
      addrs.push_back((r * 64 + c) * 64);
    }
  }
  const auto scattered = mc.scattered(addrs, 64);

  MemoryController mc2(p);
  const auto streamed = mc2.stream_rows(0, 64ULL * 64 * 64 / 2048);
  EXPECT_GT(scattered.bus_cycles, 5 * streamed.bus_cycles);
}

}  // namespace
}  // namespace psync::dram
