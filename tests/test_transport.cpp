// The socket transport's building blocks (src/psync/dist): the length-
// prefixed frame codec under short reads and garbage, the control-frame
// payload codecs, the seeded ChaosTransport fault injector, decorrelated-
// jitter backoff, the leader's epoch-fencing ledger, the streaming
// grid-order merger, and the journal-directory durability helpers
// (fsync_parent_dir / durable_rename). Everything here is deterministic:
// fixed seeds replay identical fault sequences.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/common/journal.hpp"
#include "psync/common/rng.hpp"
#include "psync/dist/backoff.hpp"
#include "psync/dist/chaos.hpp"
#include "psync/dist/frame.hpp"
#include "psync/dist/stream_merge.hpp"
#include "psync/dist/transport.hpp"

namespace psync::dist {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "psync_transport_" +
         std::to_string(::getpid()) + "_" + name;
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(FrameCodec, RoundTripsEveryKind) {
  for (const auto kind :
       {FrameKind::kHello, FrameKind::kHelloAck, FrameKind::kHeartbeat,
        FrameKind::kJournal, FrameKind::kJournalAck}) {
    Frame in;
    in.kind = kind;
    in.payload = "payload for kind " +
                 std::to_string(static_cast<unsigned>(kind));
    const std::string wire = encode_frame(in);
    ASSERT_EQ(wire.size(), kFrameHeaderBytes + in.payload.size());
    EXPECT_EQ(static_cast<unsigned char>(wire[0]), kFrameMagic);

    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame out;
    ASSERT_EQ(dec.next(&out), FrameDecoder::Result::kFrame);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.payload, in.payload);
    EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kNeedMore);
  }
}

TEST(FrameCodec, EmptyPayloadFrame) {
  Frame in;
  in.kind = FrameKind::kHeartbeat;
  const std::string wire = encode_frame(in);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(&out), FrameDecoder::Result::kFrame);
  EXPECT_TRUE(out.payload.empty());
}

// The satellite requirement, literally: every frame split at *each* byte
// boundary across two feeds must decode identically to one feed. This is
// the property that makes the decoder safe against arbitrary read(2)
// fragmentation — TCP guarantees bytes, not frames.
TEST(FrameCodec, EveryByteBoundarySplitDecodesIdentically) {
  Frame in;
  in.kind = FrameKind::kJournal;
  in.payload = journal_payload(42, R"({"index":42,"status":"ok"})");
  const std::string wire = encode_frame(in);
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    FrameDecoder dec;
    dec.feed(wire.data(), split);
    Frame out;
    if (split < wire.size()) {
      // The prefix alone must never yield a frame or corrupt the stream.
      ASSERT_EQ(dec.next(&out), FrameDecoder::Result::kNeedMore)
          << "split at byte " << split;
      dec.feed(wire.data() + split, wire.size() - split);
    }
    ASSERT_EQ(dec.next(&out), FrameDecoder::Result::kFrame)
        << "split at byte " << split;
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(FrameCodec, OneByteAtATimeAcrossSeveralFrames) {
  std::string wire;
  std::vector<Frame> frames;
  for (std::size_t i = 0; i < 5; ++i) {
    Frame f;
    f.kind = i % 2 == 0 ? FrameKind::kHeartbeat : FrameKind::kJournalAck;
    f.payload = std::string(i * 7, 'x') + std::to_string(i);
    wire += encode_frame(f);
    frames.push_back(std::move(f));
  }
  FrameDecoder dec;
  std::vector<Frame> decoded;
  for (const char c : wire) {
    dec.feed(&c, 1);
    Frame out;
    while (dec.next(&out) == FrameDecoder::Result::kFrame) {
      decoded.push_back(out);
    }
  }
  ASSERT_EQ(decoded.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(decoded[i].kind, frames[i].kind);
    EXPECT_EQ(decoded[i].payload, frames[i].payload);
  }
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(FrameCodec, OneFeedMayCompleteSeveralFrames) {
  Frame a{FrameKind::kHeartbeat, "hb 0 p 1 -"};
  Frame b{FrameKind::kJournalAck, "7"};
  const std::string wire = encode_frame(a) + encode_frame(b);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(&out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.payload, a.payload);
  ASSERT_EQ(dec.next(&out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.payload, b.payload);
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kNeedMore);
}

TEST(FrameCodec, BadMagicIsStickyCorrupt) {
  FrameDecoder dec;
  // A short junk prefix is indistinguishable from a slow header...
  const char junk[] = {'\x00', '\x01', '\x02', '\x03', '\x04', '\x05'};
  dec.feed(junk, 2);
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kNeedMore);
  // ...but the moment a full header is buffered, the bad magic convicts.
  dec.feed(junk + 2, sizeof junk - 2);
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kCorrupt);
  EXPECT_TRUE(dec.corrupt());
  // Sticky: even a pristine frame after the junk stays refused — framing
  // desync on a byte stream is unrecoverable without a reconnect.
  const std::string good = encode_frame({FrameKind::kHeartbeat, "x"});
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kCorrupt);
  // reset() is the reconnect: clean boundary, clean flag.
  dec.reset();
  EXPECT_FALSE(dec.corrupt());
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kFrame);
}

TEST(FrameCodec, UnknownKindAndOversizedLengthAreCorrupt) {
  {
    std::string wire = encode_frame({FrameKind::kHello, "p"});
    wire[1] = '\x63';  // kind 99
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame out;
    EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kCorrupt);
  }
  {
    std::string wire = encode_frame({FrameKind::kHello, "p"});
    wire[5] = '\x7f';  // length claims > kMaxFramePayload
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame out;
    EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kCorrupt);
  }
}

// Seeded garbage fuzz: whatever bytes arrive, the decoder must return
// kFrame/kNeedMore/kCorrupt — never crash, never loop, never hand back a
// frame with an invalid kind.
TEST(FrameCodec, GarbageFuzzNeverCrashesOrInventsFrames) {
  Rng rng(0xC0FFEE);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec;
    std::string bytes;
    const std::size_t n = 1 + rng.next_below(300);
    for (std::size_t i = 0; i < n; ++i) {
      // Bias toward the magic byte so length parsing actually engages.
      bytes.push_back(rng.next_below(4) == 0
                          ? static_cast<char>(kFrameMagic)
                          : static_cast<char>(rng.next_below(256)));
    }
    std::size_t at = 0;
    while (at < bytes.size()) {
      const std::size_t chunk =
          std::min(bytes.size() - at, 1 + rng.next_below(16));
      dec.feed(bytes.data() + at, chunk);
      at += chunk;
      Frame out;
      FrameDecoder::Result r;
      int safety = 0;
      while ((r = dec.next(&out)) == FrameDecoder::Result::kFrame) {
        EXPECT_TRUE(frame_kind_valid(static_cast<std::uint8_t>(out.kind)));
        ASSERT_LT(++safety, 1000) << "decoder loop did not terminate";
      }
      if (r == FrameDecoder::Result::kCorrupt) break;
    }
  }
}

// Chaos-driven fuzz: drop/duplicate/reorder/delay whole frames through
// ChaosTransport, then decode the concatenated survivors. Frame-level
// chaos must never produce byte-level corruption — every surviving frame
// decodes intact (that is what distinguishes a lossy network from a
// corrupting one; corruption is modeled separately above).
TEST(FrameCodec, ChaosMangledStreamsDecodeFrameIntact) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL, 0xDEADBEEFULL}) {
    ChaosOptions copts;
    copts.seed = seed;
    copts.drop = 0.2;
    copts.duplicate = 0.2;
    copts.reorder = 0.2;
    copts.delay = 0.2;
    copts.delay_ms = 5.0;
    ChaosTransport chaos(copts);
    std::string wire;
    double now = 0.0;
    for (std::size_t i = 0; i < 100; ++i) {
      Frame f;
      f.kind = FrameKind::kJournal;
      f.payload = journal_payload(i, "{\"i\":" + std::to_string(i) + "}");
      for (const auto& out : chaos.offer(f, now)) {
        wire += encode_frame(out);
      }
      now += 3.0;
    }
    for (const auto& out : chaos.due(now + 1000.0)) {
      wire += encode_frame(out);
    }
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame out;
    std::size_t frames = 0;
    while (dec.next(&out) == FrameDecoder::Result::kFrame) {
      std::size_t index = 0;
      std::string line;
      EXPECT_TRUE(parse_journal_payload(out.payload, &index, &line));
      ++frames;
    }
    EXPECT_FALSE(dec.corrupt()) << "seed " << seed;
    EXPECT_EQ(dec.pending_bytes(), 0u);
    EXPECT_EQ(frames, chaos.offered() - chaos.dropped() +
                          chaos.duplicated());
  }
}

// ---------------------------------------------------------------------------
// Control-frame payload codecs

TEST(PayloadCodec, HelloRoundTripAndRejects) {
  HelloClaim in;
  in.shard = 3;
  in.epoch = 0xFFFFFFFFFFFFULL;
  HelloClaim out;
  ASSERT_TRUE(parse_hello_payload(hello_payload(in), &out));
  EXPECT_EQ(out.shard, in.shard);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_FALSE(parse_hello_payload("", &out));
  EXPECT_FALSE(parse_hello_payload("shard 3", &out));
  EXPECT_FALSE(parse_hello_payload("shard x epoch 1", &out));
  EXPECT_FALSE(parse_hello_payload("hello 3 epoch 1", &out));
}

TEST(PayloadCodec, JournalCarriesIndexOutsideTheLine) {
  const std::string line = R"({"index":9,"metrics":[{"val":1.0}]})";
  std::size_t index = 0;
  std::string parsed;
  ASSERT_TRUE(parse_journal_payload(journal_payload(9, line), &index,
                                    &parsed));
  EXPECT_EQ(index, 9u);
  EXPECT_EQ(parsed, line);
  EXPECT_FALSE(parse_journal_payload("", &index, &parsed));
  EXPECT_FALSE(parse_journal_payload("notanumber {}", &index, &parsed));
}

TEST(PayloadCodec, JournalAckAndFencedAck) {
  std::size_t index = 0;
  ASSERT_TRUE(parse_journal_ack_payload(journal_ack_payload(123), &index));
  EXPECT_EQ(index, 123u);
  EXPECT_FALSE(parse_journal_ack_payload("x", &index));
  EXPECT_FALSE(hello_ack_fenced(kHelloAckOk));
  EXPECT_TRUE(hello_ack_fenced("fenced stale epoch 4"));
}

TEST(PayloadCodec, ParseHostPort) {
  std::string host;
  std::uint16_t port = 0;
  ASSERT_TRUE(parse_host_port("10.1.2.3:9000", &host, &port));
  EXPECT_EQ(host, "10.1.2.3");
  EXPECT_EQ(port, 9000);
  ASSERT_TRUE(parse_host_port("7777", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7777);
  EXPECT_FALSE(parse_host_port("", &host, &port));
  EXPECT_FALSE(parse_host_port("host:", &host, &port));
  EXPECT_FALSE(parse_host_port("host:notaport", &host, &port));
  EXPECT_FALSE(parse_host_port("host:99999", &host, &port));
}

// ---------------------------------------------------------------------------
// ChaosTransport

TEST(Chaos, SeedZeroIsAPassThrough) {
  ChaosTransport chaos(ChaosOptions{});
  EXPECT_FALSE(chaos.enabled());
  const Frame f{FrameKind::kHeartbeat, "hb"};
  for (int i = 0; i < 50; ++i) {
    const auto out = chaos.offer(f, i * 10.0);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].payload, f.payload);
  }
  EXPECT_EQ(chaos.dropped(), 0u);
  EXPECT_FALSE(chaos.take_partition(1e9));
}

TEST(Chaos, SameSeedReplaysTheIdenticalFaultSequence) {
  ChaosOptions opts;
  opts.seed = 42;
  opts.drop = 0.3;
  opts.duplicate = 0.2;
  opts.reorder = 0.15;
  opts.delay = 0.1;
  const auto run = [&opts] {
    ChaosTransport chaos(opts);
    std::vector<std::string> emitted;
    for (std::size_t i = 0; i < 300; ++i) {
      Frame f{FrameKind::kJournal, std::to_string(i)};
      for (const auto& out :
           chaos.offer(f, static_cast<double>(i) * 2.0)) {
        emitted.push_back(out.payload);
      }
    }
    for (const auto& out : chaos.due(1e9)) emitted.push_back(out.payload);
    return emitted;
  };
  EXPECT_EQ(run(), run());
}

TEST(Chaos, DropRateLandsNearTheConfiguredProbability) {
  ChaosOptions opts;
  opts.seed = 7;
  opts.drop = 0.25;
  ChaosTransport chaos(opts);
  for (std::size_t i = 0; i < 2000; ++i) {
    chaos.offer({FrameKind::kHeartbeat, "hb"}, static_cast<double>(i));
  }
  EXPECT_EQ(chaos.offered(), 2000u);
  // 4-sigma band around p=0.25, n=2000.
  EXPECT_GT(chaos.dropped(), 420u);
  EXPECT_LT(chaos.dropped(), 580u);
}

TEST(Chaos, DuplicateEmitsTheFrameTwice) {
  ChaosOptions opts;
  opts.seed = 11;
  opts.duplicate = 1.0;
  ChaosTransport chaos(opts);
  const auto out = chaos.offer({FrameKind::kJournal, "rec"}, 0.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, "rec");
  EXPECT_EQ(out[1].payload, "rec");
  EXPECT_EQ(chaos.duplicated(), 1u);
}

TEST(Chaos, ReorderHoldsAFrameBehindItsSuccessor) {
  ChaosOptions opts;
  opts.seed = 13;
  opts.reorder = 1.0;
  ChaosTransport chaos(opts);
  // Every frame wants to be held; the hold slot fits one, so the pattern
  // is: A held (nothing out), B arrives -> B out, then A swaps into the
  // next hold... Exact policy aside, the invariant is no frame is ever
  // lost and at most one is in flight as a hold.
  std::multiset<std::string> sent, received;
  double now = 0.0;
  for (int i = 0; i < 40; ++i) {
    const std::string p = std::to_string(i);
    sent.insert(p);
    for (const auto& out : chaos.offer({FrameKind::kJournal, p}, now)) {
      received.insert(out.payload);
    }
    now += 1.0;
  }
  for (const auto& out : chaos.due(now + 1e6)) received.insert(out.payload);
  EXPECT_GE(chaos.reordered(), 1u);
  // Allow exactly the single final hold to still be outstanding.
  EXPECT_GE(received.size() + 1, sent.size());
  for (const auto& p : received) {
    EXPECT_EQ(sent.count(p), 1u) << "chaos invented frame " << p;
  }
}

TEST(Chaos, DelayedFramesComeDueOnTheClock) {
  ChaosOptions opts;
  opts.seed = 17;
  opts.delay = 1.0;
  opts.delay_ms = 50.0;
  ChaosTransport chaos(opts);
  EXPECT_TRUE(chaos.offer({FrameKind::kHeartbeat, "hb"}, 0.0).empty());
  EXPECT_TRUE(chaos.due(10.0).empty());  // not yet
  const auto due = chaos.due(60.0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].payload, "hb");
  EXPECT_TRUE(chaos.due(1000.0).empty());  // released exactly once
  EXPECT_EQ(chaos.delayed(), 1u);
}

TEST(Chaos, PartitionFiresOnceThenHealsOnSchedule) {
  ChaosOptions opts;
  opts.seed = 19;
  opts.partition_after = 3;
  opts.partition_ms = 100.0;
  ChaosTransport chaos(opts);
  double now = 0.0;
  for (int i = 0; i < 3; ++i) {
    chaos.offer({FrameKind::kHeartbeat, "hb"}, now);
    now += 1.0;
  }
  ASSERT_TRUE(chaos.take_partition(now));
  EXPECT_FALSE(chaos.take_partition(now)) << "taking consumes the trigger";
  EXPECT_TRUE(chaos.partitioned(now + 50.0));
  EXPECT_FALSE(chaos.partitioned(now + 150.0)) << "heals after partition_ms";
  EXPECT_EQ(chaos.partitions(), 1u);
  // One-shot by default: more traffic does not re-arm it — including
  // traffic offered *after* a take_partition call has processed the heal
  // (the regression that once partitioned a reconnecting link forever).
  for (int i = 0; i < 10; ++i) {
    chaos.offer({FrameKind::kHeartbeat, "hb"}, now + 200.0 + i);
  }
  EXPECT_FALSE(chaos.take_partition(now + 300.0));
  for (int i = 0; i < 10; ++i) {
    chaos.offer({FrameKind::kHeartbeat, "hb"}, now + 400.0 + i);
    EXPECT_FALSE(chaos.take_partition(now + 400.0 + i));
  }
  EXPECT_EQ(chaos.partitions(), 1u);
}

TEST(Chaos, PartitionRepeatReArms) {
  ChaosOptions opts;
  opts.seed = 23;
  opts.partition_after = 2;
  opts.partition_ms = 10.0;
  opts.partition_repeat = true;
  ChaosTransport chaos(opts);
  double now = 0.0;
  std::size_t taken = 0;
  for (int i = 0; i < 8; ++i) {
    chaos.offer({FrameKind::kHeartbeat, "hb"}, now);
    if (chaos.take_partition(now)) ++taken;
    now += 20.0;  // past the heal window each time
  }
  EXPECT_GE(taken, 2u);
  EXPECT_EQ(chaos.partitions(), taken);
}

// ---------------------------------------------------------------------------
// Decorrelated-jitter backoff (satellite: bound and spread, fixed seed)

TEST(Backoff, FirstAttemptIsExactlyBase) {
  DecorrelatedBackoff b(50.0, 2000.0, 1);
  EXPECT_DOUBLE_EQ(b.next_ms(), 50.0);
  b.reset();
  EXPECT_DOUBLE_EQ(b.next_ms(), 50.0) << "reset restarts from the bottom";
}

TEST(Backoff, EveryDrawStaysInTheDecorrelatedBand) {
  DecorrelatedBackoff b(50.0, 2000.0, 0xABCDEF);
  double prev = b.next_ms();
  EXPECT_DOUBLE_EQ(prev, 50.0);
  for (int i = 0; i < 200; ++i) {
    const double hi = std::min(2000.0, prev * 3.0);
    const double d = b.next_ms();
    EXPECT_GE(d, 50.0);
    EXPECT_LE(d, hi + 1e-9);
    EXPECT_LE(d, 2000.0);
    prev = d;
  }
}

TEST(Backoff, FixedSeedSpreadsAcrossTheBandAndDiffersBySeed) {
  // Spread: after warmup the draws should cover a wide slice of
  // [base, cap], not cluster — that is the whole point of jitter.
  DecorrelatedBackoff b(10.0, 1000.0, 99);
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < 100; ++i) {
    const double d = b.next_ms();
    if (i >= 8) {  // past the exponential ramp
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
  }
  EXPECT_LT(lo, 300.0) << "jitter should reach down toward base";
  EXPECT_GT(hi, 700.0) << "jitter should reach up toward cap";

  // Decorrelation: two seeds never share a schedule.
  DecorrelatedBackoff b1(10.0, 1000.0, 1), b2(10.0, 1000.0, 2);
  b1.next_ms();
  b2.next_ms();  // both exactly base
  bool differed = false;
  for (int i = 0; i < 20; ++i) {
    differed |= b1.next_ms() != b2.next_ms();
  }
  EXPECT_TRUE(differed);
}

TEST(Backoff, DeterministicPerSeed) {
  const auto draw = [](std::uint64_t seed) {
    DecorrelatedBackoff b(5.0, 500.0, seed);
    std::vector<double> v;
    for (int i = 0; i < 32; ++i) v.push_back(b.next_ms());
    return v;
  };
  EXPECT_EQ(draw(1234), draw(1234));
}

// ---------------------------------------------------------------------------
// EpochLedger (the fencing decision)

TEST(Epochs, IssueRevokeFence) {
  EpochLedger ledger;
  const auto e1 = ledger.issue(0);
  const auto e2 = ledger.issue(1);
  EXPECT_NE(e1, e2) << "epochs are unique across shards";
  EXPECT_NE(e1, 0u) << "0 is never a valid epoch";
  EXPECT_TRUE(ledger.valid(e1));
  EXPECT_EQ(ledger.shard_of(e1), 0u);
  EXPECT_EQ(ledger.active(), 2u);

  ledger.revoke(e1);
  EXPECT_FALSE(ledger.valid(e1)) << "a revoked epoch is a zombie claim";
  EXPECT_TRUE(ledger.valid(e2));
  EXPECT_EQ(ledger.active(), 1u);

  // Relaunch of shard 0 mints a fresh epoch; the old one stays dead.
  const auto e3 = ledger.issue(0);
  EXPECT_NE(e3, e1);
  EXPECT_TRUE(ledger.valid(e3));
  EXPECT_FALSE(ledger.valid(e1));
  ledger.revoke(e1);  // double revoke is harmless
  EXPECT_EQ(ledger.active(), 2u);
  EXPECT_FALSE(ledger.valid(0));
}

// ---------------------------------------------------------------------------
// StreamingMerger

driver::RunRecord rec_for(std::size_t index,
                          driver::PointStatus status =
                              driver::PointStatus::kOk) {
  driver::RunRecord rec;
  rec.index = index;
  rec.workload = "stream_test";
  rec.status = status;
  return rec;
}

TEST(StreamMerge, EmitsTheContiguousPrefixInGridOrder) {
  std::vector<std::size_t> emitted;
  StreamingMerger merger(6, [&](std::size_t i, const driver::RunRecord&) {
    emitted.push_back(i);
  });
  EXPECT_TRUE(merger.offer(rec_for(2)));  // held: gap at 0..1
  EXPECT_TRUE(merger.offer(rec_for(0)));  // emits 0
  EXPECT_EQ(emitted, (std::vector<std::size_t>{0}));
  EXPECT_EQ(merger.held(), 1u);
  EXPECT_TRUE(merger.offer(rec_for(1)));  // unblocks 1 and the held 2
  EXPECT_EQ(emitted, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(merger.emitted(), 3u);
  EXPECT_EQ(merger.held(), 0u);
  EXPECT_TRUE(merger.offer(rec_for(5)));
  EXPECT_TRUE(merger.offer(rec_for(4)));
  EXPECT_TRUE(merger.offer(rec_for(3)));
  EXPECT_EQ(emitted, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(merger.arrived(), 6u);
}

TEST(StreamMerge, AgreeingDuplicatesAreCountedNotReEmitted) {
  std::size_t emits = 0;
  StreamingMerger merger(3,
                         [&](std::size_t, const driver::RunRecord&) {
                           ++emits;
                         });
  EXPECT_TRUE(merger.offer(rec_for(0)));
  EXPECT_FALSE(merger.offer(rec_for(0)));  // retransmitted frame
  EXPECT_TRUE(merger.offer(rec_for(1)));
  EXPECT_FALSE(merger.offer(rec_for(1)));
  EXPECT_EQ(emits, 2u);
  EXPECT_EQ(merger.duplicates(), 2u);
}

TEST(StreamMerge, DisagreeingDuplicateAndOutOfGridAreTypedErrors) {
  StreamingMerger merger(3, {});
  EXPECT_TRUE(merger.offer(rec_for(1)));  // still held (gap at 0)
  EXPECT_THROW(merger.offer(rec_for(1, driver::PointStatus::kFailed)),
               JournalConflictError);
  EXPECT_TRUE(merger.offer(rec_for(0)));  // 0 then the held 1 emit
  // Post-emit disagreement must still be caught (the record is gone from
  // the held map but its status is remembered).
  EXPECT_THROW(merger.offer(rec_for(0, driver::PointStatus::kFailed)),
               JournalConflictError);
  EXPECT_THROW(merger.offer(rec_for(3)), JournalConflictError);
}

// ---------------------------------------------------------------------------
// Journal directory durability (satellite: rename-then-crash regression)

TEST(DurableRename, RenamedJournalReadsBackEveryAcknowledgedLine) {
  const std::string staging = temp_path("staging.jsonl");
  const std::string live = temp_path("live.jsonl");
  {
    JournalWriter w;
    w.open(staging, /*keep_existing=*/false);
    w.append(R"({"index":0})");
    w.append(R"({"index":1})");
    w.close();
  }
  // The crash-safety sequence under test: create + append (fsync'd),
  // rename into place, fsync the parent. After this returns, a kill -9
  // at *any* point leaves either the old state or the complete new one —
  // never a present name with absent content.
  durable_rename(staging, live);
  EXPECT_EQ(read_journal_lines(live),
            (std::vector<std::string>{R"({"index":0})", R"({"index":1})"}));
  EXPECT_TRUE(read_journal_lines(staging).empty()) << "source is gone";
  std::remove(live.c_str());
}

TEST(DurableRename, OverwritesTheDestinationAtomically) {
  const std::string from = temp_path("steal.jsonl");
  const std::string to = temp_path("target.jsonl");
  {
    JournalWriter w;
    w.open(to, false);
    w.append("old");
    w.close();
  }
  {
    JournalWriter w;
    w.open(from, false);
    w.append("new");
    w.close();
  }
  durable_rename(from, to);
  EXPECT_EQ(read_journal_lines(to), (std::vector<std::string>{"new"}));
  std::remove(to.c_str());
}

TEST(DurableRename, MissingSourceIsATypedError) {
  EXPECT_THROW(durable_rename(temp_path("nope.jsonl"),
                              temp_path("nowhere.jsonl")),
               SimulationError);
}

TEST(DurableRename, FsyncParentDirIsBestEffortOnOddPaths) {
  // Must not throw for any dirname shape — including paths whose parent
  // cannot be opened. It is a durability upgrade, not a correctness gate.
  EXPECT_NO_THROW(fsync_parent_dir("relative-name.jsonl"));
  EXPECT_NO_THROW(fsync_parent_dir("/no/such/dir/file.jsonl"));
  EXPECT_NO_THROW(fsync_parent_dir("/rootfile"));
  EXPECT_NO_THROW(fsync_parent_dir(temp_path("exists.jsonl")));
}

TEST(JournalOpen, NewJournalSurvivesImmediateReopen) {
  // open() fsyncs the parent after O_CREAT; the observable contract here
  // is simply that create -> append -> close -> reopen(keep) round-trips.
  const std::string path = temp_path("fresh.jsonl");
  {
    JournalWriter w;
    w.open(path, false);
    w.append("first");
    w.close();
  }
  {
    JournalWriter w;
    w.open(path, true);
    w.append("second");
    w.close();
  }
  EXPECT_EQ(read_journal_lines(path),
            (std::vector<std::string>{"first", "second"}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace psync::dist
