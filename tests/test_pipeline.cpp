#include <gtest/gtest.h>

#include "psync/common/rng.hpp"
#include "psync/core/psync_machine.hpp"

namespace psync::core {
namespace {

std::vector<std::complex<double>> random_matrix(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> m(n);
  for (auto& v : m) {
    v = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return m;
}

PsyncRunReport run(std::size_t dim, std::size_t procs, double gbps,
                   std::size_t k = 1) {
  PsyncMachineParams p;
  p.processors = procs;
  p.matrix_rows = dim;
  p.matrix_cols = dim;
  p.waveguide_gbps = gbps;
  p.delivery_blocks = k;
  p.head.dram.row_switch_cycles = 0;
  PsyncMachine m(p);
  return m.run_fft2d(random_matrix(dim * dim, dim), false);
}

TEST(Pipeline, IntervalNeverExceedsLatency) {
  const auto rep = run(32, 8, 320.0);
  const auto pipe = PsyncMachine::pipeline_estimate(rep);
  EXPECT_GT(pipe.interval_ns, 0.0);
  EXPECT_LE(pipe.interval_ns, pipe.latency_ns);
  EXPECT_NEAR(pipe.frames_per_sec, 1e9 / pipe.interval_ns, 1e-6);
}

TEST(Pipeline, BusAndComputePartsAreConsistent) {
  const auto rep = run(32, 8, 320.0);
  const auto pipe = PsyncMachine::pipeline_estimate(rep);
  // Bus busy equals the sum of the collective phases.
  double bus = 0.0;
  for (const auto& ph : rep.phases) {
    if (ph.name.rfind("scatter", 0) == 0 || ph.name.rfind("sca_", 0) == 0) {
      bus += ph.duration_ns();
    }
  }
  EXPECT_NEAR(pipe.bus_busy_ns, bus, 1e-6);
  // Compute busy is the per-processor share of the run's busy time.
  EXPECT_NEAR(pipe.compute_busy_ns, rep.compute_efficiency * rep.total_ns,
              1e-6);
}

TEST(Pipeline, ComputeBoundAtHighBandwidth) {
  // A fat waveguide makes compute the steady-state limiter.
  const auto pipe =
      PsyncMachine::pipeline_estimate(run(32, 4, 1280.0));
  EXPECT_FALSE(pipe.bus_bound);
}

TEST(Pipeline, BusBoundAtLowBandwidth) {
  const auto pipe = PsyncMachine::pipeline_estimate(run(32, 16, 40.0));
  EXPECT_TRUE(pipe.bus_bound);
}

TEST(Pipeline, ThroughputGainOverSerialExecution) {
  // Pipelining must buy at least ~1.5x over back-to-back serial frames for
  // a balanced configuration (bus and compute comparable: 64 processors
  // make per-node compute ~ waveguide occupancy at 320 Gb/s).
  const auto rep = run(64, 64, 320.0);
  const auto pipe = PsyncMachine::pipeline_estimate(rep);
  EXPECT_GT(pipe.latency_ns / pipe.interval_ns, 1.5);
}

}  // namespace
}  // namespace psync::core
