// Equivalence tests for the perf fast paths: every optimization in the
// mesh, FFT, and reliability layers must be observationally identical to
// the reference implementation it replaced. These tests run both sides on
// the same inputs and require bit-identical outputs, stats, and reports —
// the fast paths buy wall-clock time, never different answers.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "psync/common/rng.hpp"
#include "psync/driver/runner.hpp"
#include "psync/fft/fft.hpp"
#include "psync/mesh/mesh.hpp"
#include "psync/reliability/crc32.hpp"
#include "psync/reliability/fault_model.hpp"
#include "psync/reliability/framing.hpp"
#include "psync/reliability/secded.hpp"

namespace psync {
namespace {

// --- mesh: idle-cycle skip --------------------------------------------

struct MeshOutcome {
  std::int64_t final_cycle = 0;
  mesh::MeshActivity activity;
  std::uint64_t latency_count = 0;
  double latency_sum = 0.0;
  double latency_min = 0.0;
  double latency_max = 0.0;
  std::vector<std::uint64_t> payloads;   // every ejected flit, all sinks
  std::vector<std::int64_t> eject_cycles;

  bool operator==(const MeshOutcome& o) const {
    return final_cycle == o.final_cycle &&
           std::memcmp(&activity, &o.activity, sizeof(activity)) == 0 &&
           latency_count == o.latency_count && latency_sum == o.latency_sum &&
           latency_min == o.latency_min && latency_max == o.latency_max &&
           payloads == o.payloads && eject_cycles == o.eject_cycles;
  }
};

MeshOutcome run_mesh(const mesh::MeshParams& mp,
                     const std::vector<mesh::PacketDesc>& packets,
                     bool idle_skip) {
  mesh::Mesh net(mp);
  net.set_idle_skip(idle_skip);
  std::vector<mesh::ConsumeSink> sinks(net.nodes());
  for (mesh::NodeId n = 0; n < net.nodes(); ++n) {
    sinks[n].keep_log(true);
    net.set_sink(n, &sinks[n]);
  }
  for (const auto& d : packets) net.inject(d);
  EXPECT_TRUE(net.run_until_drained(20'000'000));

  MeshOutcome out;
  out.final_cycle = net.cycle();
  out.activity = net.activity();
  out.latency_count = net.packet_latency().count();
  out.latency_sum = net.packet_latency().sum();
  out.latency_min = net.packet_latency().min();
  out.latency_max = net.packet_latency().max();
  for (mesh::NodeId n = 0; n < net.nodes(); ++n) {
    for (const auto& f : sinks[n].log()) out.payloads.push_back(f.payload);
    for (std::int64_t c : sinks[n].log_cycles()) out.eject_cycles.push_back(c);
  }
  return out;
}

void expect_skip_equivalent(const mesh::MeshParams& mp,
                            const std::vector<mesh::PacketDesc>& packets) {
  const MeshOutcome fast = run_mesh(mp, packets, true);
  const MeshOutcome naive = run_mesh(mp, packets, false);
  EXPECT_TRUE(fast == naive)
      << "idle-skip changed observable behavior: cycle " << fast.final_cycle
      << " vs " << naive.final_cycle << ", ejected " << fast.payloads.size()
      << " vs " << naive.payloads.size();
}

std::vector<mesh::PacketDesc> sparse_random_traffic(std::uint32_t nodes,
                                                    std::uint64_t seed) {
  // Releases spread tens of thousands of cycles apart: the drain is almost
  // entirely idle, so every skipped cycle gets exercised.
  Rng rng(seed);
  std::vector<mesh::PacketDesc> packets;
  for (int i = 0; i < 50; ++i) {
    mesh::PacketDesc d;
    d.src = static_cast<mesh::NodeId>(rng.next_u64() % nodes);
    d.dst = static_cast<mesh::NodeId>(rng.next_u64() % nodes);
    d.payload_flits = 1 + static_cast<std::uint32_t>(rng.next_u64() % 12);
    d.payload_base = static_cast<std::uint64_t>(i) << 20;
    d.release_cycle = static_cast<std::int64_t>(rng.next_u64() % 2'000'000);
    packets.push_back(d);
  }
  return packets;
}

TEST(MeshIdleSkip, SparseRandomTrafficIdentical) {
  mesh::MeshParams mp;
  mp.width = 4;
  mp.height = 4;
  expect_skip_equivalent(mp, sparse_random_traffic(16, 1));
}

TEST(MeshIdleSkip, BurstyClustersIdentical) {
  // Bursts of overlapping packets separated by long idle gaps: the skip
  // must engage between bursts but never inside one.
  mesh::MeshParams mp;
  mp.width = 4;
  mp.height = 4;
  std::vector<mesh::PacketDesc> packets;
  Rng rng(7);
  for (int burst = 0; burst < 6; ++burst) {
    const std::int64_t t0 = burst * 500'000;
    for (int i = 0; i < 12; ++i) {
      mesh::PacketDesc d;
      d.src = static_cast<mesh::NodeId>(rng.next_u64() % 16);
      d.dst = static_cast<mesh::NodeId>(rng.next_u64() % 16);
      d.payload_flits = 4;
      d.release_cycle = t0 + static_cast<std::int64_t>(rng.next_u64() % 40);
      packets.push_back(d);
    }
  }
  expect_skip_equivalent(mp, packets);
}

TEST(MeshIdleSkip, ScatterFromCornerIdentical) {
  // Multicast-like delivery: the corner node streams one packet to every
  // node in rounds, widely spaced.
  mesh::MeshParams mp;
  mp.width = 4;
  mp.height = 4;
  std::vector<mesh::PacketDesc> packets;
  for (int round = 0; round < 3; ++round) {
    for (mesh::NodeId n = 0; n < 16; ++n) {
      mesh::PacketDesc d;
      d.src = 0;
      d.dst = n;
      d.payload_flits = 8;
      d.payload_base = static_cast<std::uint64_t>(round) * 100;
      d.release_cycle = round * 300'000 + n * 7;
      packets.push_back(d);
    }
  }
  expect_skip_equivalent(mp, packets);
}

TEST(MeshIdleSkip, GatherToCornerIdentical) {
  mesh::MeshParams mp;
  mp.width = 4;
  mp.height = 4;
  std::vector<mesh::PacketDesc> packets;
  for (int round = 0; round < 3; ++round) {
    for (mesh::NodeId n = 0; n < 16; ++n) {
      mesh::PacketDesc d;
      d.src = n;
      d.dst = 0;
      d.payload_flits = 6;
      d.release_cycle = round * 250'000 + n * 3;
      packets.push_back(d);
    }
  }
  expect_skip_equivalent(mp, packets);
}

TEST(MeshIdleSkip, VirtualChannelsAndWestFirstIdentical) {
  mesh::MeshParams mp;
  mp.width = 4;
  mp.height = 4;
  mp.virtual_channels = 2;
  mp.buffer_depth = 3;  // non-power-of-two: exercises the masked FIFO
  mp.algo = mesh::RouteAlgo::kWestFirstAdaptive;
  expect_skip_equivalent(mp, sparse_random_traffic(16, 2));
}

TEST(MeshIdleSkip, ReleaseAtOrBeforeCurrentCycleIdentical) {
  // Packets whose release cycle is already due when injected (release 0)
  // alongside far-future ones.
  mesh::MeshParams mp;
  mp.width = 2;
  mp.height = 2;
  std::vector<mesh::PacketDesc> packets;
  for (int i = 0; i < 4; ++i) {
    mesh::PacketDesc d;
    d.src = static_cast<mesh::NodeId>(i);
    d.dst = static_cast<mesh::NodeId>(3 - i);
    d.payload_flits = 2;
    d.release_cycle = 0;
    packets.push_back(d);
    d.release_cycle = 1'000'000 + i;
    packets.push_back(d);
  }
  expect_skip_equivalent(mp, packets);
}

// --- fft: fused kernel vs strided reference ---------------------------

std::vector<fft::Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<fft::Complex> x(n);
  for (auto& v : x) v = {rng.next_double() - 0.5, rng.next_double() - 0.5};
  return x;
}

bool bit_identical(const std::vector<fft::Complex>& a,
                   const std::vector<fft::Complex>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(fft::Complex)) == 0;
}

TEST(FftFastKernel, ForwardBitIdenticalToReferenceAcrossSizes) {
  ASSERT_TRUE(fft::fast_kernel()) << "fast kernel must be the default";
  for (std::size_t n = 2; n <= 4096; n *= 2) {
    const auto input = random_signal(n, 1000 + n);
    fft::FftPlan plan(n);

    auto fast = input;
    const auto fast_ops = plan.forward(fast);

    fft::set_fast_kernel(false);
    auto ref = input;
    const auto ref_ops = plan.forward(ref);
    fft::set_fast_kernel(true);

    EXPECT_TRUE(bit_identical(fast, ref)) << "n=" << n;
    EXPECT_EQ(fast_ops.butterflies, ref_ops.butterflies) << "n=" << n;
    EXPECT_EQ(fast_ops.real_mults, ref_ops.real_mults) << "n=" << n;
    EXPECT_EQ(fast_ops.real_adds, ref_ops.real_adds) << "n=" << n;
  }
}

TEST(FftFastKernel, InverseBitIdenticalToReference) {
  for (std::size_t n : {8u, 64u, 1024u}) {
    const auto input = random_signal(n, 2000 + n);
    fft::FftPlan plan(n);

    auto fast = input;
    plan.inverse(fast);

    fft::set_fast_kernel(false);
    auto ref = input;
    plan.inverse(ref);
    fft::set_fast_kernel(true);

    EXPECT_TRUE(bit_identical(fast, ref)) << "n=" << n;
  }
}

TEST(FftFastKernel, BlockedForwardBitIdenticalToReference) {
  const std::size_t n = 1024;
  const auto input = random_signal(n, 31);
  fft::FftPlan plan(n);
  for (std::size_t k : {1u, 4u, 16u}) {
    auto fast = input;
    plan.forward_blocked(fast, k);

    fft::set_fast_kernel(false);
    auto ref = input;
    plan.forward_blocked(ref, k);
    fft::set_fast_kernel(true);

    EXPECT_TRUE(bit_identical(fast, ref)) << "k=" << k;
  }
}

TEST(FftFastKernel, RunStagesReferenceMatchesToggledDispatch) {
  // The public reference entry point is the same code the toggle selects.
  const std::size_t n = 256;
  const auto input = random_signal(n, 77);
  fft::FftPlan plan(n);

  auto via_toggle = input;
  fft::set_fast_kernel(false);
  plan.forward(via_toggle);
  fft::set_fast_kernel(true);

  auto fast = input;
  plan.forward(fast);
  EXPECT_TRUE(bit_identical(fast, via_toggle));
}

// --- reliability: batched codec vs per-word reference ------------------

TEST(ReliabilityBatch, Crc32SliceBy8MatchesBytewise) {
  Rng rng(5);
  std::vector<std::uint8_t> buf(4096);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
  // All lengths 0..257 plus odd offsets: every tail/alignment path.
  for (std::size_t len = 0; len <= 257; ++len) {
    for (std::size_t off : {0u, 1u, 3u, 7u}) {
      const std::uint32_t fast =
          reliability::crc32_update(reliability::kCrc32Init, buf.data() + off,
                                    len);
      const std::uint32_t ref = reliability::crc32_update_reference(
          reliability::kCrc32Init, buf.data() + off, len);
      ASSERT_EQ(fast, ref) << "len=" << len << " off=" << off;
    }
  }
  // Chained updates must agree too (CRC is stateful across blocks).
  std::uint32_t fast = reliability::kCrc32Init;
  std::uint32_t ref = reliability::kCrc32Init;
  for (std::size_t off = 0; off < 4096; off += 123) {
    const std::size_t len = std::min<std::size_t>(123, 4096 - off);
    fast = reliability::crc32_update(fast, buf.data() + off, len);
    ref = reliability::crc32_update_reference(ref, buf.data() + off, len);
  }
  EXPECT_EQ(reliability::crc32_finalize(fast),
            reliability::crc32_finalize(ref));
}

TEST(ReliabilityBatch, SecdedWordBatchMatchesPerWord) {
  Rng rng(6);
  const std::size_t kCount = 512;
  std::vector<std::uint64_t> data(kCount);
  for (auto& w : data) w = rng.next_u64();

  std::vector<std::uint8_t> batch_checks(kCount);
  reliability::secded_encode_words(data.data(), kCount, batch_checks.data());
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(batch_checks[i], reliability::secded_encode(data[i])) << i;
  }

  // Corrupt a mix: clean words, single data-bit flips, check-bit flips,
  // and double errors.
  std::vector<std::uint64_t> rx = data;
  std::vector<std::uint8_t> rx_checks = batch_checks;
  for (std::size_t i = 0; i < kCount; ++i) {
    switch (i % 5) {
      case 1: rx[i] ^= std::uint64_t{1} << (i % 64); break;
      case 2: rx_checks[i] ^= static_cast<std::uint8_t>(1U << (i % 8)); break;
      case 3:
        rx[i] ^= (std::uint64_t{1} << (i % 64)) |
                 (std::uint64_t{1} << ((i + 17) % 64));
        break;
      default: break;  // clean
    }
  }

  for (bool correct : {true, false}) {
    std::vector<std::uint64_t> batch_out(kCount);
    reliability::SecdedWordStats stats;
    reliability::secded_decode_words(rx.data(), rx_checks.data(), kCount,
                                     correct, batch_out.data(), &stats);
    reliability::SecdedWordStats ref_stats;
    for (std::size_t i = 0; i < kCount; ++i) {
      const auto res = reliability::secded_decode(rx[i], rx_checks[i]);
      const std::uint64_t want = correct ? res.data : rx[i];
      ASSERT_EQ(batch_out[i], want) << "word " << i;
      if (!res.clean()) ++ref_stats.flagged_words;
      if (res.double_error()) ++ref_stats.double_errors;
      if (correct && res.status == reliability::SecdedStatus::kCorrectedData) {
        ++ref_stats.corrected_bits;
      }
    }
    EXPECT_EQ(stats.flagged_words, ref_stats.flagged_words);
    EXPECT_EQ(stats.double_errors, ref_stats.double_errors);
    EXPECT_EQ(stats.corrected_bits, ref_stats.corrected_bits);
  }
}

TEST(ReliabilityBatch, FramingMatchesReferenceCleanAndCorrupted) {
  Rng rng(8);
  for (std::size_t n : {1u, 7u, 8u, 9u, 64u}) {
    std::vector<std::uint64_t> payload(n);
    for (auto& w : payload) w = rng.next_u64();

    std::vector<std::uint64_t> wire, wire_ref;
    reliability::encode_block(payload.data(), n, &wire);
    reliability::encode_block_reference(payload.data(), n, &wire_ref);
    ASSERT_EQ(wire, wire_ref) << "n=" << n;

    // Clean decode.
    auto check_decode = [&](const std::vector<std::uint64_t>& rx) {
      for (bool correct : {true, false}) {
        const auto fast = reliability::decode_block(rx.data(), n, correct);
        const auto ref =
            reliability::decode_block_reference(rx.data(), n, correct);
        ASSERT_EQ(fast.payload, ref.payload);
        ASSERT_EQ(fast.corrected_bits, ref.corrected_bits);
        ASSERT_EQ(fast.double_errors, ref.double_errors);
        ASSERT_EQ(fast.flagged_words, ref.flagged_words);
        ASSERT_EQ(fast.crc_ok, ref.crc_ok);
        // decode_block_into with a dirty, reused output buffer.
        reliability::BlockDecode into;
        into.payload.assign(99, 0xdeadbeef);
        into.corrected_bits = 123;
        reliability::decode_block_into(rx.data(), n, correct, &into);
        ASSERT_EQ(into.payload, ref.payload);
        ASSERT_EQ(into.corrected_bits, ref.corrected_bits);
        ASSERT_EQ(into.double_errors, ref.double_errors);
        ASSERT_EQ(into.flagged_words, ref.flagged_words);
        ASSERT_EQ(into.crc_ok, ref.crc_ok);
      }
    };
    check_decode(wire);

    // Single-bit, double-bit, and CRC-slot corruption.
    auto rx = wire;
    rx[0] ^= 1;
    check_decode(rx);
    rx = wire;
    rx[n / 2] ^= 0b101;
    check_decode(rx);
    rx = wire;
    rx[n] ^= std::uint64_t{1} << 40;  // CRC word
    check_decode(rx);
    rx = wire;
    rx.back() ^= std::uint64_t{1} << 63;  // packed check slot
    check_decode(rx);
  }
}

TEST(ReliabilityBatch, CorruptWordsMatchesPerWordStream) {
  for (double ber : {0.0, 1e-6, 1e-3, 0.05}) {
    for (bool dead_lane : {false, true}) {
      reliability::FaultModel model;
      model.random_ber = ber;
      model.seed = 42;
      if (dead_lane) model.dead_wavelengths = {5, 40};

      Rng rng(9);
      std::vector<std::uint64_t> in(2048);
      for (auto& w : in) w = rng.next_u64();

      reliability::FaultStream batch_stream(model);
      reliability::FaultStream word_stream(model);
      std::vector<std::uint64_t> batch_out(in.size());
      std::vector<std::uint64_t> word_out(in.size());
      reliability::FaultReport batch_rep, word_rep;

      // Mixed call sizes so batching straddles bulk-copy boundaries.
      std::size_t off = 0;
      const std::size_t sizes[] = {1, 3, 64, 500, 1000, 480};
      for (std::size_t s : sizes) {
        batch_stream.corrupt_words(in.data() + off, batch_out.data() + off, s,
                                   &batch_rep);
        off += s;
      }
      ASSERT_EQ(off, in.size());
      for (std::size_t i = 0; i < in.size(); ++i) {
        word_out[i] = word_stream.corrupt(in[i], &word_rep);
      }

      ASSERT_EQ(batch_out, word_out) << "ber=" << ber;
      EXPECT_EQ(batch_rep.words_total, word_rep.words_total);
      EXPECT_EQ(batch_rep.words_corrupted, word_rep.words_corrupted);
      EXPECT_EQ(batch_rep.bits_flipped, word_rep.bits_flipped);
      EXPECT_EQ(batch_rep.bits_silenced, word_rep.bits_silenced);

      // In-place corruption (out == in) must give the same answer.
      reliability::FaultStream inplace_stream(model);
      std::vector<std::uint64_t> inplace = in;
      inplace_stream.corrupt_words(inplace.data(), inplace.data(),
                                   inplace.size(), nullptr);
      EXPECT_EQ(inplace, word_out) << "ber=" << ber;
    }
  }
}

// --- driver: reports byte-identical fast vs reference ------------------

TEST(DriverEquivalence, SweepJsonByteIdenticalFastVsReferenceKernel) {
  driver::ExperimentSpec spec;
  spec.workload = "fft2d";
  spec.machine.processors = 4;
  spec.machine.matrix_rows = 16;
  spec.machine.matrix_cols = 16;
  spec.with_mesh = true;
  spec.mesh.matrix_rows = 16;  // mesh baseline runs the same matrix
  spec.mesh.matrix_cols = 16;
  spec.mesh.elements_per_packet = 8;  // 16 elements/node must fill packets
  spec.axes.push_back({"blocks", {1, 2, 4}});

  const auto fast = driver::Runner::run(spec);
  fft::set_fast_kernel(false);
  const auto ref = driver::Runner::run(spec);
  fft::set_fast_kernel(true);

  EXPECT_EQ(driver::sweep_json(fast), driver::sweep_json(ref));
  EXPECT_EQ(driver::sweep_csv(fast), driver::sweep_csv(ref));
}

}  // namespace
}  // namespace psync
