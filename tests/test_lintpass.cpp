// psync_lint rule coverage: every shipped rule has at least one firing
// and one non-firing fixture under tests/lint_fixtures/, plus the
// suppression machinery, the string/comment false-positive guarantee,
// the layer-DAG freeze (including the acceptance-criteria synthetic
// dist/ -> serve/ include), the lexer's literal handling, and the
// compile_commands.json reader.
//
// Fixtures are linted under *pretend* repo-relative paths so the policy
// tables (allowlists, order-sensitive modules) can be exercised without
// touching real tree files.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "psync/lintpass/compile_db.hpp"
#include "psync/lintpass/engine.hpp"
#include "psync/lintpass/layers.hpp"
#include "psync/lintpass/lexer.hpp"
#include "psync/lintpass/policy.hpp"
#include "psync/lintpass/rules.hpp"

namespace lp = psync::lintpass;

namespace {

std::string fixture_path(const std::string& name) {
  return std::string(PSYNC_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const lp::LayerGraph& real_layers() {
  static const lp::LayerGraph g = lp::LayerGraph::parse(
      read_file(std::string(PSYNC_SOURCE_ROOT) + "/tools/lint_layers.txt"));
  return g;
}

const lp::LayerGraph& mini_layers() {
  static const lp::LayerGraph g =
      lp::LayerGraph::parse(read_file(fixture_path("mini_layers.txt")));
  return g;
}

/// Lint one fixture as if it lived at `pretend_path` in the repo.
lp::Report lint_fixture(const std::string& fixture,
                        const std::string& pretend_path,
                        const lp::LayerGraph& layers = real_layers()) {
  lp::Report report;
  lp::lint_file(pretend_path, read_file(fixture_path(fixture)),
                lp::Policy{}, layers, &report);
  return report;
}

int count_rule(const lp::Report& r, const std::string& rule) {
  int n = 0;
  for (const auto& f : r.findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// ------------------------------------------------------------ det-rand

TEST(LintDetRand, FiresOnAmbientRandomness) {
  const auto r =
      lint_fixture("det_rand_fires.cpp", "src/psync/core/fixture.cpp");
  EXPECT_EQ(count_rule(r, "det-rand"), 3);  // random_device, rand, std::rand
}

TEST(LintDetRand, StringsAndCommentsDoNotFire) {
  const auto r = lint_fixture("det_rand_string_clean.cpp",
                              "src/psync/core/fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

// ------------------------------------------------------- det-wall-clock

TEST(LintDetWallClock, FiresOutsideAllowlist) {
  const auto r =
      lint_fixture("det_clock_fires.cpp", "src/psync/core/fixture.cpp");
  EXPECT_EQ(count_rule(r, "det-wall-clock"), 2);  // steady_clock, time()
}

TEST(LintDetWallClock, AllowlistedModuleIsQuiet) {
  // The same wall-clock-reading code under perf/ (timing is its job).
  const auto r =
      lint_fixture("det_clock_fires.cpp", "src/psync/perf/fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

TEST(LintDetWallClock, MembersAndOtherNamespacesDoNotFire) {
  const auto r =
      lint_fixture("det_clock_clean.cpp", "src/psync/core/fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

TEST(LintDetWallClock, TestsAreOutOfScope) {
  const auto r =
      lint_fixture("det_clock_fires.cpp", "tests/test_fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

// --------------------------------------------------- det-pointer-format

TEST(LintDetPointerFormat, FiresOnAddressFormatting) {
  const auto r =
      lint_fixture("det_ptr_fires.cpp", "src/psync/core/fixture.cpp");
  // "%p" format string, static_cast<const void*> stream, (void*) stream.
  EXPECT_EQ(count_rule(r, "det-pointer-format"), 3);
}

TEST(LintDetPointerFormat, IdsAndShiftsDoNotFire) {
  const auto r =
      lint_fixture("det_ptr_clean.cpp", "src/psync/core/fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

// -------------------------------------------------------- det-unordered

TEST(LintDetUnordered, FiresInOrderSensitiveModule) {
  const auto r = lint_fixture("det_unordered_fires.cpp",
                              "src/psync/dist/merge_fixture.cpp");
  EXPECT_EQ(count_rule(r, "det-unordered"), 1);  // the declaration
}

TEST(LintDetUnordered, QuietOutsideSensitiveModules) {
  const auto r = lint_fixture("det_unordered_fires.cpp",
                              "src/psync/mesh/fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

TEST(LintDetUnordered, OrderedContainerIsClean) {
  const auto r = lint_fixture("det_unordered_clean.cpp",
                              "src/psync/dist/merge_fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

// ---------------------------------------------------------- suppression

TEST(LintSuppression, AuditedAllowSilencesAndIsCounted) {
  const auto r = lint_fixture("det_unordered_suppressed.cpp",
                              "src/psync/dist/merge_fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_EQ(r.suppressions[0].rule, "det-unordered");
  EXPECT_EQ(r.suppressions[0].uses, 1);
  EXPECT_FALSE(r.suppressions[0].reason.empty());
}

TEST(LintSuppression, UnusedAllowIsAFinding) {
  const auto r = lint_fixture("suppression_unused.cpp",
                              "src/psync/core/fixture.cpp");
  EXPECT_EQ(count_rule(r, "lint-unused-suppression"), 1);
  EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintSuppression, MissingReasonOrUnknownRuleIsAFinding) {
  const auto r =
      lint_fixture("suppression_bad.cpp", "src/psync/core/fixture.cpp");
  EXPECT_EQ(count_rule(r, "lint-bad-suppression"), 2);
  // The reasonless allow() must NOT suppress the real finding below it.
  EXPECT_EQ(count_rule(r, "det-rand"), 1);
}

TEST(LintSuppression, QuotedSyntaxInDocsDoesNotParse) {
  // A comment that *quotes* the directive (leading // inside the body,
  // as docs/static_analysis.md and the headers do) is not a directive.
  lp::Report r;
  lp::lint_file("src/psync/core/doc.cpp",
                "// example:\n"
                "//   // psync-lint: allow(not-a-rule): quoted\n"
                "int x;\n",
                lp::Policy{}, real_layers(), &r);
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

// ------------------------------------------------------------- layering

TEST(LintLayering, SyntheticDistToServeIncludeIsRejected) {
  const auto r =
      lint_fixture("layer_violation.cpp", "src/psync/dist/fixture.cpp");
  ASSERT_EQ(count_rule(r, "layer-violation"), 1);
  EXPECT_NE(r.findings[0].message.find("'dist' must not include 'serve'"),
            std::string::npos)
      << r.findings[0].message;
}

TEST(LintLayering, AllowedEdgesPass) {
  const auto r =
      lint_fixture("layer_clean.cpp", "src/psync/dist/fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

TEST(LintLayering, RelativeIncludeFires) {
  const auto r = lint_fixture("layer_relative_fires.cpp",
                              "src/psync/dist/fixture.cpp");
  EXPECT_EQ(count_rule(r, "layer-relative-include"), 1);
}

TEST(LintLayering, MiniDagRejectsUpwardAndUnknownEdges) {
  const auto r = lint_fixture("layer_mini_fires.cpp",
                              "src/psync/lower/fixture.cpp", mini_layers());
  EXPECT_EQ(count_rule(r, "layer-unknown-module"), 1);  // psync/ghost/
  EXPECT_EQ(count_rule(r, "layer-violation"), 1);       // lower -> upper
}

TEST(LintLayering, MiniDagAllowsDeclaredDownwardEdge) {
  const auto r = lint_fixture("layer_mini_clean.cpp",
                              "src/psync/upper/fixture.cpp", mini_layers());
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

TEST(LintLayering, FrozenDagMatchesTheRealIncludeGraph) {
  // The committed DAG must describe today's tree: linting all of
  // src/psync with the real layer file yields zero layer-* findings.
  // (The psync-lint CI job enforces the same over the compile database;
  // this keeps the guarantee inside ctest too.)
  const std::string root = PSYNC_SOURCE_ROOT;
  const auto files = lp::discover_files(root, {});
  lp::Report report;
  const lp::Policy policy;
  for (const auto& f : files) {
    if (f.find("/src/psync/") == std::string::npos) continue;
    const std::string rel = f.substr(root.size() + 1);
    lp::lint_file(rel, read_file(f), policy, real_layers(), &report);
  }
  for (const auto& f : report.findings) {
    EXPECT_NE(f.rule.rfind("layer-", 0), 0u)
        << f.file << ":" << f.line << " " << f.message;
  }
}

// -------------------------------------------------------------- hygiene

TEST(LintHygiene, MissingPragmaOnceFires) {
  const auto r = lint_fixture("hyg_pragma_missing.hpp",
                              "src/psync/core/fixture.hpp");
  EXPECT_EQ(count_rule(r, "hyg-pragma-once"), 1);
}

TEST(LintHygiene, PragmaOncePresentIsClean) {
  const auto r =
      lint_fixture("hyg_pragma_clean.hpp", "src/psync/core/fixture.hpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

TEST(LintHygiene, UsingNamespaceInHeaderFires) {
  const auto r = lint_fixture("hyg_using_namespace.hpp",
                              "src/psync/core/fixture.hpp");
  EXPECT_EQ(count_rule(r, "hyg-using-namespace"), 1);
  EXPECT_EQ(count_rule(r, "hyg-pragma-once"), 0);
}

TEST(LintHygiene, UsingNamespaceInCppIsAllowed) {
  lp::Report r;
  lp::lint_file("src/psync/core/fixture.cpp",
                "using namespace std::chrono_literals;\n", lp::Policy{},
                real_layers(), &r);
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

TEST(LintHygiene, AssertSideEffectFiresOnDurabilityPath) {
  const auto r =
      lint_fixture("hyg_assert_fires.cpp", "src/psync/dist/fixture.cpp");
  EXPECT_EQ(count_rule(r, "hyg-assert-side-effect"), 1);
}

TEST(LintHygiene, ComparisonOnlyAssertIsClean) {
  const auto r =
      lint_fixture("hyg_assert_clean.cpp", "src/psync/dist/fixture.cpp");
  EXPECT_TRUE(r.findings.empty()) << lp::render_text(r);
}

TEST(LintHygiene, AssertRuleScopedToDurabilityModules) {
  const auto r =
      lint_fixture("hyg_assert_fires.cpp", "src/psync/mesh/fixture.cpp");
  EXPECT_EQ(count_rule(r, "hyg-assert-side-effect"), 0);
}

// -------------------------------------------------------- parse failure

TEST(LintEngine, UntokenizableFileIsAParseFailure) {
  const auto r =
      lint_fixture("lex_error.cpp", "src/psync/core/fixture.cpp");
  EXPECT_EQ(r.parse_failures, 1);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "lex-error");
}

TEST(LintEngine, FixtureDirectoryIsNeverScanned) {
  lp::Report r;
  lp::lint_file("tests/lint_fixtures/det_rand_fires.cpp",
                read_file(fixture_path("det_rand_fires.cpp")), lp::Policy{},
                real_layers(), &r);
  EXPECT_EQ(r.files_scanned, 0);
  EXPECT_TRUE(r.findings.empty());
}

// ---------------------------------------------------------------- lexer

TEST(LintLexer, DigitSeparatorDoesNotOpenCharLiteral) {
  const auto toks = lp::lex("int x = 1'000'000; int y = 'a';");
  int chars = 0;
  for (const auto& t : toks) {
    if (t.kind == lp::TokKind::kChar) ++chars;
    if (t.kind == lp::TokKind::kNumber) {
      EXPECT_EQ(t.text, "1'000'000");
    }
  }
  EXPECT_EQ(chars, 1);
}

TEST(LintLexer, RawStringSwallowsEverything) {
  const auto toks = lp::lex("auto s = R\"x(rand() \" // )\" )x\"; rand();");
  int idents_named_rand = 0;
  for (const auto& t : toks) {
    if (t.kind == lp::TokKind::kIdent && t.text == "rand") {
      ++idents_named_rand;
    }
  }
  EXPECT_EQ(idents_named_rand, 1);  // only the real call after the string
}

TEST(LintLexer, LineNumbersSurviveContinuationsAndBlockComments) {
  const auto toks = lp::lex("/* line1\nline2 */\nint \\\nx;\nrand();");
  for (const auto& t : toks) {
    if (t.kind == lp::TokKind::kIdent && t.text == "rand") {
      EXPECT_EQ(t.line, 5);
    }
  }
}

TEST(LintLexer, DirectiveSpansContinuation) {
  const auto toks = lp::lex("#include \\\n\"psync/common/rng.hpp\"\nint x;");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, lp::TokKind::kDirective);
  EXPECT_NE(toks[0].text.find("psync/common/rng.hpp"), std::string::npos);
}

// ----------------------------------------------------------- layer file

TEST(LintLayerFile, RejectsUndeclaredDepAndDuplicates) {
  EXPECT_THROW(lp::LayerGraph::parse("layer a: ghost\n"),
               std::runtime_error);
  EXPECT_THROW(lp::LayerGraph::parse("layer a\nlayer a\n"),
               std::runtime_error);
  EXPECT_THROW(lp::LayerGraph::parse("module a\n"), std::runtime_error);
}

TEST(LintLayerFile, SelfEdgesAreImplicit) {
  const auto g = lp::LayerGraph::parse("layer a\nlayer b: a\n");
  EXPECT_TRUE(g.allowed("a", "a"));
  EXPECT_TRUE(g.allowed("b", "a"));
  EXPECT_FALSE(g.allowed("a", "b"));
}

// ------------------------------------------------------------ compdb

TEST(LintCompileDb, ParsesDirectoryRelativeFilesAndDedupes) {
  const std::string db = R"([
    {"directory": "/repo/build", "command": "c++ ...",
     "file": "/repo/src/psync/core/trace.cpp"},
    {"directory": "/repo/build", "command": "c++ ...",
     "file": "../src/psync/core/trace.cpp"},
    {"directory": "/repo/build", "arguments": ["c++", "-c"],
     "file": "../tools/psync_lint.cpp"}
  ])";
  const auto files = lp::compile_db_files(db);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "/repo/src/psync/core/trace.cpp");
  EXPECT_EQ(files[1], "/repo/tools/psync_lint.cpp");
  EXPECT_EQ(lp::infer_repo_root(files), "/repo");
}

TEST(LintCompileDb, MalformedDatabaseThrows) {
  EXPECT_THROW(lp::compile_db_files("{\"not\": \"an array\"}"),
               lp::CompileDbError);
  EXPECT_THROW(lp::compile_db_files("[{\"directory\": \"/b\"}]"),
               lp::CompileDbError);
  EXPECT_THROW(lp::compile_db_files("[{\"file\": \"x.cpp\""),
               lp::CompileDbError);
}

// ------------------------------------------------------------ reporting

TEST(LintReport, JsonEscapesAndCounts) {
  lp::Report r;
  r.files_scanned = 1;
  r.findings.push_back(
      lp::Finding{"src/a.cpp", 3, "det-rand", "say \"hi\"\n", "fix"});
  const std::string json = lp::render_json(r);
  EXPECT_NE(json.find("\"say \\\"hi\\\"\\n\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"files_scanned\":1"), std::string::npos);
}

TEST(LintReport, EveryCatalogRuleHasIdSummaryHint) {
  for (const auto& rule : lp::rule_catalog()) {
    EXPECT_TRUE(lp::known_rule(rule.id));
    EXPECT_GT(std::string(rule.summary).size(), 0u);
    EXPECT_GT(std::string(rule.hint).size(), 0u);
  }
  EXPECT_FALSE(lp::known_rule("not-a-rule"));
}

}  // namespace
