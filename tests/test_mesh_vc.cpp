// Virtual-channel router tests: correctness at V > 1 and the blocking
// behaviours VCs are supposed to fix.
#include <gtest/gtest.h>

#include <map>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/mesh/mesh.hpp"
#include "psync/mesh/traffic.hpp"

namespace psync::mesh {
namespace {

MeshParams cfg(std::uint32_t dim, std::uint32_t vc) {
  MeshParams p;
  p.width = dim;
  p.height = dim;
  p.virtual_channels = vc;
  return p;
}

class VcSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VcSweep, UniformRandomConservation) {
  Mesh m(cfg(4, GetParam()));
  std::vector<ConsumeSink> sinks(m.nodes());
  for (NodeId n = 0; n < m.nodes(); ++n) {
    sinks[n].keep_log(true);
    m.set_sink(n, &sinks[n]);
  }
  Rng rng(77 + GetParam());
  const auto traffic = uniform_random_traffic(m, 400, 4, rng);
  for (const auto& d : traffic) m.inject(d);
  ASSERT_TRUE(m.run_until_drained(500000));
  EXPECT_EQ(m.activity().ejected_packets, traffic.size());
  EXPECT_EQ(m.activity().injected_flits, m.activity().ejected_flits);
  // In-order delivery per packet even when packets interleave on links.
  std::map<PacketId, std::uint32_t> next_seq;
  for (NodeId n = 0; n < m.nodes(); ++n) {
    for (const auto& f : sinks[n].log()) {
      EXPECT_EQ(f.seq, next_seq[f.packet]++);
    }
  }
}

TEST_P(VcSweep, HotspotGatherCompletes) {
  Mesh m(cfg(4, GetParam()));
  const auto traffic = transpose_writeback_traffic(m, 0, 32, 8);
  for (const auto& d : traffic) m.inject(d);
  ASSERT_TRUE(m.run_until_drained(500000));
  EXPECT_EQ(m.activity().ejected_packets, traffic.size());
}

INSTANTIATE_TEST_SUITE_P(Channels, VcSweep, ::testing::Values(1, 2, 4, 8));

TEST(MeshVc, PacketsNeverInterleaveAtASink) {
  // Even with many VCs, the eject lock keeps packet delivery atomic —
  // memory interfaces depend on head..tail arriving contiguously.
  Mesh m(cfg(3, 4));
  ConsumeSink sink;
  sink.keep_log(true);
  m.set_sink(m.node_at(2, 2), &sink);
  for (int i = 0; i < 6; ++i) {
    PacketDesc d;
    d.src = m.node_at(static_cast<std::uint32_t>(i % 3), 0);
    d.dst = m.node_at(2, 2);
    d.payload_flits = 5;
    m.inject(d);
  }
  ASSERT_TRUE(m.run_until_drained(100000));
  PacketId current = 0;
  bool in_packet = false;
  for (const auto& f : sink.log()) {
    if (!in_packet) {
      EXPECT_TRUE(f.is_head());
      current = f.packet;
      in_packet = !f.is_tail();
    } else {
      EXPECT_EQ(f.packet, current) << "flit interleaving at sink";
      if (f.is_tail()) in_packet = false;
    }
  }
}

TEST(MeshVc, VcsRelieveHeadOfLineBlocking) {
  // Classic HoL scenario: a long packet to a STALLED destination shares an
  // input with traffic to a free destination. With 1 VC the victim waits
  // behind the blocked packet; with 2+ VCs it flows around it.
  class NeverSink final : public Sink {
   public:
    bool accept(const Flit&, std::int64_t) override { return false; }
  };

  auto run = [](std::uint32_t vc) {
    Mesh m(cfg(4, vc));
    NeverSink blocked;
    m.set_sink(m.node_at(3, 0), &blocked);  // victim's neighbour stalls
    ConsumeSink open;
    m.set_sink(m.node_at(3, 1), &open);

    // Both packets from (0,0), same first hops eastward (XY routing):
    // packet A (long) to the stalled node, then packet B to the open node.
    PacketDesc a;
    a.src = m.node_at(0, 0);
    a.dst = m.node_at(3, 0);
    a.payload_flits = 16;
    m.inject(a);
    PacketDesc b;
    b.src = m.node_at(0, 0);
    b.dst = m.node_at(3, 1);
    b.payload_flits = 4;
    m.inject(b);

    std::int64_t b_done = -1;
    for (int cycle = 0; cycle < 4000 && b_done < 0; ++cycle) {
      m.step();
      if (open.packets() == 1) b_done = m.cycle();
    }
    return b_done;
  };

  const auto with1 = run(1);
  const auto with2 = run(2);
  EXPECT_EQ(with1, -1) << "with one VC the victim stays blocked forever";
  EXPECT_GT(with2, 0) << "a second VC lets the victim route around";
}

TEST(MeshVc, MoreVcsHelpUniformThroughputUnderLoad) {
  // Saturating uniform-random traffic drains at least as fast with VCs.
  std::int64_t cycles[2];
  int idx = 0;
  for (std::uint32_t vc : {1u, 4u}) {
    Mesh m(cfg(4, vc));
    Rng rng(5);
    const auto traffic = uniform_random_traffic(m, 800, 6, rng);
    for (const auto& d : traffic) m.inject(d);
    EXPECT_TRUE(m.run_until_drained(2000000));
    cycles[idx++] = m.cycle();
  }
  EXPECT_LE(cycles[1], cycles[0]);
}

TEST(MeshVc, InvalidVcCountRejected) {
  EXPECT_THROW(Mesh(cfg(2, 0)), SimulationError);
  EXPECT_THROW(Mesh(cfg(2, 17)), SimulationError);
}

}  // namespace
}  // namespace psync::mesh
