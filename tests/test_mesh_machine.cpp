#include "psync/core/mesh_machine.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/core/psync_machine.hpp"

namespace psync::core {
namespace {

std::vector<std::complex<double>> random_matrix(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> m(n);
  for (auto& v : m) {
    v = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return m;
}

MeshMachineParams small_params(std::size_t grid, std::size_t rows,
                               std::size_t cols) {
  MeshMachineParams p;
  p.grid = grid;
  p.matrix_rows = rows;
  p.matrix_cols = cols;
  p.elements_per_packet = 8;
  p.mi.dram.row_switch_cycles = 0;
  return p;
}

TEST(MeshMachine, FullFlowNumericallyCorrect) {
  MeshMachine m(small_params(2, 16, 16));
  const auto rep = m.run_fft2d(random_matrix(256, 1));
  EXPECT_LT(rep.max_error_vs_reference, 1e-4);
  EXPECT_GT(rep.total_ns, 0.0);
  ASSERT_EQ(rep.phases.size(), 6u);
  EXPECT_EQ(rep.phases[2].name, "mesh_transpose");
}

TEST(MeshMachine, LargerGridStillCorrect) {
  MeshMachine m(small_params(4, 32, 32));
  const auto rep = m.run_fft2d(random_matrix(1024, 2));
  EXPECT_LT(rep.max_error_vs_reference, 1e-4);
}

TEST(MeshMachine, TransposeWritebackCountsAllElements) {
  MeshMachine m(small_params(4, 64, 64));
  const auto rep = m.run_transpose_writeback(64);
  EXPECT_EQ(rep.elements, 16u * 64u);
  EXPECT_EQ(rep.packets, 16u * 8u);
  EXPECT_GT(rep.completion_cycle, 0);
  // The memory port serializes: completion >= elements * stage cost / ~1.
  EXPECT_GE(rep.cycles_per_element, 1.0);
}

TEST(MeshMachine, TransposeSlowerWithHigherReorderPenalty) {
  auto p1 = small_params(4, 64, 64);
  p1.mi.reorder_cycles_per_element = 1;
  auto p4 = small_params(4, 64, 64);
  p4.mi.reorder_cycles_per_element = 4;
  MeshMachine m1(p1), m4(p4);
  const auto r1 = m1.run_transpose_writeback(64);
  const auto r4 = m4.run_transpose_writeback(64);
  EXPECT_GT(r4.completion_cycle, r1.completion_cycle);
  // t_p=4 adds ~3 extra cycles per element at the serialized interface.
  const double delta = r4.cycles_per_element - r1.cycles_per_element;
  EXPECT_NEAR(delta, 3.0, 0.5);
}

TEST(MeshMachine, StageModelMatchesSteadyState) {
  // Paper-shaped config at reduced scale: 32-element packets, t_p = 1.
  auto p = small_params(4, 64, 64);
  p.elements_per_packet = 32;
  p.mi.reorder_cycles_per_element = 1;
  MeshMachine m(p);
  const auto rep = m.run_transpose_writeback(256);
  // (33 eject + 32 reorder + 33 write) / 32 ~ 3.06 cycles/element plus
  // drain effects.
  EXPECT_GT(rep.cycles_per_element, 2.9);
  EXPECT_LT(rep.cycles_per_element, 3.7);
}

TEST(MeshMachine, MeshReorgCostsMoreThanPsyncSca) {
  // Same problem on both machines: the mesh's reorganization share must
  // exceed P-sync's (the paper's whole point).
  const auto input = random_matrix(32 * 32, 3);

  MeshMachineParams mp = small_params(4, 32, 32);
  MeshMachine mesh(mp);
  const auto mesh_rep = mesh.run_fft2d(input);

  PsyncMachineParams pp;
  pp.processors = 16;
  pp.matrix_rows = 32;
  pp.matrix_cols = 32;
  pp.head.dram.row_switch_cycles = 0;
  PsyncMachine ps(pp);
  const auto ps_rep = ps.run_fft2d(input);

  EXPECT_LT(ps_rep.max_error_vs_reference, 1e-4);
  EXPECT_LT(mesh_rep.max_error_vs_reference, 1e-4);
  EXPECT_GT(mesh_rep.reorg_ns, ps_rep.reorg_ns);
  EXPECT_LT(ps_rep.total_ns, mesh_rep.total_ns);
}

TEST(MeshMachine, InvalidConfigsRejected) {
  EXPECT_THROW(MeshMachine(small_params(3, 16, 16)), SimulationError);
  auto p = small_params(2, 16, 16);
  p.memory_node = 99;
  EXPECT_THROW(MeshMachine{p}, SimulationError);
}

TEST(MeshMachine, ResultsMatchPsyncMachineBitwiseAtFloat32) {
  // Both machines quantize through the same float32 transport; on the same
  // input their final images must agree to float32 rounding.
  const auto input = random_matrix(16 * 16, 4);
  MeshMachine mesh(small_params(2, 16, 16));
  mesh.run_fft2d(input, /*verify=*/false);

  PsyncMachineParams pp;
  pp.processors = 4;
  pp.matrix_rows = 16;
  pp.matrix_cols = 16;
  pp.head.dram.row_switch_cycles = 0;
  PsyncMachine ps(pp);
  ps.run_fft2d(input, /*verify=*/false);

  const auto a = mesh.result();
  const auto b = ps.result();
  ASSERT_EQ(a.size(), b.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_err = std::max(max_err, std::abs(a[i] - b[i]));
  }
  EXPECT_LT(max_err, 1e-3);
}

}  // namespace
}  // namespace psync::core
