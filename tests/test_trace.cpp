#include "psync/core/trace.hpp"

#include <gtest/gtest.h>

#include "psync/core/cp_compile.hpp"

namespace psync::core {
namespace {

struct Traced {
  PscanTopology topo;
  GatherResult gather;
  WaveTrace trace;
};

Traced make_trace() {
  Traced out;
  out.topo = straight_bus_topology(4, 8.0);
  ScaEngine engine(out.topo);
  const auto sched = compile_gather_interleaved(4, 2);
  std::vector<std::vector<Word>> data(4, std::vector<Word>(2, 0xCC));
  out.gather = engine.gather(sched, data);
  out.trace = trace_gather(
      engine, out.gather,
      {out.topo.node_pos_um[0], out.topo.node_pos_um[2], out.topo.terminus_um});
  return out;
}

TEST(Trace, TerminusProbeMatchesGatherArrivals) {
  const auto t = make_trace();
  const auto& at_term = t.trace.at_probe.back();
  ASSERT_EQ(at_term.size(), t.gather.stream.size());
  for (std::size_t i = 0; i < at_term.size(); ++i) {
    EXPECT_EQ(at_term[i].slot, t.gather.stream[i].slot);
    // The gather arrival includes the detector latch; the trace records the
    // passing edge at the same position/time base.
    EXPECT_EQ(at_term[i].at_ps, t.gather.stream[i].arrival_ps);
  }
}

TEST(Trace, UpstreamProbesSeeOnlyUpstreamSources) {
  const auto t = make_trace();
  // Probe 0 sits at node 0's tap: only node 0's energy passes it.
  for (const auto& s : t.trace.at_probe[0]) {
    EXPECT_EQ(s.source, 0);
  }
  // Probe 1 at node 2's tap sees nodes 0..2 but never node 3.
  bool saw_node2 = false;
  for (const auto& s : t.trace.at_probe[1]) {
    EXPECT_LE(s.source, 2);
    saw_node2 |= (s.source == 2);
  }
  EXPECT_TRUE(saw_node2);
}

TEST(Trace, SamplesSortedAndSpacedByWholeSlots) {
  const auto t = make_trace();
  for (const auto& samples : t.trace.at_probe) {
    for (std::size_t i = 1; i < samples.size(); ++i) {
      EXPECT_GE(samples[i].at_ps, samples[i - 1].at_ps);
      EXPECT_EQ((samples[i].at_ps - samples[i - 1].at_ps) %
                    t.trace.period_ps,
                0);
    }
  }
}

TEST(Trace, AsciiRenderContainsSlotTagsAndLabels) {
  const auto t = make_trace();
  const std::string art =
      render_ascii(t.trace, {"node0", "node2", "terminus"});
  EXPECT_NE(art.find("node0"), std::string::npos);
  EXPECT_NE(art.find("terminus"), std::string::npos);
  EXPECT_NE(art.find("s0"), std::string::npos);
  EXPECT_NE(art.find("s7"), std::string::npos);
  EXPECT_NE(art.find("time (ps)"), std::string::npos);
}

TEST(Trace, CsvHasOneRowPerSample) {
  const auto t = make_trace();
  const std::string csv = to_csv(t.trace);
  std::size_t rows = 0;
  for (char ch : csv) rows += (ch == '\n');
  std::size_t samples = 0;
  for (const auto& p : t.trace.at_probe) samples += p.size();
  EXPECT_EQ(rows, samples + 1);  // + header
  EXPECT_EQ(csv.rfind("probe_um,slot,source,time_ps", 0), 0u);
}

TEST(Trace, EmptyTraceRenders) {
  WaveTrace empty;
  empty.period_ps = 100;
  empty.probes_um = {1.0};
  empty.at_probe.resize(1);
  EXPECT_EQ(render_ascii(empty), "(empty trace)\n");
}

}  // namespace
}  // namespace psync::core
