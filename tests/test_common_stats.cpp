#include "psync/common/stats.hpp"

#include <gtest/gtest.h>

namespace psync {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    a.add(x);
    all.add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = i * 0.37 - 3.0;
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty right side: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // empty left side: adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps into bin 0
  h.add(42.0);   // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
}

TEST(Histogram, Quantile) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.01);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.01);
}

TEST(Histogram, ToStringRendersBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace psync
