#include "psync/fft/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"

namespace psync::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) {
    x = Complex(rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0);
  }
  return v;
}

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  auto sig = random_signal(n, 42 + n);
  const auto ref = naive_dft(sig);
  FftPlan plan(n);
  plan.forward(sig);
  EXPECT_LT(max_abs_diff(sig, ref), 1e-8 * static_cast<double>(n));
}

TEST_P(FftSizes, InverseRecoversInput) {
  const std::size_t n = GetParam();
  const auto orig = random_signal(n, 7 + n);
  auto sig = orig;
  FftPlan plan(n);
  plan.forward(sig);
  plan.inverse(sig);
  EXPECT_LT(max_abs_diff(sig, orig), 1e-10 * static_cast<double>(n));
}

TEST_P(FftSizes, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto sig = random_signal(n, 11 + n);
  double time_energy = 0.0;
  for (const auto& v : sig) time_energy += std::norm(v);
  FftPlan plan(n);
  plan.forward(sig);
  double freq_energy = 0.0;
  for (const auto& v : sig) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-9 * time_energy * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> sig(16, {0.0, 0.0});
  sig[0] = {1.0, 0.0};
  FftPlan plan(16);
  plan.forward(sig);
  for (const auto& v : sig) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  std::vector<Complex> sig(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(bin) *
                       static_cast<double>(i) / static_cast<double>(n);
    sig[i] = {std::cos(ang), std::sin(ang)};
  }
  FftPlan plan(n);
  plan.forward(sig);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == bin) {
      EXPECT_NEAR(std::abs(sig[i]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(sig[i]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, Linearity) {
  const std::size_t n = 128;
  auto a = random_signal(n, 1);
  auto b = random_signal(n, 2);
  std::vector<Complex> mix(n);
  for (std::size_t i = 0; i < n; ++i) mix[i] = 2.0 * a[i] + 3.0 * b[i];
  FftPlan plan(n);
  plan.forward(a);
  plan.forward(b);
  plan.forward(mix);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(mix[i] - (2.0 * a[i] + 3.0 * b[i])), 0.0, 1e-8);
  }
}

class BlockedFft
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BlockedFft, BlockedEqualsMonolithic) {
  const auto [n, k] = GetParam();
  auto blocked = random_signal(n, n * 31 + k);
  auto mono = blocked;
  FftPlan plan(n);
  plan.forward_blocked(blocked, k);
  plan.forward(mono);
  EXPECT_LT(max_abs_diff(blocked, mono), 1e-12 * static_cast<double>(n));
}

TEST_P(BlockedFft, OpCountsMatchPaperEquations) {
  const auto [n, k] = GetParam();
  auto sig = random_signal(n, 5);
  FftPlan plan(n);
  std::vector<OpCount> block_ops;
  const OpCount final_ops = plan.forward_blocked(sig, k, &block_ops);
  ASSERT_EQ(block_ops.size(), k);
  for (const auto& ops : block_ops) {
    EXPECT_EQ(ops.real_mults, block_phase_mults(n, k));  // Eq. 17
  }
  EXPECT_EQ(final_ops.real_mults, final_phase_mults(n, k));  // Eq. 18
  // Total equals the monolithic count.
  std::uint64_t total = final_ops.real_mults;
  for (const auto& ops : block_ops) total += ops.real_mults;
  EXPECT_EQ(total, full_fft_mults(n));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBlocks, BlockedFft,
    ::testing::Values(std::pair<std::size_t, std::size_t>{64, 1},
                      std::pair<std::size_t, std::size_t>{64, 2},
                      std::pair<std::size_t, std::size_t>{64, 8},
                      std::pair<std::size_t, std::size_t>{256, 4},
                      std::pair<std::size_t, std::size_t>{1024, 16},
                      std::pair<std::size_t, std::size_t>{1024, 64}));

TEST(Fft, PaperTable1ComputeTimes) {
  // Table I cross-check against real op counts: k=1 -> 20480 mults -> 40960
  // ns at 2 ns per multiply; k=2 -> 9216 per block, 2048 final.
  EXPECT_EQ(full_fft_mults(1024), 20480u);
  EXPECT_EQ(block_phase_mults(1024, 2), 9216u);
  EXPECT_EQ(final_phase_mults(1024, 2), 4096u / 2);
  EXPECT_EQ(block_phase_mults(1024, 64), 128u);
  EXPECT_EQ(final_phase_mults(1024, 64), 12288u);
}

TEST(Fft, OpCountAccumulation) {
  OpCount a{1, 4, 6};
  OpCount b{2, 8, 12};
  a += b;
  EXPECT_EQ(a.butterflies, 3u);
  EXPECT_EQ(a.real_mults, 12u);
  EXPECT_EQ(a.real_adds, 18u);
}

TEST(Fft, BitReversalIsInvolution) {
  FftPlan plan(256);
  auto sig = random_signal(256, 3);
  const auto orig = sig;
  plan.bit_reverse(sig);
  EXPECT_GT(max_abs_diff(sig, orig), 0.0);
  plan.bit_reverse(sig);
  EXPECT_EQ(max_abs_diff(sig, orig), 0.0);
}

TEST(Fft, BitReversedIndexConsistent) {
  FftPlan plan(16);
  for (std::size_t i = 0; i < 16; ++i) {
    const std::size_t r = plan.bit_reversed_index(i);
    EXPECT_EQ(plan.bit_reversed_index(r), i);
  }
  EXPECT_EQ(plan.bit_reversed_index(1), 8u);
  EXPECT_EQ(plan.bit_reversed_index(3), 12u);
}

TEST(Fft, NonPowerOfTwoRejected) {
  EXPECT_THROW(FftPlan(12), SimulationError);
  EXPECT_THROW(FftPlan(0), SimulationError);
}

TEST(Fft, RunStagesRejectsOversizedSpanInBlock) {
  FftPlan plan(16);
  std::vector<Complex> sig(16);
  // Stage 3 has span 16 > block size 4.
  EXPECT_DEATH((void)plan.run_stages(sig, 3, 4, 0, 4), "span exceeds");
}

TEST(Fft, NaiveIdftInvertsNaiveDft) {
  auto sig = random_signal(32, 77);
  const auto freq = naive_dft(sig);
  const auto back = naive_idft(freq);
  EXPECT_LT(max_abs_diff(back, sig), 1e-10);
}

}  // namespace
}  // namespace psync::fft
