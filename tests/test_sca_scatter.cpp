#include "psync/core/sca.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync::core {
namespace {

std::vector<Word> iota_burst(std::size_t n) {
  std::vector<Word> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = 1000 + i;
  return b;
}

TEST(ScaScatter, BlockScatterDeliversContiguousRanges) {
  ScaEngine engine(straight_bus_topology(4, 8.0));
  const auto sched = compile_scatter_blocks(4, 8);
  const auto r = engine.scatter(sched, iota_burst(32));
  ASSERT_EQ(r.received.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(r.received[i].size(), 8u);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(r.received[i][j], 1000 + i * 8 + j);
    }
  }
  EXPECT_TRUE(r.unclaimed_slots.empty());
}

TEST(ScaScatter, InterleavedScatterDealsRoundRobin) {
  ScaEngine engine(straight_bus_topology(4, 8.0));
  const auto sched = compile_scatter_interleaved(4, 4);
  const auto r = engine.scatter(sched, iota_burst(16));
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(r.received[i][j], 1000 + j * 4 + i);
    }
  }
}

TEST(ScaScatter, DeliveryTimesFollowNodePositionAndSlot) {
  ScaEngine engine(straight_bus_topology(3, 9.0));
  const auto sched = compile_scatter_blocks(3, 2);
  const auto r = engine.scatter(sched, iota_burst(6));
  for (const auto& d : r.deliveries) {
    const auto node = static_cast<std::size_t>(d.node);
    EXPECT_EQ(d.arrival_ps,
              engine.clock().perceived_edge_ps(
                  engine.topology().node_pos_um[node], d.slot));
  }
  // Later slots to the same node arrive strictly later.
  for (std::size_t i = 1; i < r.deliveries.size(); ++i) {
    if (r.deliveries[i].node == r.deliveries[i - 1].node) {
      EXPECT_GT(r.deliveries[i].arrival_ps, r.deliveries[i - 1].arrival_ps);
    }
  }
}

TEST(ScaScatter, UnclaimedSlotsDetected) {
  ScaEngine engine(straight_bus_topology(2, 8.0));
  CpSchedule sched;
  sched.total_slots = 8;
  sched.node_cps.resize(2);
  sched.node_cps[0].add(CpStride{0, 2, 2, 1, CpAction::kListen});
  sched.node_cps[1].add(CpStride{4, 2, 2, 1, CpAction::kListen});
  // Slots 2, 3, 6, 7 unclaimed.
  EXPECT_THROW((void)engine.scatter(sched, iota_burst(8)), SimulationError);
  const auto r = engine.scatter(sched, iota_burst(8), /*strict=*/false);
  EXPECT_EQ(r.unclaimed_slots.size(), 4u);
}

TEST(ScaScatter, DoubleClaimRejected) {
  ScaEngine engine(straight_bus_topology(2, 8.0));
  CpSchedule sched;
  sched.total_slots = 4;
  sched.node_cps.resize(2);
  sched.node_cps[0].add(CpStride{0, 3, 3, 1, CpAction::kListen});
  sched.node_cps[1].add(CpStride{2, 2, 2, 1, CpAction::kListen});
  EXPECT_THROW((void)engine.scatter(sched, iota_burst(4), false),
               SimulationError);
}

TEST(ScaScatter, ListenBeyondBurstRejected) {
  ScaEngine engine(straight_bus_topology(2, 8.0));
  const auto sched = compile_scatter_blocks(2, 8);  // 16 slots
  EXPECT_THROW((void)engine.scatter(sched, iota_burst(8)), SimulationError);
}

// Scatter followed by the mirrored gather is the identity: the paper's
// SCA^-1 then SCA round trip (load, compute nothing, write back).
TEST(ScaScatter, ScatterGatherRoundTripIsIdentity) {
  ScaEngine engine(straight_bus_topology(8, 12.0));
  const auto burst = iota_burst(64);
  const auto sc = engine.scatter(compile_scatter_interleaved(8, 8), burst);
  const auto g =
      engine.gather(compile_gather_interleaved(8, 8), sc.received);
  EXPECT_EQ(g.words(), burst);
  EXPECT_TRUE(g.gap_free);
}

TEST(ScaScatter, BlockRoundTripIsIdentityToo) {
  ScaEngine engine(straight_bus_topology(4, 8.0));
  const auto burst = iota_burst(32);
  const auto sc = engine.scatter(compile_scatter_blocks(4, 8), burst);
  const auto g = engine.gather(compile_gather_blocks(4, 8), sc.received);
  EXPECT_EQ(g.words(), burst);
}

TEST(ScaScatter, CrossPatternRoundTripTransposes) {
  // Scatter by blocks, gather interleaved: the round trip applies the
  // transpose permutation — the machine-level mechanism of Section V-C.
  const std::size_t p = 4, e = 4;
  ScaEngine engine(straight_bus_topology(p, 8.0));
  const auto burst = iota_burst(p * e);
  const auto sc = engine.scatter(compile_scatter_blocks(p, e), burst);
  const auto g = engine.gather(compile_gather_interleaved(p, e), sc.received);
  const auto words = g.words();
  // words[c*P + r] == burst[r*E + c]: a P x E matrix transpose.
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t c = 0; c < e; ++c) {
      EXPECT_EQ(words[c * p + r], burst[r * e + c]);
    }
  }
}

TEST(ScaScatter, SpanAccountsForBusTraversal) {
  ScaEngine engine(straight_bus_topology(4, 8.0));
  const auto sched = compile_scatter_blocks(4, 8);
  const auto r = engine.scatter(sched, iota_burst(32));
  EXPECT_GE(r.span_ps, 32 * engine.clock().period_ps() / 2);
}

}  // namespace
}  // namespace psync::core
