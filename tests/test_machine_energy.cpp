// End-to-end energy accounting across the machine simulators (extension
// experiment grounded in the paper's Fig. 5 models).
#include <gtest/gtest.h>

#include "psync/common/rng.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/core/psync_machine.hpp"

namespace psync::core {
namespace {

std::vector<std::complex<double>> random_matrix(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> m(n);
  for (auto& v : m) {
    v = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return m;
}

TEST(MachineEnergy, PsyncReportsPositiveBreakdown) {
  PsyncMachineParams p;
  p.processors = 8;
  p.matrix_rows = 32;
  p.matrix_cols = 32;
  p.head.dram.row_switch_cycles = 0;
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(1024, 1), false);
  EXPECT_GT(rep.comm_energy_pj, 0.0);
  EXPECT_GT(rep.compute_energy_pj, 0.0);
  EXPECT_GT(rep.pj_per_flop(), 0.0);
  // Sanity scale: FFT compute is ~mults * 20 pJ.
  EXPECT_NEAR(rep.compute_energy_pj,
              static_cast<double>(rep.flops) * 20.0 * 0.4 /* mult share */,
              rep.compute_energy_pj * 0.8);
}

TEST(MachineEnergy, PsyncCommEnergyScalesWithWordsMoved) {
  PsyncMachineParams p;
  p.processors = 8;
  p.matrix_rows = 32;
  p.matrix_cols = 32;
  p.head.dram.row_switch_cycles = 0;
  PsyncMachine small(p);
  const auto a = small.run_fft2d(random_matrix(1024, 2), false);
  p.matrix_cols = 64;
  PsyncMachine big(p);
  const auto b = big.run_fft2d(random_matrix(2048, 3), false);
  EXPECT_NEAR(b.comm_energy_pj / a.comm_energy_pj, 2.0, 0.05);
}

TEST(MachineEnergy, MeshReportsActivityBasedEnergy) {
  MeshMachineParams p;
  p.grid = 2;
  p.matrix_rows = 16;
  p.matrix_cols = 16;
  p.elements_per_packet = 8;
  p.mi.dram.row_switch_cycles = 0;
  MeshMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(256, 4), false);
  EXPECT_GT(rep.comm_energy_pj, 0.0);
  EXPECT_GT(rep.compute_energy_pj, 0.0);
}

TEST(MachineEnergy, PsyncTransportCheaperThanMeshAtSameWorkload) {
  // The Fig. 5 result carried through to the full application: the same 2D
  // FFT moves the same words, but the mesh pays per-hop buffer/crossbar/
  // link energy while the PSCAN pays a near-flat per-bit cost.
  const auto input = random_matrix(32 * 32, 5);

  PsyncMachineParams pp;
  pp.processors = 16;
  pp.matrix_rows = 32;
  pp.matrix_cols = 32;
  pp.head.dram.row_switch_cycles = 0;
  PsyncMachine psm(pp);
  const auto pr = psm.run_fft2d(input, false);

  MeshMachineParams mp;
  mp.grid = 4;
  mp.matrix_rows = 32;
  mp.matrix_cols = 32;
  mp.elements_per_packet = 8;
  mp.mi.dram.row_switch_cycles = 0;
  MeshMachine msm(mp);
  const auto mr = msm.run_fft2d(input, false);

  EXPECT_GT(mr.comm_energy_pj, 2.0 * pr.comm_energy_pj);
  // Compute energy is identical work on identical execution units.
  EXPECT_NEAR(mr.compute_energy_pj, pr.compute_energy_pj,
              pr.compute_energy_pj * 0.01);
}

}  // namespace
}  // namespace psync::core
