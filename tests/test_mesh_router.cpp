#include "psync/mesh/mesh.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/mesh/traffic.hpp"

namespace psync::mesh {
namespace {

MeshParams small(std::uint32_t dim = 4) {
  MeshParams p;
  p.width = dim;
  p.height = dim;
  p.buffer_depth = 2;
  p.route_delay = 1;
  return p;
}

TEST(Mesh, GeometryHelpers) {
  Mesh m(small(4));
  EXPECT_EQ(m.nodes(), 16u);
  EXPECT_EQ(m.node_at(3, 2), 11u);
  EXPECT_EQ(m.x_of(11), 3u);
  EXPECT_EQ(m.y_of(11), 2u);
  EXPECT_EQ(m.manhattan(m.node_at(0, 0), m.node_at(3, 2)), 5u);
}

TEST(Mesh, SingleFlitPacketDelivered) {
  Mesh m(small());
  ConsumeSink sink;
  sink.keep_log(true);
  m.set_sink(m.node_at(3, 3), &sink);

  PacketDesc d;
  d.src = m.node_at(0, 0);
  d.dst = m.node_at(3, 3);
  d.payload_flits = 0;  // head-tail only
  m.inject(d);
  ASSERT_TRUE(m.run_until_drained(1000));
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(sink.flits(), 1u);
}

TEST(Mesh, LatencyLowerBoundHopsPlusRouting) {
  // Head flit pays (1 link + t_r) per hop; latency >= hops * (1 + t_r).
  Mesh m(small());
  PacketDesc d;
  d.src = m.node_at(0, 0);
  d.dst = m.node_at(3, 3);
  d.payload_flits = 4;
  m.inject(d);
  ASSERT_TRUE(m.run_until_drained(1000));
  const auto hops = m.manhattan(d.src, d.dst);
  // Tail trails head by payload_flits cycles once the path is set up.
  const double expected_min = hops * 2.0 + 4.0;
  EXPECT_GE(m.packet_latency().mean(), expected_min);
  // And in an empty network it should be close to the bound.
  EXPECT_LE(m.packet_latency().mean(), expected_min + 6.0);
}

TEST(Mesh, ZeroRouteDelayIsFaster) {
  auto p = small();
  p.route_delay = 0;
  Mesh fast(p);
  p.route_delay = 3;
  Mesh slow(p);
  for (Mesh* m : {&fast, &slow}) {
    PacketDesc d;
    d.src = m->node_at(0, 0);
    d.dst = m->node_at(3, 0);
    d.payload_flits = 2;
    m->inject(d);
    ASSERT_TRUE(m->run_until_drained(1000));
  }
  // Every router on the path (source, 2 intermediate, destination) charges
  // t_r for the header: 4 routers * (3 - 0) = 12 extra cycles.
  EXPECT_NEAR(slow.packet_latency().mean() - fast.packet_latency().mean(),
              12.0, 1e-9);
}

TEST(Mesh, AllPacketsDeliveredExactlyOnceUniformRandom) {
  Mesh m(small(4));
  std::vector<ConsumeSink> sinks(m.nodes());
  for (NodeId n = 0; n < m.nodes(); ++n) {
    sinks[n].keep_log(true);
    m.set_sink(n, &sinks[n]);
  }
  Rng rng(99);
  const auto traffic = uniform_random_traffic(m, 200, 3, rng);
  for (const auto& d : traffic) m.inject(d);
  ASSERT_TRUE(m.run_until_drained(100000));

  // Each packet's payload words appear exactly once, at the right node.
  std::map<std::uint64_t, int> seen;
  for (NodeId n = 0; n < m.nodes(); ++n) {
    for (const auto& f : sinks[n].log()) {
      if (f.is_head() && !f.is_tail()) continue;
      EXPECT_EQ(f.dst, n) << "flit ejected at wrong node";
      ++seen[f.payload ^ (static_cast<std::uint64_t>(f.packet) << 40)];
    }
  }
  std::uint64_t total = 0;
  for (const auto& [k, v] : seen) {
    EXPECT_EQ(v, 1);
    total += static_cast<std::uint64_t>(v);
  }
  EXPECT_EQ(total, 200u * 3u);
  EXPECT_EQ(m.activity().ejected_packets, 200u);
  EXPECT_EQ(m.activity().injected_flits, m.activity().ejected_flits);
}

TEST(Mesh, WormholeFlitsStayInOrder) {
  Mesh m(small());
  ConsumeSink sink;
  sink.keep_log(true);
  m.set_sink(m.node_at(2, 2), &sink);
  PacketDesc d;
  d.src = m.node_at(1, 0);
  d.dst = m.node_at(2, 2);
  d.payload_flits = 8;
  d.payload_base = 1000;
  m.inject(d);
  ASSERT_TRUE(m.run_until_drained(1000));
  ASSERT_EQ(sink.log().size(), 9u);
  for (std::uint32_t i = 0; i < 9; ++i) {
    EXPECT_EQ(sink.log()[i].seq, i);
  }
  for (std::uint32_t i = 1; i < 9; ++i) {
    EXPECT_EQ(sink.log()[i].payload, 1000u + i - 1);
  }
}

TEST(Mesh, PacketsFromSameSourceDoNotInterleaveOnALink) {
  // Two packets from the same source to the same sink must eject strictly
  // packet-after-packet (wormhole holds the path until the tail).
  Mesh m(small());
  ConsumeSink sink;
  sink.keep_log(true);
  m.set_sink(m.node_at(3, 1), &sink);
  for (int i = 0; i < 2; ++i) {
    PacketDesc d;
    d.src = m.node_at(0, 1);
    d.dst = m.node_at(3, 1);
    d.payload_flits = 5;
    m.inject(d);
  }
  ASSERT_TRUE(m.run_until_drained(1000));
  ASSERT_EQ(sink.log().size(), 12u);
  // First 6 flits all belong to one packet, next 6 to the other.
  const PacketId first = sink.log()[0].packet;
  for (int i = 0; i < 6; ++i) EXPECT_EQ(sink.log()[static_cast<size_t>(i)].packet, first);
  const PacketId second = sink.log()[6].packet;
  EXPECT_NE(first, second);
  for (int i = 6; i < 12; ++i) EXPECT_EQ(sink.log()[static_cast<size_t>(i)].packet, second);
}

TEST(Mesh, BackpressureFromSlowSink) {
  // A sink that accepts nothing for a while forces the network to hold
  // flits without losing any.
  class StallSink final : public Sink {
   public:
    bool accept(const Flit&, std::int64_t cycle) override {
      return cycle >= 200 && (++accepted_, true);
    }
    int accepted_ = 0;
  };
  Mesh m(small());
  StallSink sink;
  m.set_sink(m.node_at(3, 3), &sink);
  for (int i = 0; i < 4; ++i) {
    PacketDesc d;
    d.src = m.node_at(0, 0);
    d.dst = m.node_at(3, 3);
    d.payload_flits = 6;
    m.inject(d);
  }
  ASSERT_TRUE(m.run_until_drained(2000));
  EXPECT_EQ(sink.accepted_, 4 * 7);
  EXPECT_EQ(m.activity().injected_flits, m.activity().ejected_flits);
}

TEST(Mesh, ReleaseCycleHonored) {
  Mesh m(small());
  PacketDesc d;
  d.src = m.node_at(0, 0);
  d.dst = m.node_at(1, 0);
  d.payload_flits = 1;
  d.release_cycle = 100;
  m.inject(d);
  m.step();
  EXPECT_EQ(m.in_flight_flits(), 0u);  // nothing injected yet
  ASSERT_TRUE(m.run_until_drained(500));
  // Head could not have been injected before cycle 100.
  EXPECT_GE(m.cycle(), 100);
}

TEST(Mesh, AdaptiveRoutingDeliversEverything) {
  auto p = small(4);
  p.algo = RouteAlgo::kWestFirstAdaptive;
  Mesh m(p);
  Rng rng(7);
  const auto traffic = uniform_random_traffic(m, 300, 4, rng);
  for (const auto& d : traffic) m.inject(d);
  ASSERT_TRUE(m.run_until_drained(200000));
  EXPECT_EQ(m.activity().ejected_packets, 300u);
}

TEST(Mesh, AdaptiveNoWorseThanXYOnHotspot) {
  // Gather to one corner: adaptivity cannot beat the port bottleneck but
  // must not deadlock or lose packets.
  for (auto algo : {RouteAlgo::kXY, RouteAlgo::kWestFirstAdaptive}) {
    auto p = small(4);
    p.algo = algo;
    Mesh m(p);
    const auto traffic = transpose_writeback_traffic(m, 0, 16, 4);
    for (const auto& d : traffic) m.inject(d);
    ASSERT_TRUE(m.run_until_drained(100000));
    EXPECT_EQ(m.activity().ejected_packets, traffic.size());
  }
}

TEST(Mesh, ThroughputSaturatesAtOneFlitPerCycleAtSink) {
  // With many senders to one sink, the ejection port is the bottleneck:
  // completion >= total flits.
  Mesh m(small(4));
  const auto traffic = transpose_writeback_traffic(m, 0, 32, 8);
  std::uint64_t total_flits = 0;
  for (const auto& d : traffic) {
    total_flits += d.payload_flits + 1;
    m.inject(d);
  }
  ASSERT_TRUE(m.run_until_drained(1000000));
  EXPECT_GE(static_cast<std::uint64_t>(m.cycle()), total_flits);
}

TEST(Mesh, InvalidConfigRejected) {
  MeshParams p;
  p.width = 0;
  EXPECT_THROW(Mesh{p}, SimulationError);
  MeshParams q;
  q.buffer_depth = 0;
  EXPECT_THROW(Mesh{q}, SimulationError);
}

TEST(Mesh, DeepBuffersReduceCompletionTimeUnderContention) {
  auto shallow = small(4);
  shallow.buffer_depth = 1;
  auto deep = small(4);
  deep.buffer_depth = 8;
  std::int64_t cycles_shallow = 0, cycles_deep = 0;
  for (auto* cfg : {&shallow, &deep}) {
    Mesh m(*cfg);
    const auto traffic = transpose_writeback_traffic(m, 0, 32, 8);
    for (const auto& d : traffic) m.inject(d);
    ASSERT_TRUE(m.run_until_drained(1000000));
    (cfg == &shallow ? cycles_shallow : cycles_deep) = m.cycle();
  }
  EXPECT_LE(cycles_deep, cycles_shallow);
}

}  // namespace
}  // namespace psync::mesh
