// Unit tests for the reliability layer: SECDED(72,64), CRC-32, block
// framing, and the ProtectedChannel policies.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/reliability/channel.hpp"
#include "psync/reliability/crc32.hpp"
#include "psync/reliability/fault_model.hpp"
#include "psync/reliability/framing.hpp"
#include "psync/reliability/secded.hpp"

namespace psync::reliability {
namespace {

TEST(Secded, CleanRoundTrip) {
  for (std::uint64_t w :
       {0ULL, 1ULL, 0xFFFFFFFFFFFFFFFFULL, 0xDEADBEEFCAFEF00DULL}) {
    const auto check = secded_encode(w);
    const auto r = secded_decode(w, check);
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.data, w);
  }
}

TEST(Secded, EverySingleDataBitCorrected) {
  const std::uint64_t w = 0x0123456789ABCDEFULL;
  const auto check = secded_encode(w);
  for (int bit = 0; bit < 64; ++bit) {
    const auto r = secded_decode(w ^ (1ULL << bit), check);
    EXPECT_EQ(r.status, SecdedStatus::kCorrectedData) << "bit " << bit;
    EXPECT_EQ(r.data, w) << "bit " << bit;
    EXPECT_EQ(r.corrected_bit, bit);
  }
}

TEST(Secded, EverySingleCheckBitCorrected) {
  const std::uint64_t w = 0x0123456789ABCDEFULL;
  const auto check = secded_encode(w);
  for (int bit = 0; bit < 8; ++bit) {
    const auto r = secded_decode(
        w, static_cast<std::uint8_t>(check ^ (1U << bit)));
    EXPECT_EQ(r.status, SecdedStatus::kCorrectedCheck) << "check bit " << bit;
    EXPECT_EQ(r.data, w) << "check bit " << bit;
  }
}

TEST(Secded, DoubleDataErrorsDetected) {
  const std::uint64_t w = 0xA5A5A5A5A5A5A5A5ULL;
  const auto check = secded_encode(w);
  for (int a = 0; a < 64; a += 7) {
    for (int b = a + 1; b < 64; b += 11) {
      const auto r = secded_decode(w ^ (1ULL << a) ^ (1ULL << b), check);
      EXPECT_EQ(r.status, SecdedStatus::kDoubleError)
          << "bits " << a << "," << b;
    }
  }
}

TEST(Secded, DataPlusCheckErrorDetected) {
  const std::uint64_t w = 0x00FF00FF00FF00FFULL;
  const auto check = secded_encode(w);
  const auto r =
      secded_decode(w ^ (1ULL << 13), static_cast<std::uint8_t>(check ^ 0x04));
  EXPECT_EQ(r.status, SecdedStatus::kDoubleError);
}

TEST(Crc32, KnownVector) {
  // The standard IEEE CRC-32 check value for the ASCII digits "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926U);
}

TEST(Crc32, WordsMatchByteFold) {
  const std::vector<std::uint64_t> words = {0x0807060504030201ULL,
                                            0x100F0E0D0C0B0A09ULL};
  const std::uint8_t bytes[16] = {1, 2,  3,  4,  5,  6,  7,  8,
                                  9, 10, 11, 12, 13, 14, 15, 16};
  EXPECT_EQ(crc32_words(words.data(), words.size()), crc32(bytes, 16));
}

TEST(Crc32, DetectsSingleBitChange) {
  std::vector<std::uint64_t> words(32);
  std::iota(words.begin(), words.end(), 0x1000);
  const auto ref = crc32_words(words.data(), words.size());
  words[17] ^= 1ULL << 42;
  EXPECT_NE(crc32_words(words.data(), words.size()), ref);
}

std::vector<std::uint64_t> ramp(std::size_t n) {
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 0x1111111111111111ULL * (i % 7);
  return v;
}

TEST(Framing, SlotAccounting) {
  // 64 payload words -> 64 + 1 CRC + ceil(65/8)=9 check words.
  EXPECT_EQ(coded_block_words(64), 74u);
  // Short tail block: 5 payload -> 5 + 1 + 1.
  EXPECT_EQ(coded_block_words(5), 7u);
  EXPECT_EQ(coded_stream_words(64 + 5, 64), 74u + 7u);
  EXPECT_EQ(coded_stream_words(0, 64), 0u);
}

TEST(Framing, CleanRoundTrip) {
  const auto payload = ramp(64);
  std::vector<std::uint64_t> wire;
  encode_block(payload.data(), payload.size(), &wire);
  ASSERT_EQ(wire.size(), coded_block_words(payload.size()));
  const auto dec = decode_block(wire.data(), payload.size(), true);
  EXPECT_TRUE(dec.good());
  EXPECT_EQ(dec.payload, payload);
  EXPECT_EQ(dec.corrected_bits, 0u);
  EXPECT_EQ(dec.flagged_words, 0u);
}

TEST(Framing, SingleBitPayloadFlipCorrected) {
  const auto payload = ramp(64);
  std::vector<std::uint64_t> wire;
  encode_block(payload.data(), payload.size(), &wire);
  wire[23] ^= 1ULL << 55;
  const auto dec = decode_block(wire.data(), payload.size(), true);
  EXPECT_TRUE(dec.good());
  EXPECT_EQ(dec.payload, payload);
  EXPECT_EQ(dec.corrected_bits, 1u);
}

TEST(Framing, CrcWordFlipCorrected) {
  const auto payload = ramp(16);
  std::vector<std::uint64_t> wire;
  encode_block(payload.data(), payload.size(), &wire);
  wire[16] ^= 1ULL << 3;  // the CRC word is SECDED-protected too
  const auto dec = decode_block(wire.data(), payload.size(), true);
  EXPECT_TRUE(dec.good());
  EXPECT_EQ(dec.payload, payload);
}

TEST(Framing, CheckWordFlipHarmless) {
  const auto payload = ramp(16);
  std::vector<std::uint64_t> wire;
  encode_block(payload.data(), payload.size(), &wire);
  wire.back() ^= 1ULL << 9;  // a check byte absorbs the hit
  const auto dec = decode_block(wire.data(), payload.size(), true);
  EXPECT_TRUE(dec.good());
  EXPECT_EQ(dec.payload, payload);
}

TEST(Framing, DoubleErrorFailsBlock) {
  const auto payload = ramp(32);
  std::vector<std::uint64_t> wire;
  encode_block(payload.data(), payload.size(), &wire);
  wire[7] ^= (1ULL << 2) | (1ULL << 61);
  const auto dec = decode_block(wire.data(), payload.size(), true);
  EXPECT_FALSE(dec.good());
  EXPECT_EQ(dec.double_errors, 1u);
}

TEST(Framing, DetectOnlyLeavesPayloadRaw) {
  const auto payload = ramp(32);
  std::vector<std::uint64_t> wire;
  encode_block(payload.data(), payload.size(), &wire);
  wire[4] ^= 1ULL << 17;
  const auto dec = decode_block(wire.data(), payload.size(), false);
  EXPECT_EQ(dec.payload[4], payload[4] ^ (1ULL << 17));
  EXPECT_GE(dec.flagged_words, 1u);
  EXPECT_FALSE(dec.crc_ok);
}

TEST(Policy, StringRoundTrip) {
  EXPECT_EQ(policy_from_string("off"), ReliabilityPolicy::kOff);
  EXPECT_EQ(policy_from_string("detect"), ReliabilityPolicy::kDetectOnly);
  EXPECT_EQ(policy_from_string("correct"), ReliabilityPolicy::kCorrectRetry);
  EXPECT_STREQ(to_string(ReliabilityPolicy::kCorrectRetry), "correct");
  EXPECT_THROW(policy_from_string("bogus"), SimulationError);
}

TEST(Policy, ParamsValidate) {
  ReliabilityParams p;
  p.block_words = 0;
  EXPECT_THROW(p.validate(), SimulationError);
}

FaultModel faulty(double ber, std::vector<std::uint32_t> dead = {},
                  std::uint64_t seed = 11) {
  FaultModel f;
  f.random_ber = ber;
  f.dead_wavelengths = std::move(dead);
  f.seed = seed;
  return f;
}

TEST(Channel, OffPolicyIsRawTransport) {
  ProtectedChannel ch(faulty(0.0), ReliabilityParams{});
  const auto payload = ramp(100);
  const auto tx = ch.transmit(payload);
  EXPECT_EQ(tx.words, payload);
  EXPECT_EQ(tx.overhead_slots(), 0u);
  EXPECT_EQ(tx.wire_slots, 100u);
  EXPECT_EQ(ch.calibration_slots(), 0u);
}

TEST(Channel, OffPolicyLetsFaultsThrough) {
  ProtectedChannel ch(faulty(0.0, {5}), ReliabilityParams{});
  const std::vector<std::uint64_t> payload(64, ~0ULL);
  const auto tx = ch.transmit(payload);
  for (const auto w : tx.words) EXPECT_EQ(w, ~0ULL & ~(1ULL << 5));
  EXPECT_EQ(tx.fault.bits_silenced, 64u);
  EXPECT_GT(tx.retry.residual_errors, 0u);
}

TEST(Channel, CorrectPolicyChargesFramingOverhead) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kCorrectRetry;
  p.block_words = 64;
  ProtectedChannel ch(faulty(0.0), p);
  const auto payload = ramp(128);
  const auto tx = ch.transmit(payload);
  EXPECT_EQ(tx.words, payload);
  EXPECT_EQ(tx.wire_slots, coded_stream_words(128, 64));
  EXPECT_EQ(tx.overhead_slots(), coded_stream_words(128, 64) - 128);
  EXPECT_EQ(tx.retry.blocks_total, 2u);
  EXPECT_EQ(tx.retry.residual_errors, 0u);
  EXPECT_EQ(ch.calibration_slots(), p.training_words);
}

TEST(Channel, CorrectPolicySurvivesModerateBer) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kCorrectRetry;
  ProtectedChannel ch(faulty(1e-4), p);
  const auto payload = ramp(4096);
  const auto tx = ch.transmit(payload);
  EXPECT_EQ(tx.words, payload);
  EXPECT_EQ(tx.retry.residual_errors, 0u);
  EXPECT_GT(tx.retry.corrected_bits + tx.retry.retries, 0u);
}

TEST(Channel, DetectOnlyCountsButDoesNotFix) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kDetectOnly;
  ProtectedChannel ch(faulty(1e-3), p);
  const auto payload = ramp(4096);
  const auto tx = ch.transmit(payload);
  EXPECT_GT(tx.retry.detected_errors, 0u);
  EXPECT_GT(tx.retry.residual_errors, 0u);  // delivered corrupted
  EXPECT_EQ(tx.retry.retries, 0u);
  EXPECT_NE(tx.words, payload);
  // Framing slots are still spent even though nothing is repaired.
  EXPECT_GT(tx.overhead_slots(), 0u);
}

TEST(Channel, DeadLanesFailOverToSpares) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kCorrectRetry;
  p.spare_lanes = 4;
  ProtectedChannel ch(faulty(0.0, {3, 57}), p);
  EXPECT_EQ(ch.lanes().dead_lanes, (std::vector<std::uint32_t>{3, 57}));
  EXPECT_EQ(ch.lanes().spares_used, 2u);
  EXPECT_EQ(ch.lanes().residual_dead, 0u);
  EXPECT_EQ(ch.lanes().slots_per_word, 1u);

  const std::vector<std::uint64_t> payload(256, ~0ULL);
  const auto tx = ch.transmit(payload);
  EXPECT_EQ(tx.words, payload);  // bit-exact despite two dead lanes
  EXPECT_EQ(tx.retry.residual_errors, 0u);
}

TEST(Channel, DegradesWhenSparesExhausted) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kCorrectRetry;
  p.spare_lanes = 1;
  ProtectedChannel ch(faulty(0.0, {0, 1, 2}), p);
  EXPECT_EQ(ch.lanes().spares_used, 1u);
  EXPECT_EQ(ch.lanes().residual_dead, 2u);
  EXPECT_TRUE(ch.lanes().degraded());
  // 62 usable lanes -> ceil(64/62) = 2 slots per word.
  EXPECT_EQ(ch.lanes().slots_per_word, 2u);

  const auto payload = ramp(64);
  const auto tx = ch.transmit(payload);
  EXPECT_EQ(tx.words, payload);  // slower, not wrong
  EXPECT_EQ(tx.retry.residual_errors, 0u);
  EXPECT_GE(tx.wire_slots, 2 * coded_stream_words(64, p.block_words));
}

TEST(Channel, DetectOnlyDoesNotRemapLanes) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kDetectOnly;
  ProtectedChannel ch(faulty(0.0, {9}), p);
  EXPECT_EQ(ch.lanes().dead_lanes, (std::vector<std::uint32_t>{9}));
  EXPECT_EQ(ch.lanes().spares_used, 0u);
  const std::vector<std::uint64_t> payload(64, ~0ULL);
  const auto tx = ch.transmit(payload);
  EXPECT_GT(tx.retry.residual_errors, 0u);
}

TEST(Channel, CollisionFlaggedBlocksReplayed) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kCorrectRetry;
  p.block_words = 32;
  ProtectedChannel ch(faulty(0.0), p);
  const auto payload = ramp(96);
  const std::vector<std::int64_t> flagged = {40};  // second block
  const auto tx = ch.transmit(payload, &flagged);
  EXPECT_EQ(tx.words, payload);
  EXPECT_EQ(tx.retry.blocks_retried, 1u);
  EXPECT_GE(tx.retry.retries, 1u);
  EXPECT_GT(tx.retry.slots_replayed, 0u);
  EXPECT_GT(tx.backoff_slots, 0u);
}

TEST(Channel, TransmissionsAreDeterministic) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kCorrectRetry;
  const auto payload = ramp(2048);
  ProtectedChannel a(faulty(1e-4, {7}, 99), p);
  ProtectedChannel b(faulty(1e-4, {7}, 99), p);
  const auto ta = a.transmit(payload);
  const auto tb = b.transmit(payload);
  EXPECT_EQ(ta.words, tb.words);
  EXPECT_EQ(ta.wire_slots, tb.wire_slots);
  EXPECT_EQ(ta.retry.retries, tb.retry.retries);
  EXPECT_EQ(ta.fault.bits_flipped, tb.fault.bits_flipped);
}

TEST(FaultStreamTest, MatchesLegacyApplyFaultMask) {
  const auto model = faulty(0.0, {1, 63});
  FaultStream stream(model);
  Rng rng(model.seed);
  FaultReport a, b;
  for (int i = 0; i < 100; ++i) {
    const auto w = 0xFFFFFFFFFFFFFFFFULL - static_cast<std::uint64_t>(i);
    EXPECT_EQ(stream.corrupt(w, &a), apply_fault(model, w, rng, &b));
  }
  EXPECT_EQ(a.bits_silenced, b.bits_silenced);
}

TEST(FaultStreamTest, GapSamplingMatchesExpectedRate) {
  const double ber = 1e-3;
  FaultStream stream(faulty(ber, {}, 5));
  FaultReport rep;
  const std::uint64_t words = 200000;
  for (std::uint64_t i = 0; i < words; ++i) stream.corrupt(0, &rep);
  const double expected = ber * static_cast<double>(words) * 64.0;
  EXPECT_NEAR(static_cast<double>(rep.bits_flipped), expected,
              5.0 * std::sqrt(expected));  // 5 sigma
}

TEST(FaultStreamTest, ValidationRejectsBadModels) {
  EXPECT_THROW(faulty(0.0, {64}).validate(), SimulationError);
  EXPECT_THROW(faulty(1.5).validate(), SimulationError);
  EXPECT_THROW(faulty(-0.1).validate(), SimulationError);
  EXPECT_NO_THROW(faulty(1e-9, {0, 63}).validate());
  // Time-varying profile fields validate too (and as ConfigError, so the
  // campaign taxonomy files them under config_invalid).
  FaultModel bad_drift = faulty(1e-9);
  bad_drift.drift_ber_per_mword = -1e-6;
  EXPECT_THROW(bad_drift.validate(), ConfigError);
  FaultModel bad_brownout = faulty(1e-9);
  bad_brownout.brownout_ber = 1.5;
  EXPECT_THROW(bad_brownout.validate(), ConfigError);
}

// --- time-varying BER profile (thermal drift + brownout) ---------------

FaultModel drifting(double base, double drift, std::uint64_t seed = 11) {
  FaultModel f = faulty(base, {}, seed);
  f.drift_ber_per_mword = drift;
  return f;
}

TEST(TimeVaryingProfile, FlagsAndTrivial) {
  EXPECT_FALSE(faulty(0.0).time_varying());
  EXPECT_TRUE(faulty(0.0).trivial());
  EXPECT_TRUE(drifting(0.0, 1e-3).time_varying());
  EXPECT_FALSE(drifting(0.0, 1e-3).trivial());

  // A brownout needs both a window and a rate to count.
  FaultModel window_only = faulty(0.0);
  window_only.brownout_words = 100;
  EXPECT_FALSE(window_only.time_varying());
  window_only.brownout_ber = 0.1;
  EXPECT_TRUE(window_only.time_varying());
  EXPECT_FALSE(window_only.trivial());
}

TEST(TimeVaryingProfile, BerAtWordQuantizesDriftAndClamps) {
  const auto f = drifting(1e-6, 0.5);
  constexpr auto kStep = FaultModel::kProfileStepWords;
  // Constant within a quantization segment...
  EXPECT_DOUBLE_EQ(f.ber_at_word(0), 1e-6);
  EXPECT_DOUBLE_EQ(f.ber_at_word(kStep - 1), 1e-6);
  // ...steps at the boundary by drift * step/1e6...
  EXPECT_DOUBLE_EQ(f.ber_at_word(kStep),
                   1e-6 + 0.5 * static_cast<double>(kStep) * 1e-6);
  // ...and clamps at 1.
  EXPECT_DOUBLE_EQ(f.ber_at_word(1u << 30), 1.0);
}

TEST(TimeVaryingProfile, BrownoutOverridesWhenWorse) {
  FaultModel f = faulty(1e-6);
  f.brownout_start_word = 1000;
  f.brownout_words = 500;
  f.brownout_ber = 0.25;
  EXPECT_DOUBLE_EQ(f.ber_at_word(999), 1e-6);
  EXPECT_DOUBLE_EQ(f.ber_at_word(1000), 0.25);
  EXPECT_DOUBLE_EQ(f.ber_at_word(1499), 0.25);
  EXPECT_DOUBLE_EQ(f.ber_at_word(1500), 1e-6);
  EXPECT_EQ(f.next_profile_change(0), 1000u);
  EXPECT_EQ(f.next_profile_change(1200), 1500u);
  EXPECT_EQ(f.next_profile_change(2000),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(TimeVaryingProfile, BrownoutFlipsOnlyInsideTheWindow) {
  FaultModel f = faulty(0.0);
  f.brownout_start_word = 1000;
  f.brownout_words = 500;
  f.brownout_ber = 0.05;
  FaultStream stream(f);
  std::size_t first_flip = 0, last_flip = 0, flips = 0;
  for (std::size_t i = 0; i < 3000; ++i) {
    if (stream.corrupt(~0ULL) != ~0ULL) {
      if (flips == 0) first_flip = i;
      last_flip = i;
      ++flips;
    }
  }
  ASSERT_GT(flips, 0u);  // 500 words * 64 bits * 5% can't all stay clean
  EXPECT_GE(first_flip, 1000u);
  EXPECT_LT(last_flip, 1500u);
}

TEST(TimeVaryingProfile, DriftRampsTheFlipRate) {
  const std::uint64_t words = 1u << 16;
  FaultReport flat_rep, drift_rep;
  FaultStream flat(faulty(1e-6, {}, 3));
  FaultStream drifted(drifting(1e-6, 10.0, 3));  // +10 BER/Mword ramp
  for (std::uint64_t i = 0; i < words; ++i) {
    flat.corrupt(~0ULL, &flat_rep);
    drifted.corrupt(~0ULL, &drift_rep);
  }
  // By word 2^16 the drifted BER is ~0.65 vs 1e-6 flat: orders more flips.
  EXPECT_GT(drift_rep.bits_flipped, 100 * (flat_rep.bits_flipped + 1));
}

TEST(TimeVaryingProfile, BulkCorruptWordsMatchesPerWord) {
  FaultModel f = drifting(1e-5, 50.0, 17);
  f.brownout_start_word = 3000;
  f.brownout_words = 2000;
  f.brownout_ber = 0.02;

  Rng rng(23);
  std::vector<std::uint64_t> in(10000);
  for (auto& w : in) w = rng.next_u64();

  FaultStream batch_stream(f);
  FaultStream word_stream(f);
  std::vector<std::uint64_t> batch_out(in.size());
  std::vector<std::uint64_t> word_out(in.size());
  FaultReport batch_rep, word_rep;

  // Chunk sizes chosen to straddle segment boundaries (4096-word drift
  // steps, brownout edges at 3000/5000) mid-call.
  std::size_t off = 0;
  for (std::size_t s : {1u, 100u, 2500u, 1399u, 3000u, 2000u, 1000u}) {
    batch_stream.corrupt_words(in.data() + off, batch_out.data() + off, s,
                               &batch_rep);
    off += s;
  }
  ASSERT_EQ(off, in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    word_out[i] = word_stream.corrupt(in[i], &word_rep);
  }

  EXPECT_EQ(batch_out, word_out);
  EXPECT_EQ(batch_rep.words_total, word_rep.words_total);
  EXPECT_EQ(batch_rep.words_corrupted, word_rep.words_corrupted);
  EXPECT_EQ(batch_rep.bits_flipped, word_rep.bits_flipped);
  EXPECT_EQ(batch_rep.bits_silenced, word_rep.bits_silenced);
}

// --- lane exhaustion (all 64 lanes dead) -------------------------------

std::vector<std::uint32_t> all_lanes() {
  std::vector<std::uint32_t> lanes(64);
  std::iota(lanes.begin(), lanes.end(), 0);
  return lanes;
}

TEST(Channel, AllLanesDeadThrowsTypedError) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kCorrectRetry;
  p.spare_lanes = 0;
  // Before the typed error this divided by zero in the degraded-width
  // computation (SIGFPE). Now the channel fail-stops with an error the
  // campaign taxonomy files under sim_diverged.
  EXPECT_THROW(ProtectedChannel(faulty(0.0, all_lanes()), p),
               LaneExhaustionError);
  EXPECT_THROW(ProtectedChannel(faulty(0.0, all_lanes()), p),
               SimulationError);  // derived: existing handlers still catch
}

TEST(Channel, AllLanesDeadWithSparesStillDegrades) {
  ReliabilityParams p;
  p.policy = ReliabilityPolicy::kCorrectRetry;
  p.spare_lanes = 4;
  ProtectedChannel ch(faulty(0.0, all_lanes()), p);
  EXPECT_EQ(ch.lanes().spares_used, 4u);
  EXPECT_EQ(ch.lanes().residual_dead, 60u);
  // 4 usable lanes -> ceil(64/4) = 16 slots per word; slow but alive.
  EXPECT_EQ(ch.lanes().slots_per_word, 16u);
  const auto payload = ramp(32);
  const auto tx = ch.transmit(payload);
  EXPECT_EQ(tx.words, payload);
  EXPECT_EQ(tx.retry.residual_errors, 0u);
}

}  // namespace
}  // namespace psync::reliability
