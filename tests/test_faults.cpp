#include "psync/core/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "psync/common/check.hpp"
#include "psync/core/cp_compile.hpp"
#include "psync/core/processor.hpp"
#include "psync/fft/fft.hpp"

namespace psync::core {
namespace {

GatherResult clean_gather(std::size_t nodes, Slot elems,
                          std::uint64_t fill = ~0ULL) {
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  const auto sched = compile_gather_interleaved(nodes, elems);
  std::vector<std::vector<Word>> data(
      nodes, std::vector<Word>(static_cast<std::size_t>(elems), fill));
  return engine.gather(sched, data);
}

TEST(Faults, TrivialModelChangesNothing) {
  auto g = clean_gather(4, 8);
  const auto words_before = g.words();
  const auto rep = inject_faults(FaultModel{}, &g);
  EXPECT_EQ(g.words(), words_before);
  EXPECT_EQ(rep.words_corrupted, 0u);
  EXPECT_EQ(rep.words_total, 32u);
}

TEST(Faults, DeadWavelengthSilencesOneLaneEverywhere) {
  auto g = clean_gather(4, 8, ~0ULL);  // all-ones payloads
  FaultModel f;
  f.dead_wavelengths = {5, 63};
  const auto rep = inject_faults(f, &g);
  const Word mask = (Word{1} << 5) | (Word{1} << 63);
  for (const auto& rec : g.stream) {
    EXPECT_EQ(rec.word & mask, 0u);
    EXPECT_EQ(rec.word | mask, ~0ULL);  // only those lanes were touched
  }
  EXPECT_EQ(rep.words_corrupted, 32u);
  EXPECT_EQ(rep.bits_silenced, 32u * 2u);
  EXPECT_EQ(rep.bits_flipped, 0u);
}

TEST(Faults, RandomBerFlipsProportionally) {
  auto g = clean_gather(8, 128, 0);  // all-zero payloads: flips visible
  FaultModel f;
  f.random_ber = 0.01;
  f.seed = 7;
  const auto rep = inject_faults(f, &g);
  const double bits = 8.0 * 128.0 * 64.0;
  EXPECT_NEAR(static_cast<double>(rep.bits_flipped), bits * 0.01,
              4.0 * std::sqrt(bits * 0.01));  // ~4 sigma
  EXPECT_GT(rep.words_corrupted, 0u);
}

TEST(Faults, DeterministicForSeed) {
  auto a = clean_gather(4, 16, 0x1234567890ABCDEF);
  auto b = clean_gather(4, 16, 0x1234567890ABCDEF);
  FaultModel f;
  f.random_ber = 0.05;
  f.seed = 99;
  inject_faults(f, &a);
  inject_faults(f, &b);
  EXPECT_EQ(a.words(), b.words());
  f.seed = 100;
  auto c = clean_gather(4, 16, 0x1234567890ABCDEF);
  inject_faults(f, &c);
  EXPECT_NE(c.words(), a.words());
}

TEST(Faults, FromMarginTracksBerModel) {
  const auto good = FaultModel::from_margin_db(3.0);
  const auto bad = FaultModel::from_margin_db(-3.0);
  EXPECT_LT(good.random_ber, 1e-12);
  EXPECT_GT(bad.random_ber, 1e-4);
}

TEST(Faults, ScatterInjectionUpdatesNodeBuffers) {
  ScaEngine engine(straight_bus_topology(4, 8.0));
  const auto sched = compile_scatter_blocks(4, 4);
  std::vector<Word> burst(16, ~0ULL);
  auto r = engine.scatter(sched, burst);
  FaultModel f;
  f.dead_wavelengths = {0};
  inject_faults(f, &r);
  for (const auto& per_node : r.received) {
    for (Word w : per_node) {
      EXPECT_EQ(w & 1u, 0u);
    }
  }
}

TEST(Faults, BadLaneRejected) {
  auto g = clean_gather(2, 2);
  FaultModel f;
  f.dead_wavelengths = {64};
  EXPECT_THROW((void)inject_faults(f, &g), SimulationError);
}

// End-to-end: a degraded link corrupts a real FFT's data by an amount that
// tracks the BER — the reliability cliff of Section III-B made visible.
TEST(Faults, CorruptedTransportDegradesFftAccuracy) {
  const std::size_t nodes = 8, n = 64;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  const auto sched = compile_scatter_blocks(nodes, static_cast<Slot>(n));

  // One 64-point row per node, sent as packed samples.
  std::vector<Word> burst;
  std::vector<fft::Complex> signal(n);
  for (std::size_t i = 0; i < n; ++i) {
    signal[i] = {std::sin(0.3 * static_cast<double>(i)), 0.0};
  }
  for (std::size_t node = 0; node < nodes; ++node) {
    for (std::size_t i = 0; i < n; ++i) burst.push_back(pack_sample(signal[i]));
  }

  auto clean = engine.scatter(sched, burst);
  auto dirty = engine.scatter(sched, burst);
  inject_faults(FaultModel::from_margin_db(-2.0, 3), &dirty);

  fft::FftPlan plan(n);
  double clean_err = 0.0, dirty_err = 0.0;
  std::vector<fft::Complex> ref(signal);
  plan.forward(ref);
  for (std::size_t node = 0; node < nodes; ++node) {
    std::vector<fft::Complex> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = unpack_sample(clean.received[node][i]);
      b[i] = unpack_sample(dirty.received[node][i]);
    }
    plan.forward(a);
    plan.forward(b);
    clean_err = std::max(clean_err, fft::max_abs_diff(a, ref));
    dirty_err = std::max(dirty_err, fft::max_abs_diff(b, ref));
  }
  EXPECT_LT(clean_err, 1e-4);
  EXPECT_GT(dirty_err, 10.0 * clean_err);
}

}  // namespace
}  // namespace psync::core
