// Bit-identity of the runtime-dispatched vector kernels against their
// scalar fallbacks: AVX2/NEON FFT butterflies vs the scalar fast kernel vs
// the strided radix-2 reference; PCLMUL CRC-32 folding vs slice-by-8 vs the
// byte-wise loop; AVX2 SECDED syndrome batches vs the scalar codec,
// including every 1-bit and every 2-bit error position in the 72-bit
// codeword. On hosts without the ISA (or under PSYNC_FORCE_SCALAR) the
// vector request falls back to scalar and the comparisons still hold.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "psync/common/rng.hpp"
#include "psync/common/simd_dispatch.hpp"
#include "psync/fft/fft.hpp"
#include "psync/reliability/crc32.hpp"
#include "psync/reliability/secded.hpp"
#include "psync/reliability/vector_codec.hpp"

namespace {

using psync::Rng;

// Save/restore the process-wide kernel toggles around each test.
class SimdKernels : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_fast_ = psync::fft::fast_kernel();
    saved_vec_ = psync::fft::vector_kernel();
    saved_codec_ = psync::reliability::vector_codec();
  }
  void TearDown() override {
    psync::fft::set_fast_kernel(saved_fast_);
    psync::fft::set_vector_kernel(saved_vec_);
    psync::reliability::set_vector_codec(saved_codec_);
  }

 private:
  bool saved_fast_ = true;
  bool saved_vec_ = true;
  bool saved_codec_ = true;
};

std::vector<psync::fft::Complex> random_signal(std::size_t n,
                                               std::uint64_t seed) {
  std::vector<psync::fft::Complex> x(n);
  Rng rng(seed);
  for (auto& v : x) {
    v = {rng.next_double() - 0.5, rng.next_double() - 0.5};
  }
  return x;
}

bool bits_equal(const std::vector<psync::fft::Complex>& a,
                const std::vector<psync::fft::Complex>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(),
                     a.size() * sizeof(psync::fft::Complex)) == 0;
}

TEST_F(SimdKernels, FftForwardBitIdenticalAcrossAllThreePaths) {
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 64u, 512u, 4096u, 8192u}) {
    psync::fft::FftPlan plan(n);
    for (std::uint64_t seed : {3u, 17u}) {
      const auto input = random_signal(n, seed);
      auto ref = input, scalar = input, vec = input;
      psync::fft::set_fast_kernel(false);
      plan.forward(ref);
      psync::fft::set_fast_kernel(true);
      psync::fft::set_vector_kernel(false);
      plan.forward(scalar);
      psync::fft::set_vector_kernel(true);
      plan.forward(vec);
      EXPECT_TRUE(bits_equal(ref, scalar)) << "n=" << n << " seed=" << seed;
      EXPECT_TRUE(bits_equal(ref, vec)) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST_F(SimdKernels, FftInverseAndBlockedBitIdentical) {
  const std::size_t n = 2048;
  psync::fft::FftPlan plan(n);
  const auto input = random_signal(n, 23);
  for (std::size_t k : {1u, 4u, 16u, 128u}) {
    auto scalar = input, vec = input;
    psync::fft::set_fast_kernel(true);
    psync::fft::set_vector_kernel(false);
    plan.forward_blocked(scalar, k);
    plan.inverse(scalar);
    psync::fft::set_vector_kernel(true);
    plan.forward_blocked(vec, k);
    plan.inverse(vec);
    EXPECT_TRUE(bits_equal(scalar, vec)) << "k=" << k;
  }
}

TEST_F(SimdKernels, FftOpCountsUnchangedByVectorKernel) {
  const std::size_t n = 1024;
  psync::fft::FftPlan plan(n);
  const auto input = random_signal(n, 5);
  auto a = input, b = input;
  psync::fft::set_fast_kernel(true);
  psync::fft::set_vector_kernel(false);
  const auto ops_scalar = plan.forward(a);
  psync::fft::set_vector_kernel(true);
  const auto ops_vec = plan.forward(b);
  EXPECT_EQ(ops_scalar.butterflies, ops_vec.butterflies);
  EXPECT_EQ(ops_scalar.real_mults, ops_vec.real_mults);
  EXPECT_EQ(ops_scalar.real_adds, ops_vec.real_adds);
}

TEST_F(SimdKernels, Crc32FoldMatchesTablesAtEveryLengthAndAlignment) {
  std::vector<unsigned char> buf(2048 + 7);
  Rng rng(31);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.next_u64());
  for (std::size_t off : {0u, 1u, 7u}) {
    // Every length through four 64-byte fold rounds, then sparse large ones.
    std::vector<std::size_t> lens;
    for (std::size_t len = 0; len <= 260; ++len) lens.push_back(len);
    lens.insert(lens.end(), {511, 512, 513, 1024, 2000, 2048});
    for (std::size_t len : lens) {
      psync::reliability::set_vector_codec(true);
      const auto vec = psync::reliability::crc32_update(
          psync::reliability::kCrc32Init, buf.data() + off, len);
      psync::reliability::set_vector_codec(false);
      const auto tab = psync::reliability::crc32_update(
          psync::reliability::kCrc32Init, buf.data() + off, len);
      const auto ref = psync::reliability::crc32_update_reference(
          psync::reliability::kCrc32Init, buf.data() + off, len);
      ASSERT_EQ(vec, tab) << "len=" << len << " off=" << off;
      ASSERT_EQ(vec, ref) << "len=" << len << " off=" << off;
    }
  }
}

TEST_F(SimdKernels, Crc32RunningUpdatesCompose) {
  // Split updates must equal one-shot updates on both paths.
  std::vector<unsigned char> buf(777);
  Rng rng(41);
  for (auto& b : buf) b = static_cast<unsigned char>(rng.next_u64());
  for (bool vec : {true, false}) {
    psync::reliability::set_vector_codec(vec);
    const auto whole = psync::reliability::crc32_update(
        psync::reliability::kCrc32Init, buf.data(), buf.size());
    for (std::size_t cut : {1u, 63u, 64u, 65u, 300u, 776u}) {
      auto crc = psync::reliability::crc32_update(
          psync::reliability::kCrc32Init, buf.data(), cut);
      crc = psync::reliability::crc32_update(crc, buf.data() + cut,
                                             buf.size() - cut);
      ASSERT_EQ(crc, whole) << "vec=" << vec << " cut=" << cut;
    }
  }
}

TEST_F(SimdKernels, SecdedEncodeBatchesMatchScalar) {
  // Counts around the 4-word vector groups, plus the scalar per-word API.
  Rng rng(53);
  for (std::size_t count : {1u, 3u, 4u, 5u, 8u, 63u, 256u, 1021u}) {
    std::vector<std::uint64_t> data(count);
    for (auto& d : data) d = rng.next_u64();
    std::vector<std::uint8_t> vec_checks(count), scalar_checks(count);
    psync::reliability::set_vector_codec(true);
    psync::reliability::secded_encode_words(data.data(), count,
                                            vec_checks.data());
    psync::reliability::set_vector_codec(false);
    psync::reliability::secded_encode_words(data.data(), count,
                                            scalar_checks.data());
    ASSERT_EQ(vec_checks, scalar_checks) << "count=" << count;
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(vec_checks[i], psync::reliability::secded_encode(data[i]))
          << "word " << i;
    }
  }
}

// Flip codeword bit `pos` (0..63 = data bits, 64..71 = check bits) of a
// (data, check) pair.
void flip(std::uint64_t* data, std::uint8_t* check, int pos) {
  if (pos < 64) {
    *data ^= std::uint64_t{1} << pos;
  } else {
    *check = static_cast<std::uint8_t>(*check ^ (1u << (pos - 64)));
  }
}

void expect_decode_words_identical(const std::vector<std::uint64_t>& data,
                                   const std::vector<std::uint8_t>& checks,
                                   bool correct) {
  std::vector<std::uint64_t> out_vec(data.size()), out_scalar(data.size());
  psync::reliability::SecdedWordStats sv, ss;
  psync::reliability::set_vector_codec(true);
  psync::reliability::secded_decode_words(data.data(), checks.data(),
                                          data.size(), correct,
                                          out_vec.data(), &sv);
  psync::reliability::set_vector_codec(false);
  psync::reliability::secded_decode_words(data.data(), checks.data(),
                                          data.size(), correct,
                                          out_scalar.data(), &ss);
  ASSERT_EQ(out_vec, out_scalar);
  ASSERT_EQ(sv.flagged_words, ss.flagged_words);
  ASSERT_EQ(sv.corrected_bits, ss.corrected_bits);
  ASSERT_EQ(sv.double_errors, ss.double_errors);
}

TEST_F(SimdKernels, SecdedDecodeIdenticalForAllSingleBitErrors) {
  Rng rng(67);
  const std::uint64_t words[] = {0ull, ~0ull, rng.next_u64(), rng.next_u64()};
  for (std::uint64_t word : words) {
    const std::uint8_t check = psync::reliability::secded_encode(word);
    std::vector<std::uint64_t> data(72);
    std::vector<std::uint8_t> checks(72);
    for (int pos = 0; pos < 72; ++pos) {
      data[static_cast<std::size_t>(pos)] = word;
      checks[static_cast<std::size_t>(pos)] = check;
      flip(&data[static_cast<std::size_t>(pos)],
           &checks[static_cast<std::size_t>(pos)], pos);
      // Every single flip must be corrected back to the original word.
      const auto dec = psync::reliability::secded_decode(
          data[static_cast<std::size_t>(pos)],
          checks[static_cast<std::size_t>(pos)]);
      ASSERT_TRUE(dec.corrected()) << "pos=" << pos;
      ASSERT_EQ(dec.data, word) << "pos=" << pos;
    }
    expect_decode_words_identical(data, checks, true);
    expect_decode_words_identical(data, checks, false);
  }
}

TEST_F(SimdKernels, SecdedDecodeIdenticalForAllDoubleBitErrors) {
  Rng rng(71);
  const std::uint64_t word = rng.next_u64();
  const std::uint8_t check = psync::reliability::secded_encode(word);
  std::vector<std::uint64_t> data;
  std::vector<std::uint8_t> checks;
  data.reserve(72 * 71 / 2);
  checks.reserve(72 * 71 / 2);
  for (int p1 = 0; p1 < 72; ++p1) {
    for (int p2 = p1 + 1; p2 < 72; ++p2) {
      std::uint64_t d = word;
      std::uint8_t c = check;
      flip(&d, &c, p1);
      flip(&d, &c, p2);
      // Any two flips must be detected, never miscorrected into silence.
      const auto dec = psync::reliability::secded_decode(d, c);
      ASSERT_TRUE(dec.double_error()) << "p1=" << p1 << " p2=" << p2;
      data.push_back(d);
      checks.push_back(c);
    }
  }
  expect_decode_words_identical(data, checks, true);
  expect_decode_words_identical(data, checks, false);
}

TEST_F(SimdKernels, SecdedDecodeMixedCleanAndErroredBatches) {
  Rng rng(83);
  const std::size_t count = 4099;  // exercises the tail after vector groups
  std::vector<std::uint64_t> data(count);
  std::vector<std::uint8_t> checks(count);
  for (std::size_t i = 0; i < count; ++i) {
    data[i] = rng.next_u64();
    checks[i] = psync::reliability::secded_encode(data[i]);
    const std::uint64_t roll = rng.next_u64() % 10;
    if (roll == 0) {
      flip(&data[i], &checks[i], static_cast<int>(rng.next_u64() % 72));
    } else if (roll == 1) {
      const int p1 = static_cast<int>(rng.next_u64() % 72);
      const int p2 = static_cast<int>((p1 + 1 + rng.next_u64() % 71) % 72);
      flip(&data[i], &checks[i], p1);
      flip(&data[i], &checks[i], p2);
    }
  }
  expect_decode_words_identical(data, checks, true);
  expect_decode_words_identical(data, checks, false);
}

TEST_F(SimdKernels, ForceScalarEnvironmentIsRespectedByDetection) {
  // The detection layer itself is cached at first query; this only checks
  // coherence between the predicates and the dispatchers' effective state.
  if (psync::simd::force_scalar()) {
    EXPECT_FALSE(psync::simd::have_avx2());
    EXPECT_FALSE(psync::simd::have_pclmul());
    psync::fft::set_vector_kernel(true);
    EXPECT_FALSE(psync::fft::vector_kernel());
  } else if (psync::simd::have_avx2()) {
    psync::fft::set_vector_kernel(true);
    EXPECT_TRUE(psync::fft::vector_kernel());
    psync::fft::set_vector_kernel(false);
    EXPECT_FALSE(psync::fft::vector_kernel());
  }
}

}  // namespace
