// End-to-end fault tests: the full 2D/1D FFT machine running over a faulty
// waveguide under each reliability policy. The acceptance bar from the
// paper-reproduction roadmap: with BER <= 1e-6 and <= 2 dead wavelengths,
// correct+retry must return a bit-exact transform (float32 transport
// tolerance), report zero residual errors, and pay for it — total time and
// energy strictly above the fault-free run.
#include <gtest/gtest.h>

#include "psync/common/rng.hpp"
#include "psync/core/psync_machine.hpp"
#include "psync/core/trace.hpp"

namespace psync::core {
namespace {

std::vector<std::complex<double>> random_matrix(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> m(n);
  for (auto& v : m) {
    v = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return m;
}

PsyncMachineParams faulty_params(reliability::ReliabilityPolicy policy,
                                 double ber,
                                 std::vector<std::uint32_t> dead = {}) {
  PsyncMachineParams p;
  p.processors = 8;
  p.matrix_rows = 32;
  p.matrix_cols = 64;
  p.delivery_blocks = 4;
  p.fault.random_ber = ber;
  p.fault.dead_wavelengths = std::move(dead);
  p.fault.seed = 7;
  p.reliability.policy = policy;
  return p;
}

// Lane 62 sits in the float32 exponent of the packed imaginary half, so a
// stuck-at-0 there visibly wrecks the numerics when nothing recovers it.
constexpr std::uint32_t kExponentLane = 62;

TEST(MachineReliability, OffPolicyCorruptsResult) {
  auto p = faulty_params(reliability::ReliabilityPolicy::kOff, 1e-6,
                         {kExponentLane});
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(32 * 64, 3));
  EXPECT_GT(rep.fault.words_corrupted, 0u);
  EXPECT_GT(rep.max_error_vs_reference, 1e-3);  // visibly wrong
  EXPECT_EQ(rep.reliability_overhead_slots, 0u);
  EXPECT_EQ(rep.retry.blocks_total, 0u);
}

TEST(MachineReliability, DetectOnlyFlagsButStaysWrong) {
  auto p = faulty_params(reliability::ReliabilityPolicy::kDetectOnly, 1e-6,
                         {kExponentLane});
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(32 * 64, 3));
  EXPECT_GT(rep.retry.detected_errors, 0u);
  EXPECT_GT(rep.retry.residual_errors, 0u);
  EXPECT_EQ(rep.retry.retries, 0u);
  EXPECT_EQ(rep.lanes.spares_used, 0u);  // detect-only never remaps
  EXPECT_GT(rep.max_error_vs_reference, 1e-3);
  // The framing slots are charged even though nothing was repaired.
  EXPECT_GT(rep.reliability_overhead_slots, 0u);
}

TEST(MachineReliability, CorrectRetryRecoversBitExact) {
  auto p = faulty_params(reliability::ReliabilityPolicy::kCorrectRetry, 1e-6,
                         {kExponentLane});
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(32 * 64, 3));
  EXPECT_EQ(rep.retry.residual_errors, 0u);
  EXPECT_LT(rep.max_error_vs_reference, 1e-4);  // float32 tolerance
  EXPECT_EQ(rep.lanes.dead_lanes,
            (std::vector<std::uint32_t>{kExponentLane}));
  EXPECT_EQ(rep.lanes.spares_used, 1u);
  EXPECT_TRUE(rep.sca_gap_free);
}

TEST(MachineReliability, AcceptanceCriterionTwoDeadLanes) {
  // The roadmap's acceptance bar, verbatim: BER 1e-6, dead lanes {13, 41},
  // correct+retry. Compare against the identical machine with no faults.
  auto clean_p = faulty_params(reliability::ReliabilityPolicy::kOff, 0.0);
  const auto input = random_matrix(32 * 64, 9);
  const auto clean = PsyncMachine(clean_p).run_fft2d(input);

  auto p = faulty_params(reliability::ReliabilityPolicy::kCorrectRetry, 1e-6,
                         {13, 41});
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(input);
  EXPECT_EQ(rep.retry.residual_errors, 0u);
  EXPECT_LT(rep.max_error_vs_reference, 1e-4);
  EXPECT_EQ(rep.max_error_vs_reference, clean.max_error_vs_reference);
  EXPECT_GT(rep.total_ns, clean.total_ns);
  EXPECT_GT(rep.total_energy_pj(), clean.total_energy_pj());
  EXPECT_GT(rep.reliability_overhead_ns, 0.0);
  // Overhead in ns is exactly the slot count times the 64b/320Gbps slot.
  const double slot_ns = static_cast<double>(p.sample_bits) / p.waveguide_gbps;
  EXPECT_NEAR(rep.reliability_overhead_ns,
              static_cast<double>(rep.reliability_overhead_slots) * slot_ns,
              1e-9);
}

TEST(MachineReliability, TrainingPhaseAppearsInTimeline) {
  auto p = faulty_params(reliability::ReliabilityPolicy::kCorrectRetry, 0.0);
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(32 * 64, 5), false);
  const auto& train = rep.phase("lane_training");
  EXPECT_EQ(train.start_ns, 0.0);
  EXPECT_GT(train.end_ns, 0.0);
  // Every later phase starts after training.
  for (const auto& ph : rep.phases) EXPECT_GE(ph.start_ns, train.start_ns);
}

TEST(MachineReliability, HeadNodeLogsRetries) {
  auto p = faulty_params(reliability::ReliabilityPolicy::kCorrectRetry, 1e-4);
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(32 * 64, 7));
  EXPECT_EQ(rep.retry.residual_errors, 0u);
  // Gather-side transmissions are logged at the head node.
  EXPECT_GT(m.head().retry_log().blocks_total, 0u);
}

TEST(MachineReliability, FourStepFftSurvivesFaults) {
  auto p = faulty_params(reliability::ReliabilityPolicy::kCorrectRetry, 1e-6,
                         {13});
  PsyncMachine m(p);
  const auto rep = m.run_fft1d(random_matrix(32 * 64, 11));
  EXPECT_EQ(rep.retry.residual_errors, 0u);
  EXPECT_LT(rep.max_error_vs_reference, 2e-4);
}

TEST(MachineReliability, OverheadScalesWithBer) {
  const auto input = random_matrix(32 * 64, 13);
  auto lo = faulty_params(reliability::ReliabilityPolicy::kCorrectRetry, 0.0);
  auto hi = faulty_params(reliability::ReliabilityPolicy::kCorrectRetry, 3e-4);
  const auto rep_lo = PsyncMachine(lo).run_fft2d(input, false);
  const auto rep_hi = PsyncMachine(hi).run_fft2d(input, false);
  EXPECT_GT(rep_hi.retry.retries, rep_lo.retry.retries);
  EXPECT_GT(rep_hi.reliability_overhead_slots,
            rep_lo.reliability_overhead_slots);
}

TEST(MachineReliability, DeterministicAcrossRuns) {
  const auto input = random_matrix(32 * 64, 17);
  auto p = faulty_params(reliability::ReliabilityPolicy::kCorrectRetry, 1e-5,
                         {8});
  const auto a = PsyncMachine(p).run_fft2d(input);
  const auto b = PsyncMachine(p).run_fft2d(input);
  EXPECT_EQ(a.total_ns, b.total_ns);
  EXPECT_EQ(a.retry.retries, b.retry.retries);
  EXPECT_EQ(a.fault.bits_flipped, b.fault.bits_flipped);
  EXPECT_EQ(a.max_error_vs_reference, b.max_error_vs_reference);
}

TEST(MachineReliability, RunReportJsonCarriesReliabilityKeys) {
  auto p = faulty_params(reliability::ReliabilityPolicy::kCorrectRetry, 1e-6,
                         {13});
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(32 * 64, 19));
  const auto json = run_report_json(rep);
  for (const char* key :
       {"\"phases\"", "\"total_ns\"", "\"fault\"", "\"retry\"", "\"lanes\"",
        "\"residual_errors\"", "\"dead_lanes\"",
        "\"reliability_overhead_ns\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace psync::core
