#include "psync/core/segmented.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync::core {
namespace {

std::vector<std::vector<Word>> numbered(const CpSchedule& s) {
  std::vector<std::vector<Word>> data(s.nodes());
  for (std::size_t i = 0; i < s.nodes(); ++i) {
    const Slot n = s.node_cps[i].slot_count(CpAction::kDrive);
    for (Slot j = 0; j < n; ++j) {
      data[i].push_back((static_cast<Word>(i) << 32) | static_cast<Word>(j));
    }
  }
  return data;
}

TEST(Segmented, TopologyHelpers) {
  const auto topo = segmented_bus_topology(8, 3, 10.0);
  EXPECT_EQ(topo.nodes(), 8u);
  EXPECT_EQ(topo.spans(), 3u);
  EXPECT_EQ(topo.repeater_pos_um.size(), 2u);
  EXPECT_NO_THROW(topo.validate());
  EXPECT_EQ(topo.repeaters_before(0.0), 0u);
  EXPECT_EQ(topo.repeaters_before(topo.terminus_um), 2u);
}

// The extended invariant: gap-free splicing survives repeater chains
// because clock and data cross the same repeaters.
TEST(Segmented, GatherStaysGapFreeAcrossRepeaters) {
  for (std::size_t spans : {1, 2, 4}) {
    const auto topo = segmented_bus_topology(8, spans, 10.0);
    SegmentedScaEngine engine(topo);
    const auto sched = compile_gather_interleaved(8, 8);
    const auto g = engine.gather(sched, numbered(sched));
    EXPECT_TRUE(g.gap_free) << spans << " spans";
    EXPECT_TRUE(g.collisions.empty());
    EXPECT_DOUBLE_EQ(g.utilization, 1.0);
  }
}

TEST(Segmented, SingleSpanMatchesPlainEngineStream) {
  const auto sched = compile_gather_blocks(6, 4);
  const auto topo = segmented_bus_topology(6, 1, 12.0);
  SegmentedScaEngine seg(topo);

  PscanTopology plain;
  plain.clock = topo.clock;
  plain.node_pos_um = topo.node_pos_um;
  plain.terminus_um = topo.terminus_um;
  ScaEngine ref(plain);

  const auto data = numbered(sched);
  EXPECT_EQ(seg.gather(sched, data).words(), ref.gather(sched, data).words());
}

TEST(Segmented, RepeaterLatencyShiftsArrivalByWholeChain) {
  const auto sched = compile_gather_interleaved(6, 4);
  auto topo0 = segmented_bus_topology(6, 3, 10.0);
  topo0.repeater_latency_ps = 0;
  auto topo1 = segmented_bus_topology(6, 3, 10.0);
  topo1.repeater_latency_ps = 500;
  SegmentedScaEngine e0(topo0), e1(topo1);
  const auto data = numbered(sched);
  const auto g0 = e0.gather(sched, data);
  const auto g1 = e1.gather(sched, data);
  ASSERT_EQ(g0.stream.size(), g1.stream.size());
  // Every arrival shifts by exactly 2 repeaters x 500 ps, preserving order.
  for (std::size_t i = 0; i < g0.stream.size(); ++i) {
    EXPECT_EQ(g1.stream[i].arrival_ps - g0.stream[i].arrival_ps, 1000);
    EXPECT_EQ(g1.stream[i].slot, g0.stream[i].slot);
  }
}

TEST(Segmented, PerceivedEdgeIncludesUpstreamRepeatersOnly) {
  auto topo = segmented_bus_topology(4, 2, 10.0);
  topo.repeater_latency_ps = 300;
  SegmentedScaEngine engine(topo);
  // Nodes 0,1 sit in span 0 (no upstream repeater); nodes 2,3 in span 1.
  const TimePs base0 = engine.clock().perceived_edge_ps(topo.node_pos_um[0], 0);
  const TimePs base3 = engine.clock().perceived_edge_ps(topo.node_pos_um[3], 0);
  EXPECT_EQ(engine.perceived_edge_ps(0, 0), base0);
  EXPECT_EQ(engine.perceived_edge_ps(3, 0), base3 + 300);
}

TEST(Segmented, ScatterDeliversAcrossChain) {
  const auto topo = segmented_bus_topology(4, 2, 10.0);
  SegmentedScaEngine engine(topo);
  const auto sched = compile_scatter_blocks(4, 4);
  std::vector<Word> burst(16);
  for (std::size_t i = 0; i < 16; ++i) burst[i] = 100 + i;
  const auto r = engine.scatter(sched, burst);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(r.received[i].size(), 4u);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(r.received[i][j], 100 + i * 4 + j);
    }
  }
}

TEST(Segmented, BudgetCheckedPerSpan) {
  // A 3-span bus whose spans individually close even though the whole
  // length would not.
  auto topo = segmented_bus_topology(30, 3, 15.0);
  photonic::LinkBudgetParams budget;
  budget.waveguide.loss_straight_db_per_cm = 1.5;  // 67 dB end to end
  topo.budget = budget;
  EXPECT_NO_THROW(SegmentedScaEngine{topo});

  // The same bus as a single span must fail.
  auto mono = segmented_bus_topology(30, 1, 45.0);
  mono.budget = budget;
  EXPECT_THROW(SegmentedScaEngine{mono}, SimulationError);
}

TEST(Segmented, ValidationCatchesBadTopologies) {
  auto topo = segmented_bus_topology(4, 2, 10.0);
  topo.repeater_latency_ps = -1;
  EXPECT_THROW(topo.validate(), SimulationError);

  auto topo2 = segmented_bus_topology(4, 2, 10.0);
  topo2.repeater_pos_um[0] = topo2.node_pos_um[1];  // collide with a tap
  EXPECT_THROW(topo2.validate(), SimulationError);

  auto topo3 = segmented_bus_topology(4, 2, 10.0);
  topo3.repeater_pos_um.push_back(topo3.terminus_um + 1.0);
  EXPECT_THROW(topo3.validate(), SimulationError);
}

TEST(Segmented, CollisionDetectionStillWorks) {
  const auto topo = segmented_bus_topology(2, 2, 10.0);
  SegmentedScaEngine engine(topo);
  CpSchedule bad;
  bad.total_slots = 2;
  bad.node_cps.resize(2);
  bad.node_cps[0].add(CpStride{0, 2, 2, 1, CpAction::kDrive});
  bad.node_cps[1].add(CpStride{1, 1, 1, 1, CpAction::kDrive});
  std::vector<std::vector<Word>> data{{1, 2}, {3}};
  EXPECT_THROW((void)engine.gather(bad, data), SimulationError);
}

}  // namespace
}  // namespace psync::core
