#include "psync/core/psync_machine.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/fft/fft2d.hpp"

namespace psync::core {
namespace {

std::vector<std::complex<double>> random_matrix(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> m(n);
  for (auto& v : m) {
    v = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return m;
}

PsyncMachineParams small_params(std::size_t procs, std::size_t rows,
                                std::size_t cols, std::size_t k = 1) {
  PsyncMachineParams p;
  p.processors = procs;
  p.matrix_rows = rows;
  p.matrix_cols = cols;
  p.delivery_blocks = k;
  p.head.dram.row_switch_cycles = 0;
  return p;
}

TEST(PsyncMachine, FullFlowNumericallyCorrectModelI) {
  PsyncMachine m(small_params(8, 32, 64));
  const auto input = random_matrix(32 * 64, 1);
  const auto rep = m.run_fft2d(input);
  EXPECT_TRUE(rep.sca_gap_free);
  EXPECT_EQ(rep.sca_collisions, 0u);
  // Float32 transport bounds the error.
  EXPECT_LT(rep.max_error_vs_reference, 1e-4);
  EXPECT_GT(rep.total_ns, 0.0);
}

class PsyncModelII : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PsyncModelII, BlockedDeliveryStillCorrect) {
  const std::size_t k = GetParam();
  PsyncMachine m(small_params(4, 16, 64, k));
  const auto input = random_matrix(16 * 64, 2 + k);
  const auto rep = m.run_fft2d(input);
  EXPECT_TRUE(rep.sca_gap_free);
  EXPECT_LT(rep.max_error_vs_reference, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Blocks, PsyncModelII,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(PsyncMachine, ModelIIOverlapImprovesEfficiency) {
  // The whole point of Model II: delivery overlaps compute, so the same
  // problem at k=8 must beat k=1 in compute efficiency.
  const auto input = random_matrix(16 * 1024, 3);
  PsyncMachine m1(small_params(16, 16, 1024, 1));
  PsyncMachine m8(small_params(16, 16, 1024, 8));
  const auto r1 = m1.run_fft2d(input);
  const auto r8 = m8.run_fft2d(input);
  EXPECT_GT(r8.compute_efficiency, r1.compute_efficiency);
  EXPECT_LT(r8.total_ns, r1.total_ns);
}

TEST(PsyncMachine, PhasesOrderedAndAccounted) {
  PsyncMachine m(small_params(4, 16, 16));
  const auto rep = m.run_fft2d(random_matrix(256, 4));
  ASSERT_EQ(rep.phases.size(), 6u);
  EXPECT_EQ(rep.phases[0].name, "scatter_rows");
  EXPECT_EQ(rep.phases[2].name, "sca_transpose");
  EXPECT_EQ(rep.phases[5].name, "sca_writeback");
  // Non-overlapping sequential phases end in order.
  EXPECT_LE(rep.phases[0].end_ns, rep.phases[2].end_ns);
  EXPECT_LE(rep.phases[2].end_ns, rep.phases[4].end_ns);
  EXPECT_DOUBLE_EQ(rep.total_ns, rep.phases[5].end_ns);
  EXPECT_GT(rep.reorg_ns, 0.0);
  EXPECT_GT(rep.flops, 0u);
  // phase() accessor finds by name and throws otherwise.
  EXPECT_EQ(rep.phase("row_ffts").name, "row_ffts");
  EXPECT_THROW((void)rep.phase("nope"), SimulationError);
}

TEST(PsyncMachine, EfficiencyMatchesModelIPrediction) {
  // Model I: eta = t_c / (P*t_d + t_c) for ONE pass. Configure so DRAM is
  // not binding and flight time is negligible, then compare the machine's
  // pass-1 window to the analytic value.
  auto p = small_params(8, 8, 1024);  // one row per processor
  p.bus_length_cm = 0.1;              // negligible flight
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(8 * 1024, 5));

  // t_c = 40960 ns (1024-pt FFT at 2 ns/multiply); t_d per proc = 1024
  // slots * 0.2 ns.
  const double t_c = 40960.0;
  const double t_d = 1024 * 0.2;
  const double eta_pred = t_c / (8.0 * t_d + t_c);
  const auto& sc = rep.phase("scatter_rows");
  const auto& ff = rep.phase("row_ffts");
  const double window = ff.end_ns - sc.start_ns;
  const double eta_meas = t_c / window;
  EXPECT_NEAR(eta_meas, eta_pred, 0.02);
}

TEST(PsyncMachine, TransposePhaseMatchesEq23Eq24Timing) {
  // DRAM-bound SCA transpose: duration ~= transactions * t_t * bus cycle.
  auto p = small_params(16, 64, 64);
  p.bus_length_cm = 0.1;
  PsyncMachine m(p);
  const auto rep = m.run_fft2d(random_matrix(64 * 64, 6));
  const auto& tr = rep.phase("sca_transpose");
  // 64*64 samples * 64 bits / 2048 = 128 rows * 33 cycles * 0.2 ns.
  EXPECT_NEAR(tr.duration_ns(), 128 * 33 * 0.2, 1.0);
}

TEST(PsyncMachine, ResultLayoutIsTransposed) {
  PsyncMachine m(small_params(4, 8, 16));
  auto input = random_matrix(8 * 16, 7);
  m.run_fft2d(input, /*verify=*/false);
  const auto got = m.result();  // 16 x 8, row-major
  std::vector<std::complex<double>> ref(input);
  fft::fft2d(ref, 8, 16, /*restore_layout=*/true);  // 8 x 16 natural
  double max_err = 0.0;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      max_err = std::max(max_err, std::abs(got[c * 8 + r] - ref[r * 16 + c]));
    }
  }
  EXPECT_LT(max_err, 1e-3);
}

TEST(PsyncMachine, InvalidConfigsRejected) {
  EXPECT_THROW(PsyncMachine(small_params(3, 16, 16)), SimulationError);
  EXPECT_THROW(PsyncMachine(small_params(4, 20, 16)), SimulationError);
  auto p = small_params(4, 16, 16);
  p.delivery_blocks = 3;
  EXPECT_THROW(PsyncMachine{p}, SimulationError);
  p.delivery_blocks = 64;  // > cols
  EXPECT_THROW(PsyncMachine{p}, SimulationError);
}

TEST(PsyncMachine, GflopsConsistentWithFlopsAndTime) {
  PsyncMachine m(small_params(4, 16, 16));
  const auto rep = m.run_fft2d(random_matrix(256, 8));
  EXPECT_NEAR(rep.gflops,
              static_cast<double>(rep.flops) / rep.total_ns, 1e-9);
}

}  // namespace
}  // namespace psync::core
