#include "psync/fft/fft2d.hpp"
#include "psync/fft/transpose.hpp"

#include <gtest/gtest.h>

#include "psync/common/rng.hpp"

namespace psync::fft {
namespace {

std::vector<Complex> random_matrix(std::size_t rows, std::size_t cols,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> m(rows * cols);
  for (auto& v : m) {
    v = Complex(rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0);
  }
  return m;
}

TEST(Transpose, OutOfPlaceCorrect) {
  const std::size_t rows = 3, cols = 5;
  std::vector<Complex> in(rows * cols), out(rows * cols);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = {double(i), 0.0};
  transpose(in, out, rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(out[c * rows + r], in[r * cols + c]);
    }
  }
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  const auto m = random_matrix(8, 16, 1);
  std::vector<Complex> t(m.size()), back(m.size());
  transpose(m, t, 8, 16);
  transpose(t, back, 16, 8);
  EXPECT_EQ(max_abs_diff(back, m), 0.0);
}

TEST(Transpose, SquareInPlaceMatchesOutOfPlace) {
  auto m = random_matrix(16, 16, 2);
  std::vector<Complex> expect(m.size());
  transpose(m, expect, 16, 16);
  transpose_square_inplace(m, 16);
  EXPECT_EQ(max_abs_diff(m, expect), 0.0);
}

TEST(Transpose, BlockedMatchesNaive) {
  for (std::size_t tile : {1, 3, 8, 64}) {
    const auto m = random_matrix(24, 40, 3);
    std::vector<Complex> a(m.size()), b(m.size());
    transpose(m, a, 24, 40);
    transpose_blocked(m, b, 24, 40, tile);
    EXPECT_EQ(max_abs_diff(a, b), 0.0);
  }
}

TEST(Transpose, IndexMapMatchesDataMovement) {
  const std::size_t rows = 6, cols = 10;
  const auto m = random_matrix(rows, cols, 4);
  std::vector<Complex> t(m.size());
  transpose(m, t, rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(t[transpose_index(i, rows, cols)], m[i]);
  }
}

class Fft2dShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(Fft2dShapes, MatchesNaive2dDft) {
  const auto [rows, cols] = GetParam();
  auto m = random_matrix(rows, cols, rows * 100 + cols);
  const auto ref = naive_dft2d(m, rows, cols);
  fft2d(m, rows, cols, /*restore_layout=*/true);
  EXPECT_LT(max_abs_diff(m, ref),
            1e-8 * static_cast<double>(rows * cols));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Fft2dShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{4, 4},
                      std::pair<std::size_t, std::size_t>{8, 16},
                      std::pair<std::size_t, std::size_t>{16, 8},
                      std::pair<std::size_t, std::size_t>{32, 32}));

TEST(Fft2d, TransposedLayoutIsTransposeOfNatural) {
  auto natural = random_matrix(8, 32, 9);
  auto trans = natural;
  fft2d(natural, 8, 32, /*restore_layout=*/true);
  fft2d(trans, 8, 32, /*restore_layout=*/false);
  std::vector<Complex> check(natural.size());
  transpose(natural, check, 8, 32);
  EXPECT_LT(max_abs_diff(trans, check), 1e-12);
}

TEST(Fft2d, OpCountMatchesFormula) {
  auto m = random_matrix(16, 64, 10);
  const auto ops = fft2d(m, 16, 64);
  // Row pass: 16 FFTs of 64 points; col pass: 64 FFTs of 16 points.
  EXPECT_EQ(ops.row_pass.real_mults, 16 * full_fft_mults(64));
  EXPECT_EQ(ops.col_pass.real_mults, 64 * full_fft_mults(16));
  EXPECT_EQ(ops.total().real_mults,
            16 * full_fft_mults(64) + 64 * full_fft_mults(16));
}

TEST(Fft2d, SeparabilityRowsThenColumns) {
  // 2D of a rank-1 separable signal is the outer product of 1D transforms.
  const std::size_t rows = 8, cols = 8;
  auto row_sig = random_matrix(1, cols, 11);
  auto col_sig = random_matrix(1, rows, 12);
  std::vector<Complex> m(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m[r * cols + c] = col_sig[r] * row_sig[c];
    }
  }
  fft2d(m, rows, cols);
  FftPlan pr(cols), pc(rows);
  pr.forward(row_sig);
  pc.forward(col_sig);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_NEAR(std::abs(m[r * cols + c] - col_sig[r] * row_sig[c]), 0.0,
                  1e-8);
    }
  }
}

}  // namespace
}  // namespace psync::fft
