#include "psync/mesh/memory_interface.hpp"

#include <gtest/gtest.h>

#include <map>

#include "psync/common/check.hpp"
#include "psync/mesh/traffic.hpp"

namespace psync::mesh {
namespace {

MemoryInterfaceParams paper_mi(std::uint32_t t_p) {
  MemoryInterfaceParams p;
  p.reorder_cycles_per_element = t_p;
  p.element_bits = 64;
  p.dram.row_size_bits = 2048;
  p.dram.bus_width_bits = 64;
  p.dram.header_bits = 64;
  return p;
}

MeshParams net(std::uint32_t dim) {
  MeshParams p;
  p.width = dim;
  p.height = dim;
  return p;
}

TEST(MemoryInterface, PerPacketServiceTimeMatchesStageModel) {
  // One 32-element packet: 33 ejection cycles + 32*t_p reorder + 33 DRAM
  // write; the interface must be busy for reorder+write after the tail.
  Mesh m(net(2));
  MemoryInterface mi(paper_mi(1), 32);
  m.set_sink(0, &mi);
  PacketDesc d;
  d.src = 3;
  d.dst = 0;
  d.payload_flits = 32;
  m.inject(d);
  while (!mi.done() && m.cycle() < 10000) m.step();
  ASSERT_TRUE(mi.done());
  EXPECT_EQ(mi.elements_received(), 32u);
  EXPECT_EQ(mi.packets_received(), 1u);
  EXPECT_EQ(mi.reorder_stall_cycles(), 32u);
  EXPECT_EQ(mi.dram_write_cycles(), 33u);
}

TEST(MemoryInterface, SteadyStateCyclesPerElement) {
  // Many back-to-back packets: the non-overlapped stage model costs about
  // (33 + 32*t_p + 33)/32 cycles per element once the pipe is full.
  for (std::uint32_t t_p : {1u, 4u}) {
    Mesh m(net(2));
    const std::uint32_t elements = 512;
    MemoryInterface mi(paper_mi(t_p), 4ULL * elements);
    m.set_sink(0, &mi);
    const auto traffic = transpose_writeback_traffic(m, 0, elements, 32);
    for (const auto& d : traffic) m.inject(d);
    // Node 0 is the memory node and does not send in this generator; adjust
    // the expectation accordingly.
    const std::uint64_t expected = 3ULL * elements;
    Mesh m2(net(2));
    MemoryInterface mi2(paper_mi(t_p), expected);
    m2.set_sink(0, &mi2);
    for (const auto& d : traffic) m2.inject(d);
    while (!mi2.done() && m2.cycle() < 2000000) m2.step();
    ASSERT_TRUE(mi2.done());
    const double cpe = static_cast<double>(mi2.completion_cycle()) /
                       static_cast<double>(expected);
    const double model = (33.0 + 32.0 * t_p + 33.0) / 32.0;
    EXPECT_GT(cpe, model * 0.95);
    EXPECT_LT(cpe, model * 1.4);  // + network fill/drain effects
  }
}

TEST(MemoryInterface, OverlappedStagesApproachPortBound) {
  Mesh m(net(2));
  auto p = paper_mi(4);
  p.overlap_stages = true;
  const std::uint32_t elements = 512;
  MemoryInterface mi(p, 3ULL * elements);
  m.set_sink(0, &mi);
  for (const auto& d : transpose_writeback_traffic(m, 0, elements, 32)) {
    m.inject(d);
  }
  while (!mi.done() && m.cycle() < 2000000) m.step();
  ASSERT_TRUE(mi.done());
  const double cpe = static_cast<double>(mi.completion_cycle()) /
                     (3.0 * elements);
  // Port-bound: ~33/32 cycles per element.
  EXPECT_LT(cpe, 1.4);
}

TEST(MemoryInterface, CollectorSeesEveryElementWithCorrectTag) {
  Mesh m(net(2));
  MemoryInterface mi(paper_mi(1), 64);
  std::map<std::uint64_t, std::uint64_t> collected;  // index -> payload
  mi.set_collector([&](NodeId src, std::uint64_t idx, std::uint64_t word) {
    EXPECT_EQ(src, 2u);
    collected[idx] = word;
  });
  m.set_sink(0, &mi);
  for (int pkt = 0; pkt < 2; ++pkt) {
    PacketDesc d;
    d.src = 2;
    d.dst = 0;
    d.payload_flits = 32;
    d.payload_base = 100 + pkt * 32;  // element tag
    d.words.resize(32);
    for (std::uint32_t i = 0; i < 32; ++i) d.words[i] = 5000u + pkt * 32u + i;
    m.inject(d);
  }
  while (!mi.done() && m.cycle() < 10000) m.step();
  ASSERT_TRUE(mi.done());
  ASSERT_EQ(collected.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(collected.count(100 + i));
    EXPECT_EQ(collected[100 + i], 5000 + i);
  }
}

TEST(MemoryInterface, PartialFinalRowIsFlushed) {
  // 16 elements = half a DRAM row; the final flush must still write it.
  Mesh m(net(2));
  MemoryInterface mi(paper_mi(1), 16);
  m.set_sink(0, &mi);
  PacketDesc d;
  d.src = 1;
  d.dst = 0;
  d.payload_flits = 16;
  m.inject(d);
  while (!mi.done() && m.cycle() < 10000) m.step();
  ASSERT_TRUE(mi.done());
  EXPECT_EQ(mi.dram_write_cycles(), 33u);  // one (padded) row transaction
}

TEST(MemoryInterface, RejectsMisalignedRowConfig) {
  MemoryInterfaceParams p;
  p.element_bits = 96;  // does not divide 2048
  EXPECT_THROW(MemoryInterface(p, 1), SimulationError);
}

}  // namespace
}  // namespace psync::mesh
