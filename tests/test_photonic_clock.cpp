#include "psync/photonic/clock.hpp"

#include <gtest/gtest.h>

#include "psync/common/units.hpp"

namespace psync::photonic {
namespace {

ClockParams nominal() {
  ClockParams c;
  c.frequency_ghz = GigaHertz{10.0};
  c.group_velocity_cm_per_ns = 7.0;
  c.detect_latency_ps = 20;
  return c;
}

TEST(PhotonicClock, PeriodExact) {
  PhotonicClock clk(nominal());
  EXPECT_EQ(clk.period_ps(), 100);
}

TEST(PhotonicClock, FlightTimeLinearInPosition) {
  PhotonicClock clk(nominal());
  // 7 cm at 7 cm/ns = 1 ns = 1000 ps.
  EXPECT_EQ(clk.flight_ps(units::cm_to_um(7.0)), 1000);
  EXPECT_EQ(clk.flight_ps(units::cm_to_um(3.5)), 500);
  EXPECT_EQ(clk.flight_ps(0.0), 0);
}

TEST(PhotonicClock, PerceivedEdgeCombinesAllTerms) {
  auto p = nominal();
  p.launch_time_ps = 1000;
  PhotonicClock clk(p);
  // Edge 3 at 3.5 cm: 1000 + 3*100 + 500 + 20.
  EXPECT_EQ(clk.perceived_edge_ps(units::cm_to_um(3.5), 3), 1820);
}

TEST(PhotonicClock, SkewIsPositionDifference) {
  PhotonicClock clk(nominal());
  const double a = units::cm_to_um(1.0);
  const double b = units::cm_to_um(4.5);
  // 3.5 cm apart at 7 cm/ns = 500 ps of deliberate skew.
  EXPECT_EQ(clk.skew_ps(a, b), 500);
  EXPECT_EQ(clk.skew_ps(b, a), -500);
}

// The paper's central timing fact: a bit modulated on perceived slot s at
// ANY position reaches a downstream point at the same absolute time.
TEST(PhotonicClock, ArrivalIndependentOfModulatorPosition) {
  PhotonicClock clk(nominal());
  const double terminus = units::cm_to_um(10.0);
  const TimePs from_near = clk.arrival_at_ps(units::cm_to_um(1.0), 5, terminus);
  const TimePs from_mid = clk.arrival_at_ps(units::cm_to_um(5.0), 5, terminus);
  const TimePs from_far = clk.arrival_at_ps(units::cm_to_um(9.9), 5, terminus);
  EXPECT_EQ(from_near, from_mid);
  EXPECT_EQ(from_mid, from_far);
}

TEST(PhotonicClock, ConsecutiveSlotsArriveOnePeriodApart) {
  PhotonicClock clk(nominal());
  const double x = units::cm_to_um(2.0);
  const double terminus = units::cm_to_um(8.0);
  for (Cycle s = 0; s < 10; ++s) {
    EXPECT_EQ(clk.arrival_at_ps(x, s + 1, terminus) -
                  clk.arrival_at_ps(x, s, terminus),
              clk.period_ps());
  }
}

TEST(PhotonicClock, SkewTableMatchesPerceivedEdges) {
  PhotonicClock clk(nominal());
  const std::vector<double> taps{0.0, units::cm_to_um(1.0),
                                 units::cm_to_um(2.0)};
  const auto table = skew_table(clk, taps);
  ASSERT_EQ(table.size(), 3u);
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_EQ(table[i], clk.perceived_edge_ps(taps[i], 0));
  }
  // ~1 cm pitch at 7 cm/ns: ~143 ps between taps (integer-rounded).
  EXPECT_NEAR(static_cast<double>(table[1] - table[0]), 1e4 / 7.0 * 1e-1, 1.0);
}

TEST(PhotonicClock, UpstreamArrivalRejected) {
  PhotonicClock clk(nominal());
  EXPECT_DEATH(
      (void)clk.arrival_at_ps(units::cm_to_um(5.0), 0, units::cm_to_um(1.0)),
      "downstream");
}

}  // namespace
}  // namespace psync::photonic
