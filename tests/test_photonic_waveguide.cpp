#include "psync/photonic/waveguide.hpp"

#include <gtest/gtest.h>

#include "psync/common/units.hpp"

namespace psync::photonic {
namespace {

TEST(Waveguide, FlightTimeMatchesPaperVelocity) {
  // Paper: light travels ~7 cm/ns in silicon; 7 cm of waveguide = 1 ns.
  WaveguideParams wp;
  Waveguide wg(wp, units::cm_to_um(7.0), 0.0, 0);
  EXPECT_NEAR(wg.flight_time_ps().value(), 1000.0, 1e-9);
  EXPECT_NEAR(wg.flight_time_to_ps(units::cm_to_um(3.5)).value(), 500.0,
              1e-9);
}

TEST(Waveguide, LossComposition) {
  WaveguideParams wp;
  wp.loss_straight_db_per_cm = 1.0;
  wp.loss_curved_db_per_cm = 3.0;
  wp.loss_per_bend_db = 0.05;
  Waveguide wg(wp, units::cm_to_um(2.0), units::cm_to_um(0.5), 4);
  EXPECT_NEAR(wg.total_loss_db().value(), 2.0 * 1.0 + 0.5 * 3.0 + 4 * 0.05,
              1e-12);
}

TEST(Waveguide, LossToIsProportional) {
  WaveguideParams wp;
  Waveguide wg(wp, units::cm_to_um(4.0), 0.0, 0);
  EXPECT_NEAR(wg.loss_to_db(units::cm_to_um(2.0)).value(),
              wg.total_loss_db().value() / 2.0,
              1e-12);
  EXPECT_NEAR(wg.loss_to_db(0.0).value(), 0.0, 1e-12);
}

TEST(Serpentine, GeometryForSingleRow) {
  SerpentineLayout s;
  s.width_um = units::cm_to_um(2.0);
  s.height_um = units::cm_to_um(2.0);
  s.rows = 1;
  EXPECT_DOUBLE_EQ(s.total_length_um(), units::cm_to_um(2.0));
  EXPECT_EQ(s.bends(), 0u);
  EXPECT_DOUBLE_EQ(s.curved_um(), 0.0);
}

TEST(Serpentine, GeometryForGrid) {
  // 4 passes over a 2 cm die: 4 x 2 cm straight + 3 turnarounds of 0.5 cm.
  SerpentineLayout s = serpentine_for_grid(4, 2.0);
  EXPECT_DOUBLE_EQ(s.straight_um(), units::cm_to_um(8.0));
  EXPECT_DOUBLE_EQ(s.curved_um(), units::cm_to_um(1.5));
  EXPECT_EQ(s.bends(), 6u);
  EXPECT_DOUBLE_EQ(s.total_length_um(), units::cm_to_um(9.5));
}

TEST(Serpentine, TapPositionsEvenAndOrdered) {
  SerpentineLayout s = serpentine_for_grid(2, 2.0);
  const auto taps = s.tap_positions_um(8);
  ASSERT_EQ(taps.size(), 8u);
  const double pitch = s.total_length_um() / 8.0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_NEAR(taps[i], pitch * (static_cast<double>(i) + 0.5), 1e-9);
    if (i > 0) {
      EXPECT_GT(taps[i], taps[i - 1]);
    }
  }
  EXPECT_LT(taps.back(), s.total_length_um());
}

TEST(Serpentine, BuildWaveguideMatchesLayout) {
  SerpentineLayout s = serpentine_for_grid(8, 2.0);
  WaveguideParams wp;
  const Waveguide wg = s.build(wp);
  EXPECT_DOUBLE_EQ(wg.length_um(), s.total_length_um());
  EXPECT_EQ(wg.bends(), s.bends());
}

TEST(Waveguide, LongerBusSameVelocity) {
  // Distance independence: doubling length doubles flight time exactly,
  // regardless of composition.
  WaveguideParams wp;
  Waveguide a(wp, units::cm_to_um(4.0), 0.0, 0);
  Waveguide b(wp, units::cm_to_um(8.0), 0.0, 0);
  EXPECT_NEAR(b.flight_time_ps().value(), 2.0 * a.flight_time_ps().value(),
              1e-9);
}

}  // namespace
}  // namespace psync::photonic
