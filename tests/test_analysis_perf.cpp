#include "psync/analysis/perf_model.hpp"

#include <gtest/gtest.h>

namespace psync::analysis {
namespace {

TEST(PerfModel, Model1SpecialCase) {
  // eta = t_c / (P*t_d + t_c): equal t_c and P*t_d -> 50%.
  EXPECT_DOUBLE_EQ(model1_efficiency(4, Ns{25.0}, Ns{100.0}), 0.5);
  EXPECT_DOUBLE_EQ(model1_efficiency(1, Ns{0.0}, Ns{100.0}), 1.0);
}

TEST(PerfModel, ModelIIReducesToModelIAtK1) {
  ModelInputs in;
  in.processors = 16;
  in.blocks = 1;
  in.t_dk_ns = Ns{10.0};
  in.t_ck_ns = Ns{200.0};
  EXPECT_DOUBLE_EQ(efficiency(in),
                   model1_efficiency(16, Ns{10.0}, Ns{200.0}));
}

TEST(PerfModel, BalancedCaseTotalTime) {
  // P*t_dk == t_ck: T = (k+1)*t_ck + t_cf (Eq. 11).
  ModelInputs in;
  in.processors = 8;
  in.blocks = 4;
  in.t_ck_ns = Ns{80.0};
  in.t_dk_ns = Ns{10.0};  // P*t_dk = 80 = t_ck
  in.t_cf_ns = Ns{40.0};
  EXPECT_DOUBLE_EQ(total_time_ns(in).value(), 5 * 80.0 + 40.0);
  EXPECT_TRUE(compute_bound(in));
}

TEST(PerfModel, ComputeBoundCase1Efficiency) {
  // Case 1 (Eq. 15): eta = t_c / (P*t_dk + t_c).
  ModelInputs in;
  in.processors = 4;
  in.blocks = 8;
  in.t_ck_ns = Ns{100.0};
  in.t_dk_ns = Ns{20.0};  // P*t_dk = 80 < 100
  const double t_c = compute_time_ns(in).value();
  EXPECT_DOUBLE_EQ(efficiency(in), t_c / (4 * 20.0 + t_c));
}

TEST(PerfModel, CommunicationBoundCase2Efficiency) {
  // Case 2 (Eq. 16): eta = t_c / (P*k*t_dk + t_ck).
  ModelInputs in;
  in.processors = 4;
  in.blocks = 8;
  in.t_ck_ns = Ns{50.0};
  in.t_dk_ns = Ns{20.0};  // P*t_dk = 80 > 50
  EXPECT_FALSE(compute_bound(in));
  const double t_c = compute_time_ns(in).value();
  EXPECT_DOUBLE_EQ(efficiency(in), t_c / (4 * 8 * 20.0 + 50.0));
}

TEST(PerfModel, EfficiencyMaximizedAtBalance) {
  // Scanning t_dk: efficiency peaks where P*t_dk = t_ck and declines in the
  // communication-bound regime.
  ModelInputs in;
  in.processors = 8;
  in.blocks = 16;
  in.t_ck_ns = Ns{80.0};
  double best = 0.0;
  double best_tdk = 0.0;
  for (double tdk = 1.0; tdk <= 30.0; tdk += 0.5) {
    in.t_dk_ns = Ns{tdk};
    if (efficiency(in) > best) {
      best = efficiency(in);
      best_tdk = tdk;
    }
  }
  EXPECT_LE(best_tdk, 80.0 / 8.0 + 0.51);
  // Once compute bound, smaller t_dk barely helps: Case 1 efficiency at
  // t_dk -> 0 approaches t_c/(t_c) = 1 but through P*t_dk only. Peak must
  // be the smallest t_dk in Case 1 -- confirm balance is the Case-2/Case-1
  // boundary for fixed bandwidth-style tradeoffs instead:
  in.t_dk_ns = Ns{10.0};  // balanced
  EXPECT_TRUE(compute_bound(in));
  in.t_dk_ns = Ns{10.5};  // just over
  EXPECT_FALSE(compute_bound(in));
}

TEST(PerfModel, DeliveryTimeEq9) {
  // t_d = lambda + S_b*S_s/W_p: 1024 samples * 64 bits at 409.6 Gb/s.
  EXPECT_NEAR(
      delivery_time_ns(Ns{0.0}, 1024 * 64, GigabitsPerSec{409.6}).value(),
      160.0, 1e-9);
  EXPECT_NEAR(
      delivery_time_ns(Ns{5.0}, 1024 * 64, GigabitsPerSec{409.6}).value(),
      165.0, 1e-9);
}

TEST(PerfModel, BalancedBandwidthEq20) {
  // Table I, k=1: W_p = S_b*S_s*P/t_ck = 1024*64*256/40960 = 409.6 Gb/s.
  EXPECT_NEAR(balanced_bandwidth_gbps(256, 1024 * 64, Ns{40960.0}).value(),
              409.6, 1e-9);
  // k=64: 16*64*256/256 = 1024.
  EXPECT_NEAR(balanced_bandwidth_gbps(256, 16 * 64, Ns{256.0}).value(), 1024.0,
              1e-9);
}

TEST(PerfModel, MoreBlocksNeverHurtWhenBalanced) {
  // With balanced delivery at every k, efficiency grows monotonically in k
  // (less start-up/wind-down).
  double prev = 0.0;
  for (double k = 1; k <= 64; k *= 2) {
    ModelInputs in;
    in.processors = 256;
    in.blocks = k;
    in.t_ck_ns = Ns{1000.0 / k};
    in.t_dk_ns = in.t_ck_ns / 256.0;
    const double eta = efficiency(in);
    EXPECT_GT(eta, prev);
    prev = eta;
  }
}

}  // namespace
}  // namespace psync::analysis
