#include "psync/photonic/energy.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync::photonic {
namespace {

PhotonicEnergyParams nominal() {
  PhotonicEnergyParams p;  // defaults are the Fig. 5 configuration
  return p;
}

TEST(PhotonicEnergy, BreakdownComponentsPositive) {
  const auto e = pscan_energy_per_bit(nominal(), 16);
  EXPECT_GT(e.laser_fj_per_bit.value(), 0.0);
  EXPECT_GT(e.modulator_fj_per_bit.value(), 0.0);
  EXPECT_GT(e.receiver_fj_per_bit.value(), 0.0);
  EXPECT_GT(e.thermal_fj_per_bit.value(), 0.0);
  EXPECT_GT(e.serdes_fj_per_bit.value(), 0.0);
  EXPECT_NEAR(e.total_fj_per_bit().value(),
              (e.laser_fj_per_bit + e.modulator_fj_per_bit +
               e.receiver_fj_per_bit + e.thermal_fj_per_bit +
               e.serdes_fj_per_bit + e.repeater_fj_per_bit)
                  .value(),
              1e-12);
}

TEST(PhotonicEnergy, NearlyFlatInNodeCount) {
  // The headline property: energy/bit grows only weakly with node count
  // (laser sizing + thermal tuning), with no per-hop term.
  const auto e16 = pscan_energy_per_bit(nominal(), 16);
  const auto e256 = pscan_energy_per_bit(nominal(), 256);
  EXPECT_LT(e256.total_fj_per_bit() / e16.total_fj_per_bit(), 3.0);
}

TEST(PhotonicEnergy, ThermalScalesWithRings) {
  const auto e16 = pscan_energy_per_bit(nominal(), 16);
  const auto e64 = pscan_energy_per_bit(nominal(), 64);
  EXPECT_NEAR(e64.thermal_fj_per_bit / e16.thermal_fj_per_bit, 4.0, 1e-9);
}

TEST(PhotonicEnergy, LowUtilizationCostsMorePerBit) {
  const auto full = pscan_energy_per_bit(nominal(), 64, 2.0, 1.0);
  const auto half = pscan_energy_per_bit(nominal(), 64, 2.0, 0.5);
  // Static power (laser, thermal) amortizes over fewer bits.
  EXPECT_GT(half.laser_fj_per_bit.value(),
            (full.laser_fj_per_bit * 1.9).value());
  EXPECT_GT(half.thermal_fj_per_bit.value(),
            (full.thermal_fj_per_bit * 1.9).value());
  // Dynamic per-bit terms unchanged.
  EXPECT_DOUBLE_EQ(half.modulator_fj_per_bit.value(),
                   full.modulator_fj_per_bit.value());
}

TEST(PhotonicEnergy, RepeatersAppearOnLossyBuses) {
  auto p = nominal();
  p.waveguide.loss_straight_db_per_cm = 3.0;
  const auto e = pscan_energy_per_bit(p, 1024, 2.0);
  // 32 serpentine rows x 2 cm x 3 dB/cm cannot be closed by one span.
  EXPECT_GT(e.spans, 1u);
  EXPECT_GT(e.repeater_fj_per_bit.value(), 0.0);
}

TEST(PhotonicEnergy, SingleSpanOnShortBus) {
  const auto e = pscan_energy_per_bit(nominal(), 16, 2.0);
  EXPECT_EQ(e.spans, 1u);
  EXPECT_DOUBLE_EQ(e.repeater_fj_per_bit.value(), 0.0);
}

TEST(PhotonicEnergy, RejectsBadUtilization) {
  EXPECT_THROW(pscan_energy_per_bit(nominal(), 16, 2.0, 0.0),
               SimulationError);
  EXPECT_THROW(pscan_energy_per_bit(nominal(), 16, 2.0, 1.5),
               SimulationError);
}

TEST(PhotonicEnergy, TransactionEnergyMatchesPerBitAtFullUtilization) {
  // A gap-free transaction moving B bits spans exactly B / rate seconds;
  // the activity-based accounting must then agree with the per-bit model.
  const auto p = nominal();
  const std::size_t nodes = 64;
  const std::uint64_t bits = 1'000'000;
  // Span for 1 Mbit at 320 Gb/s: 3.125 us = 3,125,000 ps.
  const std::int64_t span_ps = 3'125'000;
  const auto txn = transaction_energy(p, nodes, span_ps, bits);
  const auto per_bit = pscan_energy_per_bit(p, nodes);
  EXPECT_NEAR(txn.pj_per_bit, per_bit.total_pj_per_bit().value(),
              per_bit.total_pj_per_bit().value() * 1e-6);
}

TEST(PhotonicEnergy, IdleSpanCostsStaticPowerOnly) {
  // Doubling the span (half utilization) adds exactly the static share.
  const auto p = nominal();
  const auto tight = transaction_energy(p, 64, 3'125'000, 1'000'000);
  const auto slack = transaction_energy(p, 64, 6'250'000, 1'000'000);
  EXPECT_NEAR(slack.dynamic_pj.value(), tight.dynamic_pj.value(), 1e-9);
  EXPECT_NEAR(slack.static_pj.value(), (2.0 * tight.static_pj).value(),
              1e-6 * slack.static_pj.value());
  EXPECT_GT(slack.pj_per_bit, tight.pj_per_bit);
}

TEST(PhotonicEnergy, WdmAggregateRate) {
  WdmPlan w;  // 32 x 10 Gb/s
  EXPECT_DOUBLE_EQ(w.aggregate_gbps().value(), 320.0);
}

}  // namespace
}  // namespace psync::photonic
