#include "psync/fft/four_step.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/core/psync_machine.hpp"
#include "psync/fft/transpose.hpp"

namespace psync::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) {
    x = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return v;
}

TEST(FourStep, FactorsBalance) {
  std::size_t r = 0, c = 0;
  four_step_factor(64, &r, &c);
  EXPECT_EQ(r, 8u);
  EXPECT_EQ(c, 8u);
  four_step_factor(128, &r, &c);
  EXPECT_EQ(r, 8u);
  EXPECT_EQ(c, 16u);
  four_step_factor(4, &r, &c);
  EXPECT_EQ(r, 2u);
  EXPECT_EQ(c, 2u);
  EXPECT_THROW(four_step_factor(24, &r, &c), SimulationError);
  EXPECT_THROW(four_step_factor(2, &r, &c), SimulationError);
}

class FourStepSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FourStepSizes, MatchesMonolithicFft) {
  const std::size_t n = GetParam();
  auto four = random_signal(n, n);
  auto mono = four;
  fft1d_four_step(four);
  FftPlan plan(n);
  plan.forward(mono);
  EXPECT_LT(max_abs_diff(four, mono), 1e-8 * static_cast<double>(n));
}

TEST_P(FourStepSizes, MatchesNaiveDftOnSmallSizes) {
  const std::size_t n = GetParam();
  if (n > 512) GTEST_SKIP() << "naive DFT too slow";
  auto sig = random_signal(n, 3 * n);
  const auto ref = naive_dft(sig);
  fft1d_four_step(sig);
  EXPECT_LT(max_abs_diff(sig, ref), 1e-8 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FourStepSizes,
                         ::testing::Values(4, 16, 64, 128, 512, 2048, 8192));

TEST(FourStep, OpCountTracksDecomposition) {
  std::vector<Complex> sig = random_signal(256, 9);
  const OpCount ops = fft1d_four_step(sig);
  // R = C = 16: 16 FFTs of 16 (x2 passes) + 256 twiddle multiplies.
  const std::uint64_t fft_mults = 2ull * 16 * full_fft_mults(16);
  EXPECT_EQ(ops.real_mults, fft_mults + 4ull * 256);
}

TEST(FourStep, TwiddleUnitCircle) {
  for (std::size_t r : {0u, 3u, 7u}) {
    for (std::size_t q : {0u, 1u, 5u}) {
      const Complex w = four_step_twiddle(64, r, q);
      EXPECT_NEAR(std::abs(w), 1.0, 1e-12);
    }
  }
  // W^0 = 1.
  EXPECT_NEAR(std::abs(four_step_twiddle(64, 0, 13) - Complex(1.0, 0.0)), 0.0,
              1e-12);
}

TEST(FourStep, LoadStoreAreExactLayoutMaps) {
  const std::size_t rows = 4, cols = 8;
  auto x = random_signal(rows * cols, 11);
  const auto m = four_step_load(x, rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(m[r * cols + c], x[c * rows + r]);
    }
  }
  // store is the inverse map of the transposed matrix layout.
  std::vector<Complex> mt(m.size());
  transpose(m, mt, rows, cols);
  const auto back = four_step_store(mt, rows, cols);
  // back[s*C + q] = mt[q][s] = m[s][q] = x[q*R + s]: store(transpose(load))
  // is the (R x C) <-> (C x R) index swap of the original.
  for (std::size_t s = 0; s < rows; ++s) {
    for (std::size_t q = 0; q < cols; ++q) {
      EXPECT_EQ(back[s * cols + q], x[q * rows + s]);
    }
  }
}

// The machine-level 1D FFT: the paper's claim that the 2D machinery
// generalizes to large 1D transforms, end to end on the P-sync simulator.
TEST(FourStep, PsyncMachineRunsLarge1dFft) {
  core::PsyncMachineParams p;
  p.processors = 8;
  p.matrix_rows = 32;   // R
  p.matrix_cols = 64;   // C: N = 2048-point 1D FFT
  p.delivery_blocks = 4;
  p.head.dram.row_switch_cycles = 0;
  core::PsyncMachine m(p);
  const auto input = random_signal(2048, 21);
  const auto rep = m.run_fft1d(input);
  EXPECT_TRUE(rep.sca_gap_free);
  EXPECT_EQ(rep.sca_collisions, 0u);
  EXPECT_LT(rep.max_error_vs_reference, 1e-3);
  // Phases include the twiddle stage between the passes.
  EXPECT_GT(rep.phase("twiddle").duration_ns(), 0.0);
  EXPECT_GT(rep.phase("sca_transpose").duration_ns(), 0.0);
}

TEST(FourStep, Machine1dMatchesMonolithicPlanExactlyAtFloat32) {
  core::PsyncMachineParams p;
  p.processors = 4;
  p.matrix_rows = 16;
  p.matrix_cols = 16;
  p.head.dram.row_switch_cycles = 0;
  core::PsyncMachine m(p);
  const auto input = random_signal(256, 5);
  m.run_fft1d(input, /*verify=*/false);
  const auto got = m.result_1d();

  std::vector<Complex> ref(input);
  FftPlan plan(256);
  plan.forward(ref);
  double max_abs = 0.0;
  for (const auto& v : ref) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_LT(max_abs_diff(got, ref) / max_abs, 1e-4);
}

TEST(FourStep, MachineReportsTwiddleFlops) {
  core::PsyncMachineParams p;
  p.processors = 4;
  p.matrix_rows = 16;
  p.matrix_cols = 16;
  p.head.dram.row_switch_cycles = 0;
  core::PsyncMachine m(p);
  const auto input = random_signal(256, 6);
  const auto r1d = m.run_fft1d(input, false);

  core::PsyncMachine m2(p);
  const auto r2d = m2.run_fft2d(input, false);
  // The 1D flow does strictly more arithmetic (the twiddle pass).
  EXPECT_GT(r1d.flops, r2d.flops);
  EXPECT_EQ(r1d.flops - r2d.flops, 256u * 6u);
}

}  // namespace
}  // namespace psync::fft
