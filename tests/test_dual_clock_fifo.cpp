#include "psync/core/dual_clock_fifo.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync::core {
namespace {

TEST(DualClockFifo, FifoOrderPreserved) {
  DualClockFifo f(8);
  for (Word w = 0; w < 5; ++w) f.push(w, static_cast<TimePs>(w * 10));
  for (Word w = 0; w < 5; ++w) {
    EXPECT_EQ(f.pop(static_cast<TimePs>(100 + w)), w);
  }
  EXPECT_TRUE(f.empty());
}

TEST(DualClockFifo, OverflowThrows) {
  DualClockFifo f(2);
  f.push(1, 0);
  f.push(2, 1);
  EXPECT_THROW(f.push(3, 2), SimulationError);
}

TEST(DualClockFifo, UnderflowThrows) {
  DualClockFifo f(2);
  EXPECT_THROW((void)f.pop(100), SimulationError);
}

TEST(DualClockFifo, SynchronizerGapEnforced) {
  DualClockFifo f(4, /*min_domain_gap_ps=*/50);
  f.push(7, 100);
  EXPECT_FALSE(f.can_pop(149));
  EXPECT_THROW((void)f.pop(149), SimulationError);
  EXPECT_TRUE(f.can_pop(150));
  EXPECT_EQ(f.pop(150), 7u);
}

TEST(DualClockFifo, TimeRegressionWithinDomainRejected) {
  DualClockFifo f(4);
  f.push(1, 100);
  EXPECT_THROW(f.push(2, 99), SimulationError);
  (void)f.pop(200);
  f.push(3, 150);  // push domain moved on from 100, fine
  EXPECT_THROW((void)f.pop(199), SimulationError);
}

TEST(DualClockFifo, DomainsAdvanceIndependently) {
  // Pop times may be far behind push times and vice versa, as long as each
  // domain is monotone — that is what "dual clock" means here.
  DualClockFifo f(16);
  f.push(1, 1000);
  EXPECT_EQ(f.pop(2000), 1u);
  f.push(2, 1001);  // push clock barely advanced: legal
  EXPECT_EQ(f.pop(2100), 2u);
}

TEST(DualClockFifo, OccupancyTracking) {
  DualClockFifo f(8);
  for (Word w = 0; w < 6; ++w) f.push(w, static_cast<TimePs>(w));
  (void)f.pop(100);
  (void)f.pop(101);
  f.push(9, 200);
  EXPECT_EQ(f.size(), 5u);
  EXPECT_EQ(f.max_occupancy(), 6u);
  EXPECT_EQ(f.total_pushed(), 7u);
  EXPECT_EQ(f.total_popped(), 2u);
}

// The SCA use case: the core fills at its clock, the waveguide interface
// drains exactly one word per photonic slot. Verify a sufficient-capacity
// FIFO never under- or over-flows for a rate-matched schedule.
TEST(DualClockFifo, RateMatchedScheduleRunsClean) {
  const TimePs core_period = 330;   // ~3 GHz core
  const TimePs slot_period = 400;   // slower drain
  DualClockFifo f(4, 10);
  TimePs push_t = 0, pop_t = 1000;
  std::size_t pushed = 0, popped = 0;
  // Producer stays ahead but capacity bounds the lead; model a window of
  // 200 words with flow control: push only when not full.
  while (popped < 200) {
    if (pushed < 200 && !f.full() && push_t <= pop_t) {
      f.push(pushed, push_t);
      ++pushed;
      push_t += core_period;
    } else if (f.can_pop(pop_t)) {
      EXPECT_EQ(f.pop(pop_t), popped);
      ++popped;
      pop_t += slot_period;
    } else {
      pop_t += slot_period;
    }
  }
  EXPECT_LE(f.max_occupancy(), 4u);
}

TEST(DualClockFifo, ZeroCapacityRejected) {
  EXPECT_THROW(DualClockFifo(0), SimulationError);
  EXPECT_THROW(DualClockFifo(4, -1), SimulationError);
}

}  // namespace
}  // namespace psync::core
