// Cross-module integration tests: the event-driven PSCAN engine, the
// cycle-level mesh, the closed-form analysis and the machine simulators
// must tell one consistent story.
#include <gtest/gtest.h>

#include "psync/analysis/fft_model.hpp"
#include "psync/analysis/transpose_model.hpp"
#include "psync/core/mesh_machine.hpp"
#include "psync/core/psync_machine.hpp"
#include "psync/core/sca.hpp"
#include "psync/dram/controller.hpp"
#include "psync/fft/fft2d.hpp"
#include "psync/fft/transpose.hpp"

namespace psync {
namespace {

TEST(Integration, ScaTransposeBitstreamEqualsSoftwareTranspose) {
  // Drive a real matrix through the SCA transpose gather and check the
  // terminus stream equals fft::transpose of the source.
  const std::size_t p = 8, cols = 16;
  core::ScaEngine engine(core::straight_bus_topology(p, 8.0));
  const auto sched = core::compile_gather_transpose(p, 1, cols);

  std::vector<fft::Complex> matrix(p * cols);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    matrix[i] = {static_cast<double>(i), -static_cast<double>(i)};
  }
  std::vector<std::vector<core::Word>> node_data(p);
  for (std::size_t r = 0; r < p; ++r) {
    node_data[r].resize(cols);
    for (std::size_t c = 0; c < cols; ++c) {
      node_data[r][c] = core::pack_sample(matrix[r * cols + c]);
    }
  }
  const auto g = engine.gather(sched, node_data);
  ASSERT_TRUE(g.gap_free);

  std::vector<fft::Complex> expect(matrix.size());
  fft::transpose(matrix, expect, p, cols);
  const auto words = g.words();
  for (std::size_t i = 0; i < words.size(); ++i) {
    const auto v = core::unpack_sample(words[i]);
    EXPECT_EQ(v.real(), expect[i].real());
    EXPECT_EQ(v.imag(), expect[i].imag());
  }
}

TEST(Integration, EngineGatherTimingMatchesEq23Eq24ThroughDram) {
  // PSCAN side of Table III at 1/64 scale: gather 2^14 samples and land
  // them in DRAM rows; bus cycles must equal P_t * t_t exactly.
  const std::size_t p = 128, n = 128;  // 2^14 samples
  core::ScaEngine engine(core::straight_bus_topology(p, 8.0));
  const auto sched = core::compile_gather_transpose(p, 1, n);
  std::vector<std::vector<core::Word>> data(
      p, std::vector<core::Word>(n, 0xAB));
  const auto g = engine.gather(sched, data);
  ASSERT_TRUE(g.gap_free);

  dram::DramParams dp;
  dp.row_switch_cycles = 0;
  dram::MemoryController mc(dp);
  const auto total_bits = static_cast<std::uint64_t>(p) * n * 64;
  const auto rep = mc.stream_rows(0, dram::row_transactions(dp, total_bits));

  analysis::TransposeParams tp;
  tp.processors = p;
  tp.row_samples = n;
  EXPECT_EQ(rep.bus_cycles, analysis::pscan_writeback_cycles(tp));
}

TEST(Integration, MachineEfficiencySweepMatchesTable1Shape) {
  // Run the real P-sync machine across k and verify its pass-1 window
  // efficiency rises with k like Table I says (start-up/wind-down shrink).
  std::vector<double> etas;
  for (std::size_t k : {1, 4, 8}) {
    core::PsyncMachineParams p;
    p.processors = 8;
    p.matrix_rows = 8;
    p.matrix_cols = 512;
    p.delivery_blocks = k;
    p.bus_length_cm = 0.1;
    p.head.dram.row_switch_cycles = 0;
    core::PsyncMachine m(p);
    std::vector<std::complex<double>> input(8 * 512, {1.0, 0.0});
    const auto rep = m.run_fft2d(input, /*verify=*/false);
    const auto& sc = rep.phase("scatter_rows");
    const auto& ff = rep.phase("row_ffts");
    // Busy time of the pass is the same for all k; window shrinks.
    etas.push_back(1.0 / (ff.end_ns - sc.start_ns));
  }
  EXPECT_GT(etas[1], etas[0]);
  EXPECT_GT(etas[2], etas[1]);
}

TEST(Integration, CycleMeshTransposeVsPscanMatchesTable3Band) {
  // Reduced-scale Table III: 64 processors x 256 samples. The cycle-level
  // mesh against the analytic PSCAN bound must land in the paper's 3-6x
  // band for t_p = 1 and t_p = 4.
  analysis::TransposeParams tp;
  tp.processors = 64;
  tp.row_samples = 256;
  const double pscan = static_cast<double>(analysis::pscan_writeback_cycles(tp));

  for (std::uint32_t t_p : {1u, 4u}) {
    core::MeshMachineParams mp;
    mp.grid = 8;
    mp.matrix_rows = 256;
    mp.matrix_cols = 256;
    mp.elements_per_packet = 32;
    mp.mi.reorder_cycles_per_element = t_p;
    mp.mi.dram.row_switch_cycles = 0;
    core::MeshMachine mesh(mp);
    const auto rep = mesh.run_transpose_writeback(256);
    const double mult = static_cast<double>(rep.completion_cycle) / pscan;
    if (t_p == 1) {
      EXPECT_GT(mult, 2.6) << "t_p=1";
      EXPECT_LT(mult, 3.8) << "t_p=1";
    } else {
      EXPECT_GT(mult, 5.2) << "t_p=4";
      EXPECT_LT(mult, 6.8) << "t_p=4";
    }
  }
}

TEST(Integration, BothMachinesAgreeWithReferenceFftNumerically) {
  std::vector<std::complex<double>> input(32 * 32);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = {std::cos(0.01 * static_cast<double>(i)),
                std::sin(0.02 * static_cast<double>(i))};
  }
  core::PsyncMachineParams pp;
  pp.processors = 16;
  pp.matrix_rows = 32;
  pp.matrix_cols = 32;
  pp.delivery_blocks = 4;
  pp.head.dram.row_switch_cycles = 0;
  core::PsyncMachine psm(pp);
  const auto pr = psm.run_fft2d(input);
  EXPECT_LT(pr.max_error_vs_reference, 1e-4);

  core::MeshMachineParams mp;
  mp.grid = 4;
  mp.matrix_rows = 32;
  mp.matrix_cols = 32;
  mp.elements_per_packet = 8;
  mp.mi.dram.row_switch_cycles = 0;
  core::MeshMachine msm(mp);
  const auto mr = msm.run_fft2d(input);
  EXPECT_LT(mr.max_error_vs_reference, 1e-4);
}

TEST(Integration, PsyncBeatsMeshOnGatherHeavyFlowAtEqualBandwidth) {
  // The headline end-to-end claim at small scale: with matched link rates,
  // the P-sync machine finishes the same 2D FFT faster, and the gap comes
  // from the reorganization phase.
  std::vector<std::complex<double>> input(64 * 64, {1.0, 0.5});
  core::PsyncMachineParams pp;
  pp.processors = 16;
  pp.matrix_rows = 64;
  pp.matrix_cols = 64;
  pp.head.dram.row_switch_cycles = 0;
  core::PsyncMachine psm(pp);
  const auto pr = psm.run_fft2d(input, false);

  core::MeshMachineParams mp;
  mp.grid = 4;
  mp.matrix_rows = 64;
  mp.matrix_cols = 64;
  mp.elements_per_packet = 32;
  mp.mi.dram.row_switch_cycles = 0;
  core::MeshMachine msm(mp);
  const auto mr = msm.run_fft2d(input, false);

  EXPECT_LT(pr.total_ns, mr.total_ns);
  EXPECT_LT(pr.reorg_ns, mr.reorg_ns);
}

}  // namespace
}  // namespace psync
