#include "psync/mesh/traffic.hpp"

#include <gtest/gtest.h>

#include <set>

namespace psync::mesh {
namespace {

Mesh make_mesh(std::uint32_t dim) {
  MeshParams p;
  p.width = dim;
  p.height = dim;
  return Mesh(p);
}

TEST(Traffic, PayloadEncodingRoundTrips) {
  const auto p = encode_payload(1023, 0xDEADBEEF);
  EXPECT_EQ(payload_src(p), 1023u);
  EXPECT_EQ(payload_index(p), 0xDEADBEEFu);
}

TEST(Traffic, TransposeWritebackCoversAllSources) {
  Mesh m = make_mesh(4);
  const auto t = transpose_writeback_traffic(m, 5, 16, 4);
  // 15 senders (all but the memory node) x 4 packets each.
  EXPECT_EQ(t.size(), 15u * 4u);
  std::set<NodeId> sources;
  for (const auto& d : t) {
    EXPECT_EQ(d.dst, 5u);
    EXPECT_NE(d.src, 5u);
    EXPECT_EQ(d.payload_flits, 4u);
    sources.insert(d.src);
  }
  EXPECT_EQ(sources.size(), 15u);
}

TEST(Traffic, ScatterMirrorsGather) {
  Mesh m = make_mesh(4);
  const auto t = scatter_traffic(m, 0, 8, 4);
  EXPECT_EQ(t.size(), 15u * 2u);
  for (const auto& d : t) {
    EXPECT_EQ(d.src, 0u);
    EXPECT_NE(d.dst, 0u);
  }
}

TEST(Traffic, UniformRandomValidEndpoints) {
  Mesh m = make_mesh(4);
  Rng rng(1);
  const auto t = uniform_random_traffic(m, 500, 2, rng);
  EXPECT_EQ(t.size(), 500u);
  for (const auto& d : t) {
    EXPECT_LT(d.src, m.nodes());
    EXPECT_LT(d.dst, m.nodes());
    EXPECT_NE(d.src, d.dst);
  }
}

TEST(Traffic, NearestCornerPartitionsTheMesh) {
  Mesh m = make_mesh(4);
  // Each quadrant maps to its own corner.
  EXPECT_EQ(nearest_corner(m, m.node_at(0, 0)), m.node_at(0, 0));
  EXPECT_EQ(nearest_corner(m, m.node_at(1, 1)), m.node_at(0, 0));
  EXPECT_EQ(nearest_corner(m, m.node_at(2, 1)), m.node_at(3, 0));
  EXPECT_EQ(nearest_corner(m, m.node_at(1, 2)), m.node_at(0, 3));
  EXPECT_EQ(nearest_corner(m, m.node_at(3, 3)), m.node_at(3, 3));
}

TEST(Traffic, GatherToCornersExcludesCornersThemselves) {
  Mesh m = make_mesh(4);
  const auto t = gather_to_corners_traffic(m, 8, 4);
  // 16 nodes - 4 corners = 12 senders x 2 packets.
  EXPECT_EQ(t.size(), 12u * 2u);
  for (const auto& d : t) {
    EXPECT_EQ(nearest_corner(m, d.src), d.dst);
  }
}

TEST(Traffic, RejectsIndivisiblePacketization) {
  Mesh m = make_mesh(2);
  EXPECT_DEATH((void)transpose_writeback_traffic(m, 0, 10, 4), "");
}

}  // namespace
}  // namespace psync::mesh
