#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/core/mesh_machine.hpp"

namespace psync::core {
namespace {

MeshMachineParams cfg(std::size_t grid) {
  MeshMachineParams p;
  p.grid = grid;
  p.matrix_rows = grid * grid;
  p.matrix_cols = 256;
  p.elements_per_packet = 32;
  p.mi.reorder_cycles_per_element = 1;
  p.mi.dram.row_switch_cycles = 0;
  return p;
}

TEST(Multiport, AllElementsLandAcrossPorts) {
  MeshMachine m(cfg(8));
  const auto rep = m.run_transpose_writeback_multiport(256, 4);
  EXPECT_EQ(rep.elements, 64ULL * 256);
  EXPECT_EQ(rep.packets, 64ULL * 8);
}

TEST(Multiport, OnePortMatchesSinglePortPath) {
  MeshMachine a(cfg(8));
  MeshMachine b(cfg(8));
  const auto single = a.run_transpose_writeback(256);
  const auto multi = b.run_transpose_writeback_multiport(256, 1);
  EXPECT_EQ(single.elements, multi.elements);
  // Same port count, same bottleneck: completion within a few percent (the
  // traffic layouts differ only in packet tags).
  const double rel = static_cast<double>(multi.completion_cycle) /
                     static_cast<double>(single.completion_cycle);
  EXPECT_GT(rel, 0.95);
  EXPECT_LT(rel, 1.05);
}

TEST(Multiport, MorePortsCutCompletionNearLinearly) {
  std::int64_t cycles[3];
  int i = 0;
  for (std::uint32_t ports : {1u, 2u, 4u}) {
    MeshMachine m(cfg(8));
    cycles[i++] = m.run_transpose_writeback_multiport(256, ports).completion_cycle;
  }
  // Port-bound workload: 2 ports ~2x, 4 ports ~4x (within 35% for network
  // effects — the corners also get closer to their sources).
  EXPECT_GT(static_cast<double>(cycles[0]) / static_cast<double>(cycles[1]),
            1.6);
  EXPECT_GT(static_cast<double>(cycles[1]) / static_cast<double>(cycles[2]),
            1.6);
}

TEST(Multiport, StillSlowerThanPscanAtEqualAggregateBandwidth) {
  // The paper's framing: even with 4-way memory parallelism, the mesh's
  // per-port stage costs keep it behind a single PSCAN at equal aggregate
  // bandwidth. 4 ports x 1 flit/cycle = 4x the PSCAN's 64-bit bus rate, so
  // normalize: PSCAN optimum for this problem is elements*33/32 cycles at
  // 1 word/cycle; the 4-port mesh serves elements/4 per port at ~3 cycles
  // per element -> still ~0.75 elements/cycle aggregate < 1.
  MeshMachine m(cfg(8));
  const auto rep = m.run_transpose_writeback_multiport(256, 4);
  const double aggregate_cycles_per_element =
      static_cast<double>(rep.completion_cycle) /
      static_cast<double>(rep.elements) * 4.0;
  EXPECT_GT(aggregate_cycles_per_element, 33.0 / 32.0);
}

TEST(Multiport, RejectsBadPortCounts) {
  MeshMachine m(cfg(4));
  EXPECT_THROW((void)m.run_transpose_writeback_multiport(256, 3),
               SimulationError);
}

}  // namespace
}  // namespace psync::core
