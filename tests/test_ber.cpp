#include "psync/photonic/ber.hpp"

#include <gtest/gtest.h>

namespace psync::photonic {
namespace {

TEST(Ber, ReferencePointIs1e9AtSensitivity) {
  // Q = 6 -> BER ~ 1e-9 (the classic OOK reference).
  EXPECT_NEAR(ber_at_margin(DecibelsDb{0.0}), 1e-9, 5e-10);
}

TEST(Ber, QScalesWithPowerMargin) {
  EXPECT_DOUBLE_EQ(q_factor(DecibelsDb{0.0}), 6.0);
  EXPECT_NEAR(q_factor(DecibelsDb{3.0103}), 12.0, 1e-3);   // +3 dB doubles Q
  EXPECT_NEAR(q_factor(DecibelsDb{-3.0103}), 3.0, 1e-3);
}

TEST(Ber, MonotoneInMargin) {
  double prev = 1.0;
  for (double m = -6.0; m <= 4.0; m += 0.5) {
    const double b = ber_at_margin(DecibelsDb{m});
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(Ber, NoEyeMeansCoinFlip) {
  EXPECT_DOUBLE_EQ(ber_from_q(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ber_from_q(-1.0), 0.5);
}

TEST(Ber, WorstCaseMarginTracksLinkBudget) {
  LinkBudgetParams p;
  const std::size_t n_max = max_segments(p);
  // At the Eq. 3 bound the margin is tiny but non-negative; one segment
  // past it goes negative.
  EXPECT_GE(worst_case_margin_db(p, n_max).value(), 0.0);
  EXPECT_LT(worst_case_margin_db(p, n_max).value(),
            segment_loss_db(p).value() + 1e-9);
  EXPECT_LT(worst_case_margin_db(p, n_max + 1).value(), 0.0);
}

TEST(Ber, ReliabilityCliffAtScalingBound) {
  // Expected errors in a 2^20-bit SCA: negligible with 3 dB of margin,
  // catastrophic 3 dB past the bound.
  LinkBudgetParams p;
  const std::size_t n_max = max_segments(p);
  const DecibelsDb margin_ok = worst_case_margin_db(p, n_max / 2);
  const DecibelsDb margin_bad{-3.0};
  EXPECT_LT(expected_bit_errors(margin_ok, 1ULL << 20), 1e-3);
  EXPECT_GT(expected_bit_errors(margin_bad, 1ULL << 20), 100.0);
}

TEST(Ber, ExpectedErrorsScaleLinearlyInBits) {
  const double one = expected_bit_errors(DecibelsDb{-2.0}, 1'000'000);
  const double two = expected_bit_errors(DecibelsDb{-2.0}, 2'000'000);
  EXPECT_NEAR(two, 2.0 * one, 1e-12 * two);
}

}  // namespace
}  // namespace psync::photonic
