#include "psync/core/comm_program.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync::core {
namespace {

TEST(CpStride, ExpandsToEntries) {
  CpStride s{/*first=*/3, /*burst=*/2, /*stride=*/10, /*count=*/3,
             CpAction::kDrive};
  const auto e = s.expand();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0].begin, 3);
  EXPECT_EQ(e[1].begin, 13);
  EXPECT_EQ(e[2].begin, 23);
  for (const auto& x : e) EXPECT_EQ(x.length, 2);
  EXPECT_EQ(s.slots(), 6);
  EXPECT_EQ(s.end(), 25);
}

TEST(CommProgram, EntriesSortedAcrossStrides) {
  CommProgram cp;
  cp.add(CpStride{100, 1, 1, 1, CpAction::kDrive});
  cp.add(CpStride{0, 1, 10, 5, CpAction::kListen});
  const auto e = cp.entries();
  ASSERT_EQ(e.size(), 6u);
  for (std::size_t i = 1; i < e.size(); ++i) {
    EXPECT_GT(e[i].begin, e[i - 1].begin);
  }
}

TEST(CommProgram, OverlapWithinProgramThrows) {
  CommProgram cp;
  cp.add(CpStride{0, 4, 4, 1, CpAction::kDrive});
  cp.add(CpStride{2, 4, 4, 1, CpAction::kDrive});
  EXPECT_THROW((void)cp.entries(), SimulationError);
}

TEST(CommProgram, SelfOverlappingStrideRejected) {
  CommProgram cp;
  EXPECT_THROW(cp.add(CpStride{0, 4, 2, 3, CpAction::kDrive}),
               SimulationError);
}

TEST(CommProgram, SlotCountsByAction) {
  CommProgram cp;
  cp.add(CpStride{0, 2, 8, 4, CpAction::kDrive});
  cp.add(CpStride{4, 1, 8, 4, CpAction::kListen});
  EXPECT_EQ(cp.slot_count(CpAction::kDrive), 8);
  EXPECT_EQ(cp.slot_count(CpAction::kListen), 4);
  EXPECT_EQ(cp.slot_count(CpAction::kPass), 0);
  EXPECT_EQ(cp.horizon(), 29);
}

TEST(CommProgram, EncodeDecodeRoundTrips) {
  CommProgram cp;
  cp.add(CpStride{5, 3, 17, 9, CpAction::kDrive});
  cp.add(CpStride{1000000, 2, 4096, 100, CpAction::kListen});
  const auto bytes = cp.encode();
  const CommProgram back = CommProgram::decode(bytes);
  ASSERT_EQ(back.strides().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.strides()[i].first, cp.strides()[i].first);
    EXPECT_EQ(back.strides()[i].burst, cp.strides()[i].burst);
    EXPECT_EQ(back.strides()[i].stride, cp.strides()[i].stride);
    EXPECT_EQ(back.strides()[i].count, cp.strides()[i].count);
    EXPECT_EQ(back.strides()[i].action, cp.strides()[i].action);
  }
}

TEST(CommProgram, FftTransposeCpFitsIn96Bits) {
  // The paper: "CPs can be quite small, with the program for FFT being
  // approximately 96-bits." Node r of a 1024-processor transpose drives
  // slot r, then every 1024th slot, 1024 times: ONE stride record.
  CommProgram cp;
  cp.add(CpStride{711, 1, 1024, 1024, CpAction::kDrive});
  EXPECT_EQ(cp.encoded_bits(), kCpBitsPerStride);
  EXPECT_LE(cp.encoded_bits(), 96u);
}

TEST(CommProgram, EncodeRejectsOverflowingFields) {
  CommProgram cp;
  cp.add(CpStride{kCpMaxFirst + 1, 1, 1, 1, CpAction::kDrive});
  EXPECT_THROW((void)cp.encode(), SimulationError);
}

TEST(CommProgram, DecodeRejectsTruncatedStream) {
  CommProgram cp;
  cp.add(CpStride{1, 1, 1, 1, CpAction::kDrive});
  auto bytes = cp.encode();
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW((void)CommProgram::decode(bytes), SimulationError);
}

TEST(CommProgram, InvalidFieldsRejectedOnAdd) {
  CommProgram cp;
  EXPECT_THROW(cp.add(CpStride{-1, 1, 1, 1, CpAction::kDrive}),
               SimulationError);
  EXPECT_THROW(cp.add(CpStride{0, 0, 1, 1, CpAction::kDrive}),
               SimulationError);
  EXPECT_THROW(cp.add(CpStride{0, 1, 1, 0, CpAction::kDrive}),
               SimulationError);
}

TEST(CommProgram, ToStringNamesActions) {
  CommProgram cp;
  cp.add(CpStride{0, 1, 2, 2, CpAction::kDrive});
  cp.add(CpStride{1, 1, 2, 2, CpAction::kListen});
  const auto s = cp.to_string();
  EXPECT_NE(s.find("drive"), std::string::npos);
  EXPECT_NE(s.find("listen"), std::string::npos);
}

}  // namespace
}  // namespace psync::core
