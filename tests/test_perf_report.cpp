// perf subsystem: benchmark report JSON round-trip and the regression
// comparison bench_driver's --baseline mode gates CI on.
#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/perf/bench_report.hpp"
#include "psync/perf/stopwatch.hpp"

namespace psync::perf {
namespace {

BenchReport sample_report() {
  BenchReport r;
  r.quick = true;
  r.entries.push_back(
      {"mesh_drain", 120.0, 1.1, 100, 2'000'000, "idle-skip \"drain\""});
  r.entries.push_back({"fft_kernel", 50.0, 0.0, 10, 0, ""});
  return r;
}

TEST(BenchReport, JsonRoundTripPreservesEntries) {
  const BenchReport r = sample_report();
  const std::string json = bench_report_json(r);
  const BenchReport back = parse_bench_report(json);

  EXPECT_EQ(back.schema_version, r.schema_version);
  EXPECT_EQ(back.quick, r.quick);
  ASSERT_EQ(back.entries.size(), r.entries.size());
  for (std::size_t i = 0; i < r.entries.size(); ++i) {
    EXPECT_EQ(back.entries[i].name, r.entries[i].name);
    EXPECT_NEAR(back.entries[i].wall_ms, r.entries[i].wall_ms, 1e-6);
    EXPECT_NEAR(back.entries[i].min_iter_ms, r.entries[i].min_iter_ms, 1e-6);
    EXPECT_EQ(back.entries[i].iters, r.entries[i].iters);
    EXPECT_EQ(back.entries[i].events, r.entries[i].events);
    EXPECT_EQ(back.entries[i].note, r.entries[i].note);  // escaped quotes
  }
  // Re-serializing the parsed report reproduces the exact bytes.
  EXPECT_EQ(bench_report_json(back), json);
}

TEST(BenchReport, ParserSkipsUnknownKeysAndDerivedFields) {
  const std::string json = R"({
    "schema_version": 1, "quick": false, "future_field": [1, {"a": "b"}],
    "benchmarks": [
      {"name": "x", "wall_ms": 10.0, "iters": 2, "per_iter_ms": 5.0,
       "events": 4, "events_per_sec": 400.0, "extra": true}
    ]
  })";
  const BenchReport r = parse_bench_report(json);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].name, "x");
  EXPECT_EQ(r.entries[0].iters, 2u);
  EXPECT_NEAR(r.entries[0].per_iter_ms(), 5.0, 1e-9);
}

TEST(BenchReport, MalformedInputThrows) {
  EXPECT_THROW(parse_bench_report("not json"), SimulationError);
  EXPECT_THROW(parse_bench_report("{\"benchmarks\": [{}]}"), SimulationError);
  EXPECT_THROW(parse_bench_report("{\"quick\": maybe}"), SimulationError);
}

TEST(BenchCompare, FlagsOnlyRealRegressions) {
  BenchReport base;
  base.entries.push_back({"stable", 100.0, 10.0, 10, 0, ""});
  base.entries.push_back({"regressed", 100.0, 10.0, 10, 0, ""});
  base.entries.push_back({"improved", 100.0, 10.0, 10, 0, ""});
  base.entries.push_back({"tiny_noise", 0.02, 0.002, 10, 0, ""});
  base.entries.push_back({"removed", 100.0, 10.0, 10, 0, ""});

  BenchReport cur;
  cur.entries.push_back({"stable", 105.0, 10.5, 10, 0, ""});       // +5%
  cur.entries.push_back({"regressed", 200.0, 20.0, 10, 0, ""});    // +100%
  cur.entries.push_back({"improved", 50.0, 5.0, 10, 0, ""});       // -50%
  cur.entries.push_back({"tiny_noise", 0.06, 0.006, 10, 0, ""});   // +200%,
                                                                   // but <50us
  cur.entries.push_back({"added", 1.0, 0.1, 10, 0, ""});

  const auto cmp = compare_bench_reports(base, cur, 25.0);
  EXPECT_FALSE(cmp.ok);
  ASSERT_EQ(cmp.rows.size(), 4u);
  for (const auto& row : cmp.rows) {
    EXPECT_EQ(row.regressed, row.name == "regressed") << row.name;
  }
  ASSERT_EQ(cmp.missing.size(), 1u);
  EXPECT_EQ(cmp.missing[0], "removed");
  EXPECT_FALSE(cmp.table().empty());

  // Within tolerance on every present benchmark -> ok.
  const auto ok_cmp = compare_bench_reports(base, base, 25.0);
  EXPECT_TRUE(ok_cmp.ok);
}

TEST(BenchCompare, UsesMinIterationWhenTracked) {
  // Mean-per-iter doubled but min is stable: scheduler noise, not a
  // regression.
  BenchReport base;
  base.entries.push_back({"bench", 100.0, 10.0, 10, 0, ""});
  BenchReport cur;
  cur.entries.push_back({"bench", 200.0, 10.1, 10, 0, ""});
  const auto cmp = compare_bench_reports(base, cur, 25.0);
  EXPECT_TRUE(cmp.ok);
  EXPECT_NEAR(cmp.rows[0].current_ms, 10.1, 1e-9);
}

TEST(PhaseProfiler, AccumulatesAndRendersPhases) {
  PhaseProfiler prof;
  prof.add("phase_a", 2e6, 1000, "cycles");
  prof.begin("phase_b");
  prof.end(0);
  EXPECT_EQ(prof.samples().size(), 2u);
  EXPECT_GE(prof.total_ns(), 2e6);
  const std::string table = prof.table();
  EXPECT_NE(table.find("phase_a"), std::string::npos);
  EXPECT_NE(table.find("cycles"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GT(w.elapsed_ns(), 0.0);
  EXPECT_NEAR(w.elapsed_ms(), w.elapsed_ns() * 1e-6, w.elapsed_ns() * 1e-6);
}

}  // namespace
}  // namespace psync::perf
