#include "psync/core/kernel_vm.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/core/cp_chain.hpp"
#include "psync/fft/fft.hpp"
#include "psync/fft/four_step.hpp"

namespace psync::core {
namespace {

std::vector<std::complex<double>> random_signal(std::size_t n,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::complex<double>> v(n);
  for (auto& x : v) {
    x = {rng.next_double() * 2.0 - 1.0, rng.next_double() * 2.0 - 1.0};
  }
  return v;
}

class VmFftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VmFftSizes, CompiledKernelBitIdenticalToFftPlan) {
  const std::size_t n = GetParam();
  auto vm_data = random_signal(n, n + 1);
  auto ref = vm_data;

  const KernelProgram prog = compile_fft_kernel(n);
  KernelVm vm{ExecCostParams{}};
  const VmStats stats = vm.run(prog, vm_data);

  fft::FftPlan plan(n);
  plan.forward(ref);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(vm_data[i], ref[i]) << "bitwise mismatch at " << i;
  }
  // Executed op counts equal the analytic ones: (n/2)*log2(n) butterflies.
  EXPECT_EQ(stats.ops.real_mults, fft::full_fft_mults(n));
  EXPECT_EQ(stats.ops.butterflies, fft::full_fft_mults(n) / 4);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, VmFftSizes,
                         ::testing::Values(2, 8, 64, 256, 1024));

TEST(KernelVm, TimingMatchesCostModel) {
  const std::size_t n = 1024;
  auto data = random_signal(n, 7);
  KernelVm vm{ExecCostParams{}};
  const VmStats stats = vm.run(compile_fft_kernel(n), data);
  // 1024-pt FFT: 20480 multiplies at 2 ns = 40960 ns (paper Table I, k=1).
  EXPECT_DOUBLE_EQ(stats.compute_ns, 40960.0);
  EXPECT_DOUBLE_EQ(stats.energy_pj, 20480.0 * 20.0 + 30720.0 * 5.0);
}

TEST(KernelVm, StagedKernelsComposeToFullFft) {
  // Model II as kernels: bit-reversal + per-block stage kernels + final
  // stages, appended into one program, equals the monolithic kernel.
  const std::size_t n = 64, k = 4, bs = n / k;
  auto a = random_signal(n, 3);
  auto b = a;

  KernelVm vm{ExecCostParams{}};
  vm.run(compile_fft_kernel(n), a);

  // b: swaps only, then per-block kernels, then final stages.
  KernelProgram prog;
  {
    // Build the bit-reversal prologue with SWAPs from the plan.
    fft::FftPlan plan(n);
    prog.data_size = n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t r = plan.bit_reversed_index(i);
      if (i < r) {
        prog.code.push_back(KernelInstr{KernelOp::kSwap,
                                        static_cast<std::uint32_t>(i),
                                        static_cast<std::uint32_t>(r), 0});
      }
    }
    prog.code.push_back(KernelInstr{KernelOp::kHalt, 0, 0, 0});
  }
  for (std::size_t blk = 0; blk < k; ++blk) {
    append_kernel(&prog, compile_fft_stages_kernel(n, 0, 4, 0, blk * bs, bs));
  }
  append_kernel(&prog, compile_fft_stages_kernel(n, 4, 6));
  const VmStats stats = vm.run(prog, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  EXPECT_EQ(stats.ops.real_mults, fft::full_fft_mults(n));
}

TEST(KernelVm, FourStepTwiddleKernelMatchesLibrary) {
  const std::size_t rows = 4, cols = 8, total_rows = 16, row0 = 8;
  auto a = random_signal(rows * cols, 9);
  auto b = a;

  KernelVm vm{ExecCostParams{}};
  vm.run(compile_four_step_twiddle_kernel(rows, cols, row0, total_rows), a);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t q = 0; q < cols; ++q) {
      b[r * cols + q] *=
          fft::four_step_twiddle(total_rows * cols, row0 + r, q);
    }
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(KernelVm, TrapsOnBadPrograms) {
  KernelVm vm{ExecCostParams{}};
  std::vector<std::complex<double>> data(4);

  KernelProgram oob;
  oob.data_size = 4;
  oob.twiddles = {{1.0, 0.0}};
  oob.code = {KernelInstr{KernelOp::kBfly, 2, 9, 0},
              KernelInstr{KernelOp::kHalt, 0, 0, 0}};
  EXPECT_THROW((void)vm.run(oob, data), SimulationError);

  KernelProgram no_halt;
  no_halt.data_size = 4;
  no_halt.code = {KernelInstr{KernelOp::kSwap, 0, 1, 0}};
  EXPECT_THROW((void)vm.run(no_halt, data), SimulationError);

  KernelProgram too_big;
  too_big.data_size = 64;
  too_big.code = {KernelInstr{KernelOp::kHalt, 0, 0, 0}};
  EXPECT_THROW((void)vm.run(too_big, data), SimulationError);
}

TEST(KernelVm, PackUnpackRoundTripsBitExactly) {
  const KernelProgram prog = compile_fft_kernel(128, 7);
  const auto words = pack_kernel_words(prog);
  std::size_t offset = 0;
  const KernelProgram back = unpack_kernel_words(words, offset);
  EXPECT_EQ(offset, words.size());
  ASSERT_EQ(back.code.size(), prog.code.size());
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    EXPECT_EQ(back.code[i].op, prog.code[i].op);
    EXPECT_EQ(back.code[i].a, prog.code[i].a);
    EXPECT_EQ(back.code[i].b, prog.code[i].b);
    EXPECT_EQ(back.code[i].tw, prog.code[i].tw);
  }
  ASSERT_EQ(back.twiddles.size(), prog.twiddles.size());
  for (std::size_t i = 0; i < prog.twiddles.size(); ++i) {
    EXPECT_EQ(back.twiddles[i], prog.twiddles[i]);  // full double precision
  }
  EXPECT_EQ(back.data_size, prog.data_size);
}

TEST(KernelVm, UnpackRejectsCorruptStreams) {
  auto words = pack_kernel_words(compile_fft_kernel(8));
  words.resize(words.size() / 2);
  std::size_t offset = 0;
  EXPECT_THROW((void)unpack_kernel_words(words, offset), SimulationError);
}

// The full Section IV story: computation kernels delivered over the
// SCA^-1 waveguide, decoded, executed — and the result is bit-identical to
// local execution.
TEST(KernelVm, KernelDeliveredOverWaveguideExecutesIdentically) {
  const std::size_t nodes = 2, n = 64;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));

  // Node i's boot segment: its FFT kernel as raw words (in the data part),
  // plus its signal.
  const KernelProgram prog = compile_fft_kernel(n);
  const auto kernel_words = pack_kernel_words(prog);

  std::vector<BootSegment> segs(nodes);
  std::vector<std::vector<std::complex<double>>> signals(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    segs[i].programs.push_back(
        compile_gather_blocks(nodes, 4).node_cps[i]);  // any next CP
    segs[i].data = kernel_words;
    signals[i] = random_signal(n, 100 + i);
  }
  const BootImage image = build_boot_image(segs);
  const ScatterResult boot = engine.scatter(image.schedule, image.burst);

  KernelVm vm{ExecCostParams{}};
  for (std::size_t i = 0; i < nodes; ++i) {
    const DecodedSegment dec = decode_boot_words(boot.received[i], 1);
    std::size_t offset = 0;
    const KernelProgram delivered = unpack_kernel_words(dec.data, offset);

    auto over_wire = signals[i];
    auto local = signals[i];
    vm.run(delivered, over_wire);
    vm.run(prog, local);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(over_wire[j], local[j]);
    }
  }
}

}  // namespace
}  // namespace psync::core
