// Property tests of the SCA gather — the paper's core mechanism. The
// headline invariant (Sections III, Fig. 4): with a valid CP partition, the
// terminus sees a single gap-free burst at the full clock rate, "as if from
// a single source", regardless of where the drivers sit on the waveguide.
#include "psync/core/sca.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"

namespace psync::core {
namespace {

std::vector<std::vector<Word>> numbered_data(const CpSchedule& s) {
  std::vector<std::vector<Word>> data(s.nodes());
  for (std::size_t i = 0; i < s.nodes(); ++i) {
    const Slot n = s.node_cps[i].slot_count(CpAction::kDrive);
    data[i].resize(static_cast<std::size_t>(n));
    for (Slot j = 0; j < n; ++j) {
      data[i][static_cast<std::size_t>(j)] =
          (static_cast<Word>(i) << 32) | static_cast<Word>(j);
    }
  }
  return data;
}

TEST(ScaGather, BlockGatherProducesConcatenatedStream) {
  ScaEngine engine(straight_bus_topology(4, 8.0));
  const auto sched = compile_gather_blocks(4, 8);
  const auto g = engine.gather(sched, numbered_data(sched));
  ASSERT_EQ(g.stream.size(), 32u);
  EXPECT_TRUE(g.gap_free);
  EXPECT_TRUE(g.collisions.empty());
  EXPECT_DOUBLE_EQ(g.utilization, 1.0);
  const auto words = g.words();
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(words[i], ((static_cast<Word>(i / 8) << 32) | (i % 8)));
  }
}

TEST(ScaGather, InterleavedGatherReordersInFlight) {
  // The transpose pattern: element j of node i lands at slot j*P + i; the
  // stream interleaves the nodes' buffers without any buffering hardware.
  ScaEngine engine(straight_bus_topology(4, 8.0));
  const auto sched = compile_gather_interleaved(4, 4);
  const auto g = engine.gather(sched, numbered_data(sched));
  EXPECT_TRUE(g.gap_free);
  const auto words = g.words();
  ASSERT_EQ(words.size(), 16u);
  for (std::size_t s = 0; s < 16; ++s) {
    EXPECT_EQ(words[s] >> 32, s % 4);   // source node
    EXPECT_EQ(words[s] & 0xFFFFFFFF, s / 4);  // element index
  }
}

TEST(ScaGather, ArrivalTimesAreExactlySlotPeriodApart) {
  ScaEngine engine(straight_bus_topology(8, 8.0));
  const auto sched = compile_gather_interleaved(8, 16);
  const auto g = engine.gather(sched, numbered_data(sched));
  const TimePs period = engine.clock().period_ps();
  for (std::size_t i = 1; i < g.stream.size(); ++i) {
    ASSERT_EQ(g.stream[i].arrival_ps - g.stream[i - 1].arrival_ps, period);
  }
  // Slot s arrives exactly where the clock model predicts.
  for (const auto& rec : g.stream) {
    EXPECT_EQ(rec.arrival_ps, engine.slot_arrival_ps(rec.slot));
  }
}

// The distance-independence property: scrambling the node positions (keeping
// order) must not change WHAT the receiver sees or the stream's gap-free
// timing — only absolute phase.
TEST(ScaGather, ReceiverStreamIndependentOfNodePlacement) {
  const auto sched = compile_gather_interleaved(6, 8);

  PscanTopology even = straight_bus_topology(6, 10.0);
  PscanTopology skewed = even;
  Rng rng(3);
  // Random strictly-increasing positions over the same bus.
  double at = 100.0;
  for (std::size_t i = 0; i < skewed.node_pos_um.size(); ++i) {
    at += 1000.0 + rng.next_double() * 20000.0;
    skewed.node_pos_um[i] = at;
  }
  PSYNC_CHECK(at < skewed.terminus_um);

  ScaEngine e1(even), e2(skewed);
  const auto data = numbered_data(sched);
  const auto g1 = e1.gather(sched, data);
  const auto g2 = e2.gather(sched, data);
  EXPECT_TRUE(g1.gap_free);
  EXPECT_TRUE(g2.gap_free);
  EXPECT_EQ(g1.words(), g2.words());
  EXPECT_DOUBLE_EQ(g2.utilization, 1.0);
}

TEST(ScaGather, SimultaneousModulationIsLegalWhenSlotsDiffer) {
  // Fig. 4's subtle point: P0 may modulate while P1's energy is still in
  // flight; the waveguide pipeline holds both. Two adjacent slots driven by
  // distant nodes must NOT collide.
  PscanTopology topo = straight_bus_topology(2, 10.0);
  ScaEngine engine(topo);
  const auto sched = compile_gather_interleaved(2, 4);
  const auto g = engine.gather(sched, numbered_data(sched));
  EXPECT_TRUE(g.collisions.empty());
  EXPECT_TRUE(g.gap_free);
  // The drive windows of the two nodes overlap in absolute time: find
  // overlapping modulation intervals from different sources.
  bool overlapping_modulation = false;
  for (const auto& a : g.stream) {
    for (const auto& b : g.stream) {
      if (a.source != b.source && a.modulated_ps < b.modulated_ps &&
          b.modulated_ps < a.modulated_ps + engine.clock().period_ps()) {
        overlapping_modulation = true;
      }
    }
  }
  EXPECT_TRUE(overlapping_modulation);
}

TEST(ScaGather, CollisionDetectedWhenTwoNodesShareASlot) {
  ScaEngine engine(straight_bus_topology(2, 8.0));
  CpSchedule bad;
  bad.total_slots = 4;
  bad.node_cps.resize(2);
  bad.node_cps[0].add(CpStride{0, 2, 2, 1, CpAction::kDrive});
  bad.node_cps[1].add(CpStride{1, 2, 2, 1, CpAction::kDrive});  // overlaps slot 1
  std::vector<std::vector<Word>> data{{1, 2}, {3, 4}};
  EXPECT_THROW((void)engine.gather(bad, data), SimulationError);
  const auto g = engine.gather(bad, data, /*strict=*/false);
  ASSERT_FALSE(g.collisions.empty());
  EXPECT_EQ(g.collisions[0].slot_a, g.collisions[0].slot_b);
}

TEST(ScaGather, TimingFaultCausesPartialOverlapCollision) {
  // A node whose SerDes mis-calibrates by half a slot smears into its
  // neighbour slot: the engine must flag a partial overlap.
  PscanTopology topo = straight_bus_topology(4, 8.0);
  topo.skew_error_ps.assign(4, 0);
  topo.skew_error_ps[2] = 50;  // half of the 100 ps slot at 10 GHz
  ScaEngine engine(topo);
  const auto sched = compile_gather_interleaved(4, 2);
  const auto data = numbered_data(sched);
  const auto g = engine.gather(sched, data, /*strict=*/false);
  EXPECT_FALSE(g.collisions.empty());
  EXPECT_FALSE(g.gap_free);
  for (const auto& c : g.collisions) {
    EXPECT_GT(c.overlap_ps, 0);
    EXPECT_LT(c.overlap_ps, engine.clock().period_ps());
  }
}

TEST(ScaGather, SmallFaultWithinGuardBandStillCollides) {
  // Even a 1 ps overlap is a collision for the exact-overlap model.
  PscanTopology topo = straight_bus_topology(2, 8.0);
  topo.skew_error_ps = {0, -1};
  ScaEngine engine(topo);
  const auto sched = compile_gather_interleaved(2, 2);
  const auto g = engine.gather(sched, numbered_data(sched), false);
  EXPECT_FALSE(g.collisions.empty());
}

TEST(ScaGather, DataSizeMismatchRejected) {
  ScaEngine engine(straight_bus_topology(2, 8.0));
  const auto sched = compile_gather_blocks(2, 4);
  std::vector<std::vector<Word>> too_few{{1, 2, 3}, {1, 2, 3, 4}};
  EXPECT_THROW((void)engine.gather(sched, too_few), SimulationError);
}

TEST(ScaGather, SpanCoversModulationToLastArrival) {
  ScaEngine engine(straight_bus_topology(4, 8.0));
  const auto sched = compile_gather_blocks(4, 4);
  const auto g = engine.gather(sched, numbered_data(sched));
  // 16 slots at 100 ps = 1600 ps of payload, plus flight time to terminus.
  EXPECT_GE(g.span_ps, 16 * engine.clock().period_ps());
  const TimePs flight = engine.clock().flight_ps(engine.topology().terminus_um);
  EXPECT_LE(g.span_ps, 16 * engine.clock().period_ps() + flight +
                           engine.topology().clock.detect_latency_ps);
}

TEST(ScaGather, BudgetCheckRejectsLossyBus) {
  PscanTopology topo = straight_bus_topology(64, 30.0);
  photonic::LinkBudgetParams budget;
  budget.waveguide.loss_straight_db_per_cm = 2.0;  // 60 dB over 30 cm
  topo.budget = budget;
  EXPECT_THROW(ScaEngine{topo}, SimulationError);
}

TEST(ScaGather, BudgetCheckAcceptsShortBus) {
  PscanTopology topo = straight_bus_topology(16, 4.0);
  photonic::LinkBudgetParams budget;
  topo.budget = budget;
  EXPECT_NO_THROW(ScaEngine{topo});
}

TEST(ScaGather, TopologyValidation) {
  PscanTopology t;
  EXPECT_THROW(t.validate(), SimulationError);  // no nodes
  t.node_pos_um = {100.0, 50.0};                // not increasing
  t.terminus_um = 200.0;
  EXPECT_THROW(t.validate(), SimulationError);
  t.node_pos_um = {50.0, 100.0};
  t.terminus_um = 80.0;  // before last node
  EXPECT_THROW(t.validate(), SimulationError);
  t.terminus_um = 200.0;
  t.head_um = 60.0;  // after first node
  EXPECT_THROW(t.validate(), SimulationError);
  t.head_um = 0.0;
  EXPECT_NO_THROW(t.validate());
}

}  // namespace
}  // namespace psync::core
