#include "psync/core/permutation.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/common/rng.hpp"
#include "psync/core/sca.hpp"

namespace psync::core {
namespace {

TEST(Coalesce, SingleBurst) {
  const auto recs = coalesce_slots({5, 6, 7, 8}, CpAction::kDrive);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].first, 5);
  EXPECT_EQ(recs[0].burst, 4);
  EXPECT_EQ(recs[0].count, 1);
}

TEST(Coalesce, StridedSingles) {
  const auto recs = coalesce_slots({3, 13, 23, 33, 43}, CpAction::kDrive);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].first, 3);
  EXPECT_EQ(recs[0].burst, 1);
  EXPECT_EQ(recs[0].stride, 10);
  EXPECT_EQ(recs[0].count, 5);
}

TEST(Coalesce, StridedBursts) {
  // Bursts of 2 every 8: {0,1, 8,9, 16,17}.
  const auto recs = coalesce_slots({0, 1, 8, 9, 16, 17}, CpAction::kListen);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].burst, 2);
  EXPECT_EQ(recs[0].stride, 8);
  EXPECT_EQ(recs[0].count, 3);
  EXPECT_EQ(recs[0].action, CpAction::kListen);
}

TEST(Coalesce, MixedPatternsSplitMinimally) {
  // A burst of 3, then singles with stride 5, then an isolated slot.
  const auto recs =
      coalesce_slots({0, 1, 2, 10, 15, 20, 25, 100}, CpAction::kDrive);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].burst, 3);
  EXPECT_EQ(recs[1].stride, 5);
  EXPECT_EQ(recs[1].count, 4);
  EXPECT_EQ(recs[2].first, 100);
}

TEST(Coalesce, IrregularFallsBackToOneRecordPerBurst) {
  const auto recs = coalesce_slots({0, 3, 4, 11}, CpAction::kDrive);
  // {0}, {3,4}, {11}: lengths differ so no grouping.
  ASSERT_EQ(recs.size(), 3u);
}

TEST(Coalesce, RejectsNonIncreasing) {
  EXPECT_THROW((void)coalesce_slots({3, 3}, CpAction::kDrive),
               SimulationError);
  EXPECT_THROW((void)coalesce_slots({5, 2}, CpAction::kDrive),
               SimulationError);
}

TEST(Coalesce, RoundTripsThroughExpansion) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    // Random increasing slot set.
    std::vector<Slot> slots;
    Slot at = 0;
    for (int i = 0; i < 60; ++i) {
      at += rng.next_range(1, 6);
      slots.push_back(at);
    }
    const auto recs = coalesce_slots(slots, CpAction::kDrive);
    std::vector<Slot> back;
    for (const auto& r : recs) {
      for (const auto& e : r.expand()) {
        for (Slot s = e.begin; s < e.end(); ++s) back.push_back(s);
      }
    }
    std::sort(back.begin(), back.end());
    EXPECT_EQ(back, slots) << "trial " << trial;
  }
}

TEST(CompileCollective, TransposeSpecMatchesDedicatedCompiler) {
  const auto generic =
      compile_collective(transpose_spec(4, 2, 8), CpAction::kDrive);
  const auto dedicated = compile_gather_transpose(4, 2, 8);
  ASSERT_EQ(generic.total_slots, dedicated.total_slots);
  EXPECT_EQ(slot_owners(generic, CpAction::kDrive),
            slot_owners(dedicated, CpAction::kDrive));
}

TEST(CompileCollective, TransposeCpStaysCompact) {
  // Generic compilation must not blow up the CP size: one record per local
  // row, exactly like the hand-written compiler.
  const auto s = compile_collective(transpose_spec(64, 1, 256),
                                    CpAction::kDrive);
  EXPECT_EQ(total_stride_records(s), 64u);
  for (const auto& cp : s.node_cps) {
    EXPECT_LE(cp.encoded_bits(), 96u);
  }
}

TEST(CompileCollective, RejectsNonBijection) {
  CollectiveSpec bad;
  bad.nodes = 2;
  bad.total_slots = 4;
  bad.elements_of = [](std::size_t) { return Slot{2}; };
  bad.slot_of = [](std::size_t, Slot j) { return j; };  // both nodes -> 0,1
  EXPECT_THROW((void)compile_collective(bad, CpAction::kDrive),
               SimulationError);
}

TEST(CompileCollective, RejectsNonMonotoneElementOrder) {
  CollectiveSpec bad;
  bad.nodes = 1;
  bad.total_slots = 2;
  bad.elements_of = [](std::size_t) { return Slot{2}; };
  bad.slot_of = [](std::size_t, Slot j) { return 1 - j; };  // descending
  EXPECT_THROW((void)compile_collective(bad, CpAction::kDrive),
               SimulationError);
}

TEST(CompileCollective, RejectsGaps) {
  CollectiveSpec bad;
  bad.nodes = 1;
  bad.total_slots = 4;
  bad.elements_of = [](std::size_t) { return Slot{2}; };
  bad.slot_of = [](std::size_t, Slot j) { return j * 2; };  // covers 0,2 only
  EXPECT_THROW((void)compile_collective(bad, CpAction::kDrive),
               SimulationError);
}

TEST(CornerTurn3d, IsABijectionAndRunsOnTheEngine) {
  const std::size_t p = 4;
  const Slot X = 8, Y = 4, Z = 2;
  const auto spec = corner_turn_3d_spec(p, X, Y, Z);
  const auto sched = compile_collective(spec, CpAction::kDrive);
  EXPECT_TRUE(check_schedule(sched, CpAction::kDrive).gap_free);

  // Drive a numbered tensor through the SCA and verify the axis rotation:
  // output[(y*Z + z)*X + x] == input[x*(Y*Z) + y*Z + z].
  ScaEngine engine(straight_bus_topology(p, 8.0));
  std::vector<std::vector<Word>> data(p);
  const Slot planes = X / static_cast<Slot>(p);
  for (std::size_t i = 0; i < p; ++i) {
    // Wire order: x_local fastest within each (y, z) pair.
    for (Slot e = 0; e < planes * Y * Z; ++e) {
      const Slot x = static_cast<Slot>(i) * planes + e % planes;
      const Slot rem = e / planes;  // y*Z + z
      data[i].push_back(static_cast<Word>(x * Y * Z + rem));
    }
  }
  const auto g = engine.gather(sched, data);
  ASSERT_TRUE(g.gap_free);
  const auto words = g.words();
  for (Slot x = 0; x < X; ++x) {
    for (Slot y = 0; y < Y; ++y) {
      for (Slot z = 0; z < Z; ++z) {
        EXPECT_EQ(words[static_cast<std::size_t>((y * Z + z) * X + x)],
                  static_cast<Word>(x * Y * Z + y * Z + z));
      }
    }
  }
}

TEST(CornerTurn3d, CpIsCompactOnePlanePerNode) {
  // One plane per node: the per-node slot set is {(y*Z+z)*X + x0} — singles
  // with constant stride X: ONE record.
  const auto sched =
      compile_collective(corner_turn_3d_spec(8, 8, 16, 16), CpAction::kDrive);
  EXPECT_EQ(total_stride_records(sched), 8u);
}

TEST(CornerTurn3d, RejectsIndivisibleX) {
  EXPECT_THROW((void)corner_turn_3d_spec(3, 8, 4, 4), SimulationError);
}

TEST(Submatrix, RegionOfInterestGather) {
  // 4 nodes each own a 16-wide row; gather columns [5, 9) column-major.
  const auto spec = submatrix_spec(4, 16, 5, 4);
  const auto sched = compile_collective(spec, CpAction::kDrive);
  EXPECT_EQ(sched.total_slots, 16);
  EXPECT_TRUE(check_schedule(sched, CpAction::kDrive).gap_free);
  // Slot layout is interleaved: slot s belongs to node s % 4.
  const auto owners = slot_owners(sched, CpAction::kDrive);
  for (Slot s = 0; s < 16; ++s) {
    EXPECT_EQ(owners[static_cast<std::size_t>(s)], s % 4);
  }
}

TEST(Submatrix, RejectsWindowOutsideRow) {
  EXPECT_THROW((void)submatrix_spec(4, 16, 14, 4), SimulationError);
}

}  // namespace
}  // namespace psync::core
