#include "psync/core/cp_compile.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync::core {
namespace {

TEST(CpCompile, GatherBlocksPartitionsSchedule) {
  const auto s = compile_gather_blocks(4, 8);
  EXPECT_EQ(s.total_slots, 32);
  const auto check = check_schedule(s, CpAction::kDrive);
  EXPECT_TRUE(check.disjoint);
  EXPECT_TRUE(check.gap_free);
  EXPECT_DOUBLE_EQ(check.utilization, 1.0);

  const auto owners = slot_owners(s, CpAction::kDrive);
  for (Slot slot = 0; slot < 32; ++slot) {
    EXPECT_EQ(owners[static_cast<std::size_t>(slot)], slot / 8);
  }
}

TEST(CpCompile, GatherInterleavedIsTransposePattern) {
  const auto s = compile_gather_interleaved(4, 8);
  const auto owners = slot_owners(s, CpAction::kDrive);
  for (Slot slot = 0; slot < s.total_slots; ++slot) {
    EXPECT_EQ(owners[static_cast<std::size_t>(slot)], slot % 4);
  }
  EXPECT_TRUE(check_schedule(s, CpAction::kDrive).gap_free);
}

TEST(CpCompile, RoundRobinBlocksOwnership) {
  const auto s = compile_gather_round_robin(3, 2, 4);  // 3 nodes, 2 rounds, 4
  EXPECT_EQ(s.total_slots, 24);
  const auto owners = slot_owners(s, CpAction::kDrive);
  // Round 0: [0,4)->0 [4,8)->1 [8,12)->2; round 1 repeats.
  for (Slot slot = 0; slot < 24; ++slot) {
    EXPECT_EQ(owners[static_cast<std::size_t>(slot)], (slot / 4) % 3);
  }
}

TEST(CpCompile, TransposeScheduleIsColumnMajor) {
  // 2 nodes x 2 rows of length 3: stream order is column-major over 4 rows.
  const auto s = compile_gather_transpose(2, 2, 3);
  EXPECT_EQ(s.total_slots, 12);
  const auto owners = slot_owners(s, CpAction::kDrive);
  // Slot = c*4 + r; node = r / 2.
  for (Slot c = 0; c < 3; ++c) {
    for (Slot r = 0; r < 4; ++r) {
      EXPECT_EQ(owners[static_cast<std::size_t>(c * 4 + r)], r / 2);
    }
  }
  EXPECT_TRUE(check_schedule(s, CpAction::kDrive).gap_free);
}

TEST(CpCompile, SingleRowTransposeCpIsOneStride) {
  const auto s = compile_gather_transpose(1024, 1, 1024);
  for (const auto& cp : s.node_cps) {
    EXPECT_EQ(cp.strides().size(), 1u);
    EXPECT_LE(cp.encoded_bits(), 96u);  // the paper's CP size claim
  }
}

TEST(CpCompile, ScatterMirrorsUseListen) {
  const auto s = compile_scatter_interleaved(4, 4);
  EXPECT_EQ(s.node_cps[0].slot_count(CpAction::kListen), 4);
  EXPECT_EQ(s.node_cps[0].slot_count(CpAction::kDrive), 0);
  EXPECT_TRUE(check_schedule(s, CpAction::kListen).gap_free);
}

TEST(CpCompile, SlotOwnersDetectsCollision) {
  CpSchedule s;
  s.total_slots = 8;
  s.node_cps.resize(2);
  s.node_cps[0].add(CpStride{0, 4, 4, 1, CpAction::kDrive});
  s.node_cps[1].add(CpStride{3, 4, 4, 1, CpAction::kDrive});
  EXPECT_THROW((void)slot_owners(s, CpAction::kDrive), SimulationError);
  EXPECT_FALSE(check_schedule(s, CpAction::kDrive).disjoint);
}

TEST(CpCompile, SlotOwnersDetectsOutOfRange) {
  CpSchedule s;
  s.total_slots = 4;
  s.node_cps.resize(1);
  s.node_cps[0].add(CpStride{2, 4, 4, 1, CpAction::kDrive});
  EXPECT_THROW((void)slot_owners(s, CpAction::kDrive), SimulationError);
}

TEST(CpCompile, GappySchedulesReportUtilization) {
  CpSchedule s;
  s.total_slots = 16;
  s.node_cps.resize(1);
  s.node_cps[0].add(CpStride{0, 4, 4, 1, CpAction::kDrive});
  const auto check = check_schedule(s, CpAction::kDrive);
  EXPECT_TRUE(check.disjoint);
  EXPECT_FALSE(check.gap_free);
  EXPECT_DOUBLE_EQ(check.utilization, 0.25);
}

TEST(CpCompile, HeadDriveProgramCoversBurst) {
  const auto cp = head_drive_program(10'000'000);
  Slot covered = 0;
  for (const auto& e : cp.entries()) {
    EXPECT_EQ(e.action, CpAction::kDrive);
    covered += e.length;
  }
  EXPECT_EQ(covered, 10'000'000);
  // And it can be encoded (every burst chunk within field limits).
  EXPECT_NO_THROW((void)cp.encode());
}

TEST(CpCompile, ElementOfSlotMapsScheduleOrder) {
  const auto s = compile_gather_interleaved(4, 8);
  // Node 1 drives slots 1, 5, 9, ...; its element j is at slot 4j+1.
  for (Slot j = 0; j < 8; ++j) {
    EXPECT_EQ(element_of_slot(s.node_cps[1], CpAction::kDrive, 4 * j + 1), j);
  }
  EXPECT_EQ(element_of_slot(s.node_cps[1], CpAction::kDrive, 2), -1);
}

}  // namespace
}  // namespace psync::core
