// The campaign service: canonical spec identity (content digests), the
// Session submission/execution split, the per-point result cache, the
// wire-protocol codec (strict, typed errors), and the psync_serve daemon
// end to end over a real Unix-domain socket.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "psync/common/journal.hpp"
#include "psync/dist/supervisor.hpp"
#include "psync/driver/runner.hpp"
#include "psync/driver/session.hpp"
#include "psync/driver/sweep.hpp"
#include "psync/driver/workload.hpp"
#include "psync/serve/cache.hpp"
#include "psync/serve/protocol.hpp"
#include "psync/serve/server.hpp"

namespace psync::serve {
namespace {

using driver::CampaignEvent;
using driver::CampaignState;
using driver::ExperimentSpec;
using driver::PointStatus;
using driver::RunRecord;
using driver::Session;
using driver::SweepResult;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "psync_serve_" + name;
}

Session::Options cache_opts(driver::PointCache* cache) {
  Session::Options opts;
  opts.cache = cache;
  return opts;
}

/// A small but real fft2d sweep grid (4 points, verify on).
ExperimentSpec small_spec() {
  ExperimentSpec spec;
  spec.workload = "fft2d";
  spec.machine.matrix_rows = 32;
  spec.machine.matrix_cols = 32;
  spec.axes.push_back({"processors", {8, 16}});
  spec.axes.push_back({"blocks", {2, 4}});
  spec.threads = 2;
  return spec;
}

/// The INI rendering of small_spec(), for daemon submissions.
constexpr const char* kSmallIni = R"([experiment]
kind = fft2d
threads = 2

[machine]
rows = 32
cols = 32

[sweep]
processors = 8 16
blocks = 2 4
)";

class CountingObserver final : public driver::PointObserver {
 public:
  void on_point_start(std::size_t) override { ++starts; }
  void on_point_done(std::size_t, PointStatus) override { ++dones; }
  std::atomic<std::size_t> starts{0};
  std::atomic<std::size_t> dones{0};
};

// ---------------------------------------------------------------------------
// Canonical form + content digests

TEST(Canonical, StableAcrossCalls) {
  const auto spec = small_spec();
  const std::string a = spec.canonical_json();
  const std::string b = spec.canonical_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(driver::spec_digest(spec), 0u);
  EXPECT_EQ(driver::spec_digest(spec), driver::fnv1a64(a));
  EXPECT_EQ(a.compare(0, 10, "{\"schema\":"), 0) << a.substr(0, 24);
}

TEST(Canonical, ExecutionPolicyFieldsDoNotChangeTheDigest) {
  auto spec = small_spec();
  const std::uint64_t base = driver::spec_digest(spec);
  spec.threads = 7;
  spec.journal_path = "/tmp/some.jsonl";
  spec.resume = true;
  spec.shard_begin = 1;
  spec.shard_end = 3;
  spec.guard.max_retries = 9;
  spec.guard.point_timeout_ms = 123.0;
  spec.quarantine_indices = {2};
  EXPECT_EQ(driver::spec_digest(spec), base)
      << "how a sweep runs must not change what it is";
}

TEST(Canonical, ResultDeterminingFieldsChangeTheDigest) {
  const auto base = driver::spec_digest(small_spec());

  auto seed = small_spec();
  seed.input_seed += 1;
  EXPECT_NE(driver::spec_digest(seed), base);

  auto machine = small_spec();
  machine.machine.matrix_rows = 64;
  EXPECT_NE(driver::spec_digest(machine), base);

  auto axis = small_spec();
  axis.axes[1].values.push_back(8);
  EXPECT_NE(driver::spec_digest(axis), base);

  auto workload = small_spec();
  workload.workload = "fft1d";
  EXPECT_NE(driver::spec_digest(workload), base);

  auto verify = small_spec();
  verify.verify = false;
  EXPECT_NE(driver::spec_digest(verify), base);
}

TEST(Canonical, ExpandFillsDistinctStablePointDigests) {
  const auto frozen = Session::freeze(small_spec());
  ASSERT_EQ(frozen.points.size(), 4u);
  for (const auto& pt : frozen.points) EXPECT_NE(pt.digest, 0u);
  for (std::size_t i = 0; i < frozen.points.size(); ++i) {
    for (std::size_t j = i + 1; j < frozen.points.size(); ++j) {
      EXPECT_NE(frozen.points[i].digest, frozen.points[j].digest);
    }
  }
  const auto again = Session::freeze(small_spec());
  for (std::size_t i = 0; i < frozen.points.size(); ++i) {
    EXPECT_EQ(frozen.points[i].digest, again.points[i].digest);
  }
  // A different input seed is a different point, even at the same knobs.
  auto reseeded_spec = small_spec();
  reseeded_spec.input_seed += 1;
  const auto reseeded = Session::freeze(reseeded_spec);
  EXPECT_NE(frozen.points[0].digest, reseeded.points[0].digest);
}

// ---------------------------------------------------------------------------
// Session: validate / freeze / submit

TEST(SessionValidate, CleanSpecHasNoDiagnostics) {
  EXPECT_TRUE(Session::validate(small_spec()).empty());
}

TEST(SessionValidate, ReportsTypedDiagnostics) {
  auto unknown = small_spec();
  unknown.workload = "no_such_workload";
  auto diags = Session::validate(unknown);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(std::string(diags[0].what()).find("no_such_workload"),
            std::string::npos);

  auto empty_axis = small_spec();
  empty_axis.axes.push_back({"rows", {}});
  diags = Session::validate(empty_axis);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(std::string(diags[0].what()).find("has no values"),
            std::string::npos);

  auto bad_knob = small_spec();
  bad_knob.axes.push_back({"warp_factor", {9}});
  diags = Session::validate(bad_knob);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(std::string(diags[0].what()).find("warp_factor"),
            std::string::npos);

  auto inverted = small_spec();  // grid size 4
  inverted.shard_begin = 3;
  inverted.shard_end = 1;
  diags = Session::validate(inverted);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(std::string(diags[0].what()).find("inverted"), std::string::npos);

  auto dangling_resume = small_spec();
  dangling_resume.resume = true;
  diags = Session::validate(dangling_resume);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(std::string(diags[0].what()).find("journal"), std::string::npos);

  auto bad_guard = small_spec();
  bad_guard.guard.point_timeout_ms = -1.0;
  bad_guard.guard.retry_backoff_ms = -1.0;
  EXPECT_EQ(Session::validate(bad_guard).size(), 2u);
}

TEST(SessionValidate, FreezeThrowsTheFirstDiagnostic) {
  auto spec = small_spec();
  spec.axes.push_back({"warp_factor", {9}});
  EXPECT_THROW(Session::freeze(spec), ConfigError);
}

TEST(Session, RunMatchesRunnerByteForByte) {
  const auto spec = small_spec();
  const SweepResult via_runner = driver::Runner::run(spec);
  Session session;
  const SweepResult via_session = session.run(spec);
  EXPECT_EQ(driver::sweep_json(via_session), driver::sweep_json(via_runner));
  EXPECT_EQ(driver::sweep_csv(via_session), driver::sweep_csv(via_runner));
}

TEST(Session, SubmitStreamsEventsAndProgress) {
  Session session;
  auto handle = session.submit(small_spec());
  EXPECT_TRUE(handle.valid());
  EXPECT_NE(handle.digest(), 0u);
  handle.wait();
  EXPECT_EQ(handle.state(), CampaignState::kDone);

  const auto progress = handle.progress();
  EXPECT_EQ(progress.total, 4u);
  EXPECT_EQ(progress.completed, 4u);
  EXPECT_EQ(progress.executed, 4u);
  EXPECT_EQ(progress.cache_hits, 0u);
  EXPECT_EQ(progress.resumed, 0u);

  // Cursor 0 replays the full history for a late subscriber.
  std::vector<CampaignEvent> events;
  const std::size_t cursor = handle.events_since(0, 0.0, &events);
  EXPECT_EQ(cursor, 4u);
  ASSERT_EQ(events.size(), 4u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.source, CampaignEvent::Source::kRun);
    EXPECT_EQ(ev.status, PointStatus::kOk);
  }
  EXPECT_EQ(handle.result().records.size(), 4u);
}

// Spins until cancelled whenever the t_p knob is nonzero (bounded so a
// broken token fails the test instead of wedging the suite).
class ServeSpinWorkload final : public driver::Workload {
 public:
  std::string name() const override { return "serve_spin"; }
  RunRecord run(const driver::RunPoint& pt) const override {
    double spin = 0.0;
    for (const auto& [knob, value] : pt.knobs) {
      if (knob == "t_p") spin = value;
    }
    if (spin != 0.0) {
      const auto start = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() - start <
             std::chrono::seconds(10)) {
        if (pt.cancel != nullptr) pt.cancel->poll();
      }
      throw SimulationError("serve_spin: cancel never fired");
    }
    RunRecord rec;
    rec.metrics.push_back({"ran", 1.0, 0});
    return rec;
  }
};

TEST(Session, CancelFinishesTheCampaignAsCancelled) {
  driver::register_workload(std::make_unique<ServeSpinWorkload>());
  ExperimentSpec spec;
  spec.workload = "serve_spin";
  spec.axes.push_back({"t_p", {1, 1}});
  spec.guard.point_timeout_ms = 5000.0;  // arms the per-point token

  Session session;
  auto handle = session.submit(spec);
  handle.cancel();
  handle.wait();
  EXPECT_EQ(handle.state(), CampaignState::kCancelled);
  EXPECT_THROW(handle.result(), CancelledError);
}

// ---------------------------------------------------------------------------
// Distributed executor: the streaming merge feeds subscribers live

/// Deterministic record keyed on the point seed; sleeps the t_p knob (in
/// milliseconds) so a slow tail point keeps the campaign running long
/// after the first records have streamed in.
class ServeStreamWorkload final : public driver::Workload {
 public:
  std::string name() const override { return "serve_stream"; }
  RunRecord run(const driver::RunPoint& pt) const override {
    double tp = 0.0;
    for (const auto& [knob, value] : pt.knobs) {
      if (knob == "t_p") tp = value;
    }
    if (tp > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(tp)));
    }
    RunRecord rec;
    rec.metrics.push_back(
        {"val", static_cast<double>(pt.seed % 1000003ULL) / 997.0, -1});
    return rec;
  }
};

ExperimentSpec stream_spec(std::vector<double> tp_values) {
  driver::register_workload(std::make_unique<ServeStreamWorkload>());
  ExperimentSpec spec;
  spec.workload = "serve_stream";
  spec.axes.push_back({"t_p", std::move(tp_values)});
  spec.threads = 1;
  spec.guard.max_retries = 0;
  return spec;
}

TEST(SessionDist, SocketExecutorStreamsPartialResultsWhileRunning) {
  // Five quick points and one slow straggler: the straggler pins the
  // campaign in kRunning while the quick points' records ship over the
  // socket, so "a partial result arrived before the last shard finished"
  // is observable without timing luck.
  const auto spec = stream_spec({10, 10, 10, 10, 10, 400});
  const SweepResult serial = driver::Runner::run(spec);

  dist::SupervisorOptions dopts;
  dopts.workers = 2;
  dopts.journal_base = testing::TempDir() + "psync_serve_stream_" +
                       std::to_string(::getpid());
  dopts.heartbeat_ms = 10.0;
  dopts.liveness_factor = 50.0;
  dopts.transport = dist::TransportKind::kSocket;
  dopts.listen_host = "127.0.0.1";
  dopts.listen_port = 0;  // ephemeral

  Session::Options sopts;
  sopts.executor = dist::distributed_executor(dopts);
  Session session(sopts);
  auto handle = session.submit(spec);

  bool partial_while_running = false;
  std::size_t streamed_while_running = 0;
  std::size_t cursor = 0;
  std::vector<CampaignEvent> events;
  while (handle.state() == CampaignState::kRunning) {
    cursor = handle.events_since(cursor, 25.0, &events);
    // Checking state *after* the read: these events were published while
    // the campaign still ran, which is the whole point of the stream.
    if (!events.empty() && handle.state() == CampaignState::kRunning) {
      partial_while_running = true;
      streamed_while_running += events.size();
    }
  }
  handle.wait();
  EXPECT_EQ(handle.state(), CampaignState::kDone);
  EXPECT_TRUE(partial_while_running)
      << "no partial result surfaced before the campaign finished";
  EXPECT_GE(streamed_while_running, 1u);

  // A late subscriber replaying from cursor 0 sees every point exactly
  // once, in grid order (the streaming merge emits the contiguous
  // prefix, so call order == grid order here).
  events.clear();
  EXPECT_EQ(handle.events_since(0, 0.0, &events), 6u);
  ASSERT_EQ(events.size(), 6u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].index, i);
    EXPECT_EQ(events[i].status, PointStatus::kOk);
  }

  // And the merged table is byte-identical to the serial run.
  EXPECT_EQ(driver::sweep_json(handle.result()), driver::sweep_json(serial));
  EXPECT_EQ(driver::sweep_csv(handle.result()), driver::sweep_csv(serial));
}

// ---------------------------------------------------------------------------
// Result cache: hit / miss / partial overlap

TEST(Cache, ResubmissionIsServedWithoutExecuting) {
  ResultCache cache;  // in-memory: open() not called
  CountingObserver first_run;
  auto spec = small_spec();
  spec.observer = &first_run;

  Session warm(cache_opts(&cache));
  const auto reference = warm.run(spec);
  EXPECT_EQ(first_run.starts.load(), 4u);
  EXPECT_EQ(cache.size(), 4u);

  // A fresh session over the same cache: zero points re-simulated, output
  // byte-identical. This is the acceptance criterion of the service.
  CountingObserver second_run;
  spec.observer = &second_run;
  Session cached(cache_opts(&cache));
  const auto served = cached.run(spec);
  EXPECT_EQ(second_run.starts.load(), 0u);
  EXPECT_EQ(second_run.dones.load(), 0u);
  EXPECT_EQ(served.campaign.cache_hits, 4u);
  EXPECT_EQ(driver::sweep_json(served), driver::sweep_json(reference));
  EXPECT_EQ(driver::sweep_csv(served), driver::sweep_csv(reference));
}

TEST(Cache, PartialOverlapExecutesOnlyTheNewPoints) {
  ResultCache cache;
  Session session(cache_opts(&cache));
  (void)session.run(small_spec());  // 4 points cached

  // Appending to the *slowest* axis keeps the base grid's points at their
  // original global indices (row-major expansion), so their index-derived
  // seeds — and therefore their content digests — still match the cache.
  auto superset = small_spec();
  superset.axes[0].values.push_back(32);  // 3x2 grid: 2 new points
  CountingObserver observer;
  superset.observer = &observer;
  const auto result = session.run(superset);
  EXPECT_EQ(observer.starts.load(), 2u);
  EXPECT_EQ(result.campaign.cache_hits, 4u);
  EXPECT_EQ(result.campaign.points, 6u);
  EXPECT_EQ(cache.size(), 6u);

  // The cache-hit records must sit at the *superset's* grid indices.
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].index, i);
  }
}

TEST(Cache, FailedPointsAreNeverCached) {
  ResultCache cache;
  ExperimentSpec spec;
  spec.workload = "fft2d";
  spec.machine.matrix_rows = 256;
  spec.machine.matrix_cols = 256;
  spec.axes.push_back({"blocks", {1, 2}});
  spec.guard.max_point_mb = 1;  // every point fails the admission gate

  Session session(cache_opts(&cache));
  const auto result = session.run(spec);
  EXPECT_EQ(result.campaign.failed, 2u);
  EXPECT_EQ(cache.size(), 0u);

  // And the resubmission re-executes rather than replaying the failure.
  CountingObserver observer;
  spec.observer = &observer;
  (void)session.run(spec);
  EXPECT_EQ(observer.starts.load(), 2u);
}

TEST(Cache, SeedMismatchReadsAsAMiss) {
  ResultCache cache;
  RunRecord rec;
  rec.workload = "fft2d";
  cache.store(1234, 99, rec);
  RunRecord out;
  EXPECT_TRUE(cache.lookup(1234, 99, &out));
  EXPECT_FALSE(cache.lookup(1234, 100, &out)) << "collision must miss";
  EXPECT_FALSE(cache.lookup(5678, 99, &out));
}

TEST(Cache, RebuildsTheIndexFromJournalsOnOpen) {
  const std::string dir = temp_path("rebuild_cache");
  ResultCache writer;
  writer.open(dir);

  auto spec = small_spec();
  spec.journal_path = writer.journal_path(driver::spec_digest(spec));
  std::remove(spec.journal_path.c_str());
  Session session(cache_opts(&writer));
  (void)session.run(spec);

  // A different process opening the same directory sees every point.
  ResultCache reader;
  reader.open(dir);
  EXPECT_EQ(reader.size(), 4u);
  const auto frozen = Session::freeze(small_spec());
  for (const auto& pt : frozen.points) {
    RunRecord out;
    EXPECT_TRUE(reader.lookup(pt.digest, pt.seed, &out));
  }
  std::remove(spec.journal_path.c_str());
}

// ---------------------------------------------------------------------------
// Protocol codec

TEST(Protocol, ParsesEveryOp) {
  Request req;
  EXPECT_EQ(parse_request("{\"op\":\"submit\",\"config\":\"[experiment]\","
                          "\"threads\":8}",
                          &req),
            FrameError::kNone);
  EXPECT_EQ(req.op, Op::kSubmit);
  EXPECT_EQ(req.config, "[experiment]");
  EXPECT_EQ(req.threads, 8u);

  EXPECT_EQ(parse_request(
                "{\"op\":\"status\",\"campaign\":\"00000000000000ff\"}", &req),
            FrameError::kNone);
  EXPECT_EQ(req.op, Op::kStatus);
  EXPECT_TRUE(req.has_campaign);
  EXPECT_EQ(req.campaign, 0xffu);

  EXPECT_EQ(parse_request("{\"op\":\"results\",\"campaign\":"
                          "\"00000000000000ff\",\"format\":\"csv\","
                          "\"wait\":false}",
                          &req),
            FrameError::kNone);
  EXPECT_EQ(req.op, Op::kResults);
  EXPECT_EQ(req.format, "csv");
  EXPECT_FALSE(req.wait);

  EXPECT_EQ(parse_request(
                "{\"op\":\"subscribe\",\"campaign\":\"00000000000000ff\"}",
                &req),
            FrameError::kNone);
  EXPECT_EQ(req.op, Op::kSubscribe);
  EXPECT_EQ(parse_request(
                "{\"op\":\"cancel\",\"campaign\":\"00000000000000ff\"}", &req),
            FrameError::kNone);
  EXPECT_EQ(req.op, Op::kCancel);
  EXPECT_EQ(parse_request("{\"op\":\"shutdown\"}", &req), FrameError::kNone);
  EXPECT_EQ(req.op, Op::kShutdown);
}

TEST(Protocol, EveryMalformedFrameGetsItsTypedError) {
  const struct {
    const char* line;
    FrameError want;
  } cases[] = {
      {"", FrameError::kEmpty},
      {"   \t ", FrameError::kEmpty},
      {"hello", FrameError::kNotJson},
      {"[1,2]", FrameError::kNotJson},
      {"{\"op\":\"status\"", FrameError::kNotJson},  // truncated
      {"{\"op", FrameError::kBadString},             // unterminated key
      {"{\"op\":\"shutdown\"}x", FrameError::kTrailingGarbage},
      {"{}", FrameError::kMissingOp},
      {"{\"config\":\"x\"}", FrameError::kMissingOp},
      {"{\"op\":\"reboot\"}", FrameError::kUnknownOp},
      {"{\"op\":\"status\",\"color\":\"red\"}", FrameError::kUnknownKey},
      {"{\"op\":true}", FrameError::kBadType},
      {"{\"op\":\"submit\",\"threads\":\"many\"}", FrameError::kBadType},
      {"{\"op\":\"submit\"}", FrameError::kMissingField},  // no config
      {"{\"op\":\"status\"}", FrameError::kMissingField},  // no campaign
      {"{\"op\":\"status\",\"campaign\":\"xyz\"}", FrameError::kBadCampaignId},
      {"{\"op\":\"status\",\"campaign\":\"00000000000000FF\"}",
       FrameError::kBadCampaignId},  // uppercase rejected
      {"{\"op\":\"results\",\"campaign\":\"00000000000000ff\","
       "\"format\":\"xml\"}",
       FrameError::kBadValue},
  };
  for (const auto& c : cases) {
    Request req;
    EXPECT_EQ(parse_request(c.line, &req), c.want) << c.line;
  }
}

TEST(Protocol, TruncationFuzzNeverAcceptsAPrefix) {
  // Every proper prefix of a valid frame must be rejected with *some*
  // typed error — a cut-off submission must never parse as a smaller one.
  const std::string frame =
      "{\"op\":\"results\",\"campaign\":\"00000000000000ff\","
      "\"format\":\"csv\",\"wait\":true,\"threads\":3}";
  Request req;
  ASSERT_EQ(parse_request(frame, &req), FrameError::kNone);
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_NE(parse_request(frame.substr(0, len), &req), FrameError::kNone)
        << "prefix of length " << len << " parsed";
  }
  // Same for byte-level corruption of the structural characters.
  for (const std::size_t at : {0u, 4u, 5u, 15u, 16u}) {
    std::string corrupt = frame;
    corrupt[at] = '#';
    EXPECT_NE(parse_request(corrupt, &req), FrameError::kNone) << corrupt;
  }
}

TEST(Protocol, CampaignIdRoundTrips) {
  for (const std::uint64_t digest :
       {std::uint64_t{0}, std::uint64_t{0xff}, std::uint64_t{1} << 63,
        std::uint64_t{0xdeadbeefcafef00d}}) {
    const std::string id = campaign_id(digest);
    EXPECT_EQ(id.size(), 16u);
    std::uint64_t back = 0;
    EXPECT_TRUE(parse_campaign_id(id, &back)) << id;
    EXPECT_EQ(back, digest);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(parse_campaign_id("abc", &out));
  EXPECT_FALSE(parse_campaign_id("00000000000000fg", &out));
  EXPECT_FALSE(parse_campaign_id("00000000000000ff0", &out));
}

TEST(Protocol, FindFieldsAreDepthAware) {
  const std::string json =
      "{\"ok\":true,\"campaign\":\"00ff\",\"points\":12,"
      "\"nested\":{\"points\":99,\"deep\":[{\"ok\":false}]},"
      "\"body\":\"line1\\nline2\"}";
  bool ok = false;
  EXPECT_TRUE(find_bool_field(json, "ok", &ok));
  EXPECT_TRUE(ok);
  std::uint64_t points = 0;
  EXPECT_TRUE(find_u64_field(json, "points", &points));
  EXPECT_EQ(points, 12u) << "nested points must not shadow the top level";
  std::string body;
  EXPECT_TRUE(find_string_field(json, "body", &body));
  EXPECT_EQ(body, "line1\nline2");
  EXPECT_FALSE(find_string_field(json, "deep", &body));  // nested only
  EXPECT_FALSE(find_u64_field(json, "missing", &points));
}

TEST(Protocol, ErrorFrameShape) {
  const std::string frame = error_frame("bad_thing", "it \"broke\"");
  bool ok = true;
  ASSERT_TRUE(find_bool_field(frame, "ok", &ok));
  EXPECT_FALSE(ok);
  std::string code;
  std::string message;
  ASSERT_TRUE(find_string_field(frame, "error", &code));
  ASSERT_TRUE(find_string_field(frame, "message", &message));
  EXPECT_EQ(code, "bad_thing");
  EXPECT_EQ(message, "it \"broke\"");
}

// ---------------------------------------------------------------------------
// The daemon, end to end over a real socket

/// Minimal blocking line client for the tests.
class Client {
 public:
  explicit Client(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    PSYNC_CHECK(fd_ >= 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    PSYNC_CHECK(socket_path.size() < sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] bool connected() const { return connected_; }

  bool send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool read_line(std::string* line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// send + one-line response.
  std::string round_trip(const std::string& line) {
    EXPECT_TRUE(send_line(line));
    std::string response;
    EXPECT_TRUE(read_line(&response));
    return response;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

std::string submit_frame(const std::string& ini) {
  return "{\"op\":\"submit\",\"config\":" + json_string(ini) + "}";
}

struct DaemonFixture {
  explicit DaemonFixture(const std::string& tag, bool with_cache = true) {
    ServerOptions opts;
    opts.socket_path = temp_path(tag + ".sock");
    if (with_cache) opts.cache_dir = temp_path(tag + ".cache");
    std::remove(opts.socket_path.c_str());
    server = std::make_unique<Server>(opts);
    server->start();
    socket_path = opts.socket_path;
    cache_dir = opts.cache_dir;
  }
  ~DaemonFixture() {
    if (server) server->stop();
  }
  std::unique_ptr<Server> server;
  std::string socket_path;
  std::string cache_dir;
};

TEST(Daemon, SubmitThenResultsMatchesTheRunnerByteForByte) {
  DaemonFixture daemon("roundtrip");
  Client client(daemon.socket_path);
  ASSERT_TRUE(client.connected());

  const std::string response = client.round_trip(submit_frame(kSmallIni));
  bool ok = false;
  ASSERT_TRUE(find_bool_field(response, "ok", &ok)) << response;
  ASSERT_TRUE(ok) << response;
  std::string id;
  ASSERT_TRUE(find_string_field(response, "campaign", &id));
  std::uint64_t points = 0;
  EXPECT_TRUE(find_u64_field(response, "points", &points));
  EXPECT_EQ(points, 4u);

  const std::string results = client.round_trip(
      "{\"op\":\"results\",\"campaign\":" + json_string(id) + "}");
  ASSERT_TRUE(find_bool_field(results, "ok", &ok) && ok) << results;
  std::string body;
  ASSERT_TRUE(find_string_field(results, "body", &body));
  EXPECT_EQ(body, driver::sweep_json(driver::Runner::run(small_spec())));

  // CSV render of the same campaign, through the memoized entry.
  const std::string csv = client.round_trip(
      "{\"op\":\"results\",\"campaign\":" + json_string(id) +
      ",\"format\":\"csv\"}");
  ASSERT_TRUE(find_string_field(csv, "body", &body));
  EXPECT_EQ(body, driver::sweep_csv(driver::Runner::run(small_spec())));
}

TEST(Daemon, DuplicateSubmissionAttachesToTheSameCampaign) {
  DaemonFixture daemon("attach");
  Client a(daemon.socket_path);
  Client b(daemon.socket_path);
  ASSERT_TRUE(a.connected() && b.connected());

  const std::string first = a.round_trip(submit_frame(kSmallIni));
  const std::string second = b.round_trip(submit_frame(kSmallIni));
  std::string id_a;
  std::string id_b;
  ASSERT_TRUE(find_string_field(first, "campaign", &id_a));
  ASSERT_TRUE(find_string_field(second, "campaign", &id_b));
  EXPECT_EQ(id_a, id_b) << "content digest is the campaign identity";
  bool attached = false;
  ASSERT_TRUE(find_bool_field(second, "attached", &attached));
  EXPECT_TRUE(attached);
  EXPECT_EQ(daemon.server->campaigns(), 1u);

  // Both clients can fetch identical bodies.
  const std::string frame =
      "{\"op\":\"results\",\"campaign\":" + json_string(id_a) + "}";
  std::string body_a;
  std::string body_b;
  ASSERT_TRUE(find_string_field(a.round_trip(frame), "body", &body_a));
  ASSERT_TRUE(find_string_field(b.round_trip(frame), "body", &body_b));
  EXPECT_EQ(body_a, body_b);
}

TEST(Daemon, RestartServesTheResubmissionFromDisk) {
  std::string cache_dir;
  std::string socket_path;
  {
    DaemonFixture daemon("restart");
    cache_dir = daemon.cache_dir;
    socket_path = daemon.socket_path;
    Client client(daemon.socket_path);
    ASSERT_TRUE(client.connected());
    const std::string response = client.round_trip(submit_frame(kSmallIni));
    std::string id;
    ASSERT_TRUE(find_string_field(response, "campaign", &id));
    // Wait for completion so the journal is fully written.
    (void)client.round_trip("{\"op\":\"results\",\"campaign\":" +
                            json_string(id) + "}");
  }  // daemon stopped, process state gone; only the cache dir survives

  ServerOptions opts;
  opts.socket_path = socket_path;
  opts.cache_dir = cache_dir;
  Server revived(opts);
  revived.start();
  EXPECT_EQ(revived.cache().size(), 4u) << "index rebuilt from journals";

  Client client(socket_path);
  ASSERT_TRUE(client.connected());
  const std::string response = client.round_trip(submit_frame(kSmallIni));
  std::string id;
  ASSERT_TRUE(find_string_field(response, "campaign", &id));
  const std::string results = client.round_trip(
      "{\"op\":\"results\",\"campaign\":" + json_string(id) + "}");
  std::uint64_t executed = 99;
  std::uint64_t completed = 0;
  ASSERT_TRUE(find_u64_field(results, "executed", &executed)) << results;
  ASSERT_TRUE(find_u64_field(results, "completed", &completed));
  EXPECT_EQ(executed, 0u) << "a resubmitted spec must not re-simulate";
  EXPECT_EQ(completed, 4u);
  std::string body;
  ASSERT_TRUE(find_string_field(results, "body", &body));
  EXPECT_EQ(body, driver::sweep_json(driver::Runner::run(small_spec())));
  revived.stop();
}

TEST(Daemon, SubscribeStreamsEveryPointThenDone) {
  DaemonFixture daemon("subscribe", /*with_cache=*/false);
  Client client(daemon.socket_path);
  ASSERT_TRUE(client.connected());

  const std::string response = client.round_trip(submit_frame(kSmallIni));
  std::string id;
  ASSERT_TRUE(find_string_field(response, "campaign", &id));

  ASSERT_TRUE(client.send_line(
      "{\"op\":\"subscribe\",\"campaign\":" + json_string(id) + "}"));
  std::size_t point_frames = 0;
  for (;;) {
    std::string frame;
    ASSERT_TRUE(client.read_line(&frame)) << "stream ended early";
    std::string event;
    ASSERT_TRUE(find_string_field(frame, "event", &event)) << frame;
    if (event == "done") {
      std::string state;
      EXPECT_TRUE(find_string_field(frame, "state", &state));
      EXPECT_EQ(state, "done");
      break;
    }
    EXPECT_EQ(event, "point");
    ++point_frames;
  }
  EXPECT_EQ(point_frames, 4u);
}

TEST(Daemon, MalformedFramesGetTypedErrorsAndTheConnectionSurvives) {
  DaemonFixture daemon("malformed", /*with_cache=*/false);
  Client client(daemon.socket_path);
  ASSERT_TRUE(client.connected());

  std::string code;
  ASSERT_TRUE(
      find_string_field(client.round_trip("this is not json"), "error", &code));
  EXPECT_EQ(code, "not_json");
  ASSERT_TRUE(
      find_string_field(client.round_trip("{\"op\":\"reboot\"}"), "error",
                        &code));
  EXPECT_EQ(code, "unknown_op");
  ASSERT_TRUE(find_string_field(
      client.round_trip("{\"op\":\"submit\",\"config\":\"kind = ???\"}"),
      "error", &code));
  EXPECT_EQ(code, "invalid_spec");
  ASSERT_TRUE(find_string_field(
      client.round_trip(
          "{\"op\":\"status\",\"campaign\":\"0000000000000000\"}"),
      "error", &code));
  EXPECT_EQ(code, "unknown_campaign");

  // After all that abuse the same connection still serves a campaign.
  bool ok = false;
  ASSERT_TRUE(find_bool_field(client.round_trip(submit_frame(kSmallIni)), "ok",
                              &ok));
  EXPECT_TRUE(ok);
}

TEST(Daemon, CancelOpStopsARunningCampaign) {
  driver::register_workload(std::make_unique<ServeSpinWorkload>());
  DaemonFixture daemon("cancel", /*with_cache=*/false);
  Client client(daemon.socket_path);
  ASSERT_TRUE(client.connected());

  const char* spin_ini =
      "[experiment]\nkind = serve_spin\nthreads = 1\n"
      "[guard]\npoint_timeout_ms = 5000\n"
      "[sweep]\nt_p = 1 1\n";
  const std::string response = client.round_trip(submit_frame(spin_ini));
  std::string id;
  ASSERT_TRUE(find_string_field(response, "campaign", &id)) << response;

  bool ok = false;
  ASSERT_TRUE(find_bool_field(
      client.round_trip("{\"op\":\"cancel\",\"campaign\":" + json_string(id) +
                        "}"),
      "ok", &ok));
  EXPECT_TRUE(ok);

  // The campaign winds down to the cancelled state; poll status briefly.
  std::string state;
  for (int i = 0; i < 100 && state != "cancelled"; ++i) {
    const std::string status = client.round_trip(
        "{\"op\":\"status\",\"campaign\":" + json_string(id) + "}");
    ASSERT_TRUE(find_string_field(status, "state", &state)) << status;
    if (state != "cancelled") {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_EQ(state, "cancelled");

  // results on a cancelled campaign is a typed error, not a hang.
  std::string code;
  ASSERT_TRUE(find_string_field(
      client.round_trip("{\"op\":\"results\",\"campaign\":" +
                        json_string(id) + "}"),
      "error", &code));
  EXPECT_EQ(code, "campaign_failed");
}

TEST(Daemon, ShutdownOpWakesWaiters) {
  DaemonFixture daemon("shutdown", /*with_cache=*/false);
  std::thread waiter([&] { daemon.server->wait_for_shutdown(); });
  Client client(daemon.socket_path);
  ASSERT_TRUE(client.connected());
  bool shutdown = false;
  ASSERT_TRUE(find_bool_field(client.round_trip("{\"op\":\"shutdown\"}"),
                              "shutdown", &shutdown));
  EXPECT_TRUE(shutdown);
  waiter.join();  // wait_for_shutdown must return without stop()
  daemon.server->stop();
}

TEST(Daemon, DistSocketBackendMatchesTheRunnerAndStreamsSubscribe) {
  // The daemon executing campaigns across TCP-socket worker processes is
  // still byte-identical to the in-process Runner, and a subscriber sees
  // the per-point stream the distributed merge feeds through the
  // campaign's event channel.
  ServerOptions opts;
  opts.socket_path = temp_path("dist_sock_" + std::to_string(::getpid()));
  std::remove(opts.socket_path.c_str());
  opts.dist_workers = 2;
  opts.dist_socket = true;
  Server server(opts);
  server.start();

  Client client(opts.socket_path);
  ASSERT_TRUE(client.connected());
  const std::string response = client.round_trip(submit_frame(kSmallIni));
  bool ok = false;
  ASSERT_TRUE(find_bool_field(response, "ok", &ok)) << response;
  ASSERT_TRUE(ok) << response;
  std::string id;
  ASSERT_TRUE(find_string_field(response, "campaign", &id));

  // Subscribe streams one point frame per record, then one done frame.
  Client sub(opts.socket_path);
  ASSERT_TRUE(sub.connected());
  ASSERT_TRUE(sub.send_line(
      "{\"op\":\"subscribe\",\"campaign\":" + json_string(id) + "}"));
  std::size_t points = 0;
  std::string line;
  for (;;) {
    ASSERT_TRUE(sub.read_line(&line));
    std::string event;
    ASSERT_TRUE(find_string_field(line, "event", &event)) << line;
    if (event == "done") break;
    EXPECT_EQ(event, "point") << line;
    ++points;
  }
  EXPECT_EQ(points, 4u);
  std::string state;
  ASSERT_TRUE(find_string_field(line, "state", &state));
  EXPECT_EQ(state, "done");

  // results stays byte-identical to the in-process Runner.
  const std::string results = client.round_trip(
      "{\"op\":\"results\",\"campaign\":" + json_string(id) + "}");
  ASSERT_TRUE(find_bool_field(results, "ok", &ok) && ok) << results;
  std::string body;
  ASSERT_TRUE(find_string_field(results, "body", &body));
  EXPECT_EQ(body, driver::sweep_json(driver::Runner::run(small_spec())));

  server.stop();
}

}  // namespace
}  // namespace psync::serve
