#include "psync/common/units.hpp"

#include <gtest/gtest.h>

namespace psync::units {
namespace {

TEST(Units, BitPeriodExactForPaperRates) {
  // 10 Gb/s photonic slot = 100 ps; 2.5 GHz mesh clock = 400 ps.
  EXPECT_EQ(bit_period_ps(10.0), 100);
  EXPECT_EQ(clock_period_ps(2.5), 400);
  EXPECT_EQ(bit_period_ps(320.0 / 64.0), 200);  // one 64-bit sample slot
}

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(ps_to_ns(1500), 1.5);
  EXPECT_EQ(ns_to_ps(1.5), 1500);
  EXPECT_EQ(ns_to_ps(ps_to_ns(123456789)), 123456789);
  EXPECT_DOUBLE_EQ(ps_to_us(2'000'000), 2.0);
  EXPECT_DOUBLE_EQ(ps_to_s(1'000'000'000'000LL), 1.0);
}

TEST(Units, NegativeNanosecondsRoundCorrectly) {
  EXPECT_EQ(ns_to_ps(-1.5), -1500);
}

TEST(Units, BitsInInterval) {
  // 320 Gb/s for 1 ns = 320 bits.
  EXPECT_DOUBLE_EQ(bits_in(1000, 320.0), 320.0);
  EXPECT_DOUBLE_EQ(gbps_of(320.0, 1000), 320.0);
  EXPECT_DOUBLE_EQ(gbps_of(320.0, 0), 0.0);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(fj_to_pj(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(pj_to_fj(1.5), 1500.0);
  // 1 W for 1 ns = 1 nJ = 1e6 fJ.
  EXPECT_DOUBLE_EQ(energy_fj(1.0, 1000), 1e6);
  EXPECT_DOUBLE_EQ(watts_of(1e6, 1000), 1.0);
}

TEST(Units, LengthConversions) {
  EXPECT_DOUBLE_EQ(cm_to_um(2.0), 20000.0);
  EXPECT_DOUBLE_EQ(um_to_cm(20000.0), 2.0);
  EXPECT_DOUBLE_EQ(mm_to_um(1.0), 1000.0);
}

}  // namespace
}  // namespace psync::units
