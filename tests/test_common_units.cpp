#include "psync/common/units.hpp"

#include <gtest/gtest.h>

#include "psync/common/quantity.hpp"

namespace psync::units {
namespace {

TEST(Units, BitPeriodExactForPaperRates) {
  // 10 Gb/s photonic slot = 100 ps; 2.5 GHz mesh clock = 400 ps.
  EXPECT_EQ(bit_period_ps(10.0), 100);
  EXPECT_EQ(clock_period_ps(2.5), 400);
  EXPECT_EQ(bit_period_ps(320.0 / 64.0), 200);  // one 64-bit sample slot
  EXPECT_EQ(bit_period_ps(3.125), 320);         // divides exactly
  EXPECT_EQ(clock_period_ps(0.1), 10000);       // decimally exact rate
  // Accepted rates are usable in constant expressions.
  static_assert(bit_period_ps(10.0) == 100);
  static_assert(clock_period_ps(2.5) == 400);
}

TEST(Units, NonRepresentableRatesRejected) {
  // 3 GHz would need a 333.3 ps period; on the integer picosecond clock
  // that drifts by a full slot every ~3000 slots, so it must be refused
  // rather than silently rounded.
  EXPECT_THROW(bit_period_ps(3.0), ConfigError);
  EXPECT_THROW(clock_period_ps(3.0), ConfigError);
  EXPECT_THROW(bit_period_ps(7.0), ConfigError);
  EXPECT_THROW(bit_period_ps(0.0), ConfigError);
  EXPECT_THROW(bit_period_ps(-10.0), ConfigError);
  EXPECT_THROW(clock_period_ps(1e9), ConfigError);  // period < 1 ps
}

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(ps_to_ns(1500), 1.5);
  EXPECT_EQ(ns_to_ps(1.5), 1500);
  EXPECT_EQ(ns_to_ps(ps_to_ns(123456789)), 123456789);
  EXPECT_DOUBLE_EQ(ps_to_us(2'000'000), 2.0);
  EXPECT_DOUBLE_EQ(ps_to_s(1'000'000'000'000LL), 1.0);
}

TEST(Units, NegativeNanosecondsRoundCorrectly) {
  EXPECT_EQ(ns_to_ps(-1.5), -1500);
}

TEST(Units, BitsInInterval) {
  // 320 Gb/s for 1 ns = 320 bits.
  EXPECT_DOUBLE_EQ(bits_in(1000, 320.0), 320.0);
  EXPECT_DOUBLE_EQ(gbps_of(320.0, 1000), 320.0);
  EXPECT_DOUBLE_EQ(gbps_of(320.0, 0), 0.0);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(fj_to_pj(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(pj_to_fj(1.5), 1500.0);
  // 1 W for 1 ns = 1 nJ = 1e6 fJ.
  EXPECT_DOUBLE_EQ(energy_fj(1.0, 1000), 1e6);
  EXPECT_DOUBLE_EQ(watts_of(1e6, 1000), 1.0);
}

TEST(Units, LengthConversions) {
  EXPECT_DOUBLE_EQ(cm_to_um(2.0), 20000.0);
  EXPECT_DOUBLE_EQ(um_to_cm(20000.0), 2.0);
  EXPECT_DOUBLE_EQ(mm_to_um(1.0), 1000.0);
}

TEST(Quantity, DbLinearRoundTrip) {
  EXPECT_DOUBLE_EQ(db_to_linear(DecibelsDb{10.0}), 10.0);
  EXPECT_DOUBLE_EQ(db_to_linear(DecibelsDb{0.0}), 1.0);
  EXPECT_NEAR(db_to_linear(DecibelsDb{3.0103}), 2.0, 1e-4);
  for (double db : {-20.0, -3.0, 0.0, 0.5, 13.7}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(DecibelsDb{db})).value(), db, 1e-12);
  }
  EXPECT_THROW(linear_to_db(0.0), SimulationError);
  EXPECT_THROW(linear_to_db(-1.0), SimulationError);
}

TEST(Quantity, DbmMilliwattRoundTrip) {
  EXPECT_DOUBLE_EQ(dbm_to_mw(DbmPower{0.0}).value(), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(DbmPower{10.0}).value(), 10.0);
  for (double mw : {0.01, 0.5, 1.0, 3.7, 100.0}) {
    EXPECT_NEAR(dbm_to_mw(mw_to_dbm(MilliWatts{mw})).value(), mw, 1e-12);
  }
  EXPECT_THROW(mw_to_dbm(MilliWatts{0.0}), SimulationError);
  EXPECT_THROW(mw_to_dbm(MilliWatts{-1.0}), SimulationError);
}

TEST(Quantity, EnergyRoundTrip) {
  static_assert(fj_to_pj(FemtoJoules{1500.0}).value() == 1.5);
  static_assert(pj_to_fj(PicoJoules{1.5}).value() == 1500.0);
  for (double fj : {0.0, 1.0, 50.0, 1234.5}) {
    EXPECT_DOUBLE_EQ(pj_to_fj(fj_to_pj(FemtoJoules{fj})).value(), fj);
  }
}

TEST(Quantity, AffineDbmAlgebraMatchesLinkBudgetEquations) {
  // Eq. 1-3 shapes: level - level = dB; level +/- dB = level.
  const DbmPower launch{3.0};
  const DbmPower sensitivity{-20.0};
  const DecibelsDb budget = launch - sensitivity;
  EXPECT_DOUBLE_EQ(budget.value(), 23.0);
  EXPECT_DOUBLE_EQ((launch - DecibelsDb{1.0}).value(), 2.0);
  EXPECT_DOUBLE_EQ((sensitivity + budget).value(), launch.value());
}

TEST(Quantity, PeriodAndRateBridges) {
  static_assert(period(GigaHertz{10.0}).value() == 100.0);
  static_assert(bit_period(GigabitsPerSec{2.5}).value() == 400.0);
  static_assert(slot_clock(GigabitsPerSec{320.0}, 64.0).value() == 5.0);
  // Energy/power/rate bridges used by the Fig. 5 models.
  static_assert(energy_per_bit(MilliWatts{1.0}, GigabitsPerSec{10.0}).value() ==
                100.0);
  static_assert(power_of(FemtoJoules{100.0}, GigabitsPerSec{10.0}).value() ==
                1.0);
  static_assert(energy_over(MilliWatts{1.0}, Ps{1000.0}).value() == 1.0);
}

TEST(Quantity, TimePsInterop) {
  static_assert(ps_from(TimePs{1500}).value() == 1500.0);
  static_assert(to_time_ps(Ps{1499.6}) == 1500);
  static_assert(to_time_ps(Ps{-1499.6}) == -1500);
  EXPECT_DOUBLE_EQ(ps_to_ns(Ps{1500.0}).value(), 1.5);
  EXPECT_DOUBLE_EQ(ns_to_ps(Ns{1.5}).value(), 1500.0);
}

TEST(StrongIndexTypes, BehaveLikeIndices) {
  NodeId n{3};
  EXPECT_EQ(n.value(), 3);
  EXPECT_EQ((++n).value(), 4);
  EXPECT_TRUE(NodeId{1} < NodeId{2});
  EXPECT_EQ(LaneId{7u}.value(), 7u);
  EXPECT_EQ(SlotId{1'000'000'000'000}.value(), 1'000'000'000'000);
  std::hash<NodeId> h;
  EXPECT_EQ(h(NodeId{3}), h(NodeId{3}));
}

}  // namespace
}  // namespace psync::units
