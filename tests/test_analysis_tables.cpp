// Regression tests pinning the analysis library to the paper's printed
// numbers: Table I, Table II, Table III and the Fig. 11 crossover.
#include <gtest/gtest.h>

#include "psync/analysis/fft_model.hpp"
#include "psync/analysis/mesh_model.hpp"
#include "psync/analysis/transpose_model.hpp"

namespace psync::analysis {
namespace {

TEST(Table1, ReproducesEveryPaperRow) {
  const FftWorkload w;  // paper defaults
  const auto rows = table1(w, 64);
  ASSERT_EQ(rows.size(), 7u);

  const struct {
    std::uint64_t k, s_b;
    double t_ck, t_cf, w_p, eta_pct;
  } paper[] = {
      {1, 1024, 40960, 0, 409.6, 50.00},
      {2, 512, 18432, 4096, 455.1, 68.97},
      {4, 256, 8192, 8192, 512.0, 83.33},
      {8, 128, 3584, 12288, 585.1, 91.95},
      {16, 64, 1536, 16384, 682.7, 96.39},
      {32, 32, 640, 20480, 819.2, 98.46},
      {64, 16, 256, 24576, 1024.0, 99.38},
  };
  for (std::size_t i = 0; i < 7; ++i) {
    SCOPED_TRACE("k=" + std::to_string(paper[i].k));
    EXPECT_EQ(rows[i].k, paper[i].k);
    EXPECT_EQ(rows[i].block_size, paper[i].s_b);
    EXPECT_DOUBLE_EQ(rows[i].t_ck_ns.value(), paper[i].t_ck);
    EXPECT_DOUBLE_EQ(rows[i].t_cf_ns.value(), paper[i].t_cf);
    EXPECT_NEAR(rows[i].bandwidth_gbps.value(), paper[i].w_p, 0.05);
    EXPECT_NEAR(rows[i].efficiency * 100.0, paper[i].eta_pct, 0.005);
  }
}

TEST(Table1, OpCountsTieToFftLibraryFormulas) {
  const FftWorkload w;
  EXPECT_EQ(block_mults(w, 1), 20480u);
  EXPECT_EQ(block_mults(w, 8), 2ull * 128 * 7);
  EXPECT_EQ(final_mults(w, 8), 2ull * 1024 * 3);
}

TEST(Table2, ReproducesEveryPaperRow) {
  const FftWorkload w;
  const MeshDeliveryParams mesh;  // t_r = 1
  const auto rows = table2(w, mesh, 64);
  ASSERT_EQ(rows.size(), 7u);

  const struct {
    std::uint64_t k;
    double eta_d_pct, eta_pct;
  } paper[] = {
      {1, 98.46, 49.23}, {2, 96.97, 66.88},  {4, 94.12, 78.43},
      {8, 88.89, 81.74}, {16, 80.00, 77.11}, {32, 66.67, 65.64},
      {64, 50.01, 49.70},
  };
  for (std::size_t i = 0; i < 7; ++i) {
    SCOPED_TRACE("k=" + std::to_string(paper[i].k));
    EXPECT_EQ(rows[i].k, paper[i].k);
    EXPECT_NEAR(rows[i].delivery_efficiency * 100.0, paper[i].eta_d_pct, 0.05);
    EXPECT_NEAR(rows[i].compute_efficiency * 100.0, paper[i].eta_pct, 0.35);
  }
}

TEST(Table2, MeshPeaksAtK8) {
  // The paper: "compute efficiency peaks at 82% when k = 8".
  const FftWorkload w;
  const MeshDeliveryParams mesh;
  const auto rows = table2(w, mesh, 64);
  std::uint64_t best_k = 0;
  double best = 0.0;
  for (const auto& r : rows) {
    if (r.compute_efficiency > best) {
      best = r.compute_efficiency;
      best_k = r.k;
    }
  }
  EXPECT_EQ(best_k, 8u);
  EXPECT_NEAR(best * 100.0, 82.0, 1.0);
}

TEST(Table2, DeliveryCyclesFollowEq21) {
  // P*F + P*sqrt(P)*t_r for P=256, F=1024: 256*1024 + 256*16.
  EXPECT_DOUBLE_EQ(mesh_delivery_cycles(256, 1024, 1.0),
                   256.0 * 1024.0 + 256.0 * 16.0);
}

TEST(Fig11, PsyncMonotoneMeshPeaksAndCrosses) {
  const FftWorkload w;
  const MeshDeliveryParams mesh;
  const auto pts = fig11(w, mesh, 64);
  ASSERT_EQ(pts.size(), 7u);
  // P-sync tracks the zero-latency bound: monotone increasing in k.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].psync, pts[i - 1].psync);
  }
  // The mesh rises then falls; at k=64 the gap is ~2x.
  EXPECT_GT(pts[3].mesh, pts[0].mesh);
  EXPECT_LT(pts[6].mesh, pts[3].mesh);
  EXPECT_GT(pts[6].psync / pts[6].mesh, 1.9);
  // P-sync dominates the mesh at every k.
  for (const auto& p : pts) EXPECT_GT(p.psync, p.mesh);
}

TEST(Table3, PscanWritebackIs1081344Cycles) {
  const TransposeParams p;  // paper defaults
  EXPECT_EQ(transactions(p), 32768u);
  EXPECT_EQ(transaction_cycles(p), 33u);
  EXPECT_EQ(pscan_writeback_cycles(p), kPaperPscanCycles);
}

TEST(Table3, MeshEstimateLandsInPaperBand) {
  const TransposeParams p;
  // t_p = 1: paper 3,526,620 (3.26x); stage model gives ~3.0-3.3x.
  const auto tp1 = mesh_writeback_cycles_estimate(p, 1);
  const double mult1 =
      static_cast<double>(tp1) / static_cast<double>(kPaperPscanCycles);
  EXPECT_GT(mult1, 2.7);
  EXPECT_LT(mult1, 3.5);
  // t_p = 4: paper 6,553,448 (6.06x).
  const auto tp4 = mesh_writeback_cycles_estimate(p, 4);
  const double mult4 =
      static_cast<double>(tp4) / static_cast<double>(kPaperPscanCycles);
  EXPECT_GT(mult4, 5.4);
  EXPECT_LT(mult4, 6.5);
}

TEST(Table3, ScalesWithProblemSize) {
  TransposeParams p;
  p.processors = 256;
  p.row_samples = 256;
  const auto small = pscan_writeback_cycles(p);
  p.processors = 1024;
  p.row_samples = 1024;
  EXPECT_EQ(pscan_writeback_cycles(p), small * 16);
}

}  // namespace
}  // namespace psync::analysis
