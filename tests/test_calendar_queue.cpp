// CalendarQueue: the bucketed release queue behind the mesh's packet
// release schedule. The contract under test is the one the old
// std::priority_queue provided: pops come out in key order, push order
// preserved within a key — including the awkward cases (events pushed for
// keys at or before the current pop cursor, jumps far past the bucket
// horizon) that a naive calendar implementation gets wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "psync/common/calendar_queue.hpp"
#include "psync/common/rng.hpp"

namespace psync {
namespace {

using Queue = CalendarQueue<int>;

std::vector<int> pop_all_due(Queue& q, std::int64_t key) {
  std::vector<int> out;
  q.pop_due(key, &out);
  return out;
}

TEST(CalendarQueue, PopsInKeyOrder) {
  Queue q;
  q.push(30, 3);
  q.push(10, 1);
  q.push(20, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(pop_all_due(q, 100), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, EqualKeysPopInPushOrder) {
  Queue q;
  for (int i = 0; i < 8; ++i) q.push(5, i);
  EXPECT_EQ(pop_all_due(q, 5), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(CalendarQueue, PopDueTakesOnlyDueEvents) {
  Queue q;
  q.push(1, 1);
  q.push(2, 2);
  q.push(3, 3);
  EXPECT_EQ(pop_all_due(q, 2), (std::vector<int>{1, 2}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(pop_all_due(q, 3), (std::vector<int>{3}));
}

TEST(CalendarQueue, NextKeyReportsEarliestPending) {
  Queue q;
  EXPECT_EQ(q.next_key(0), -1);
  q.push(500, 1);
  q.push(90, 2);
  EXPECT_EQ(q.next_key(0), 90);
  EXPECT_EQ(pop_all_due(q, 90), (std::vector<int>{2}));
  EXPECT_EQ(q.next_key(91), 500);
}

TEST(CalendarQueue, EventsBeyondWindowHorizon) {
  Queue q;
  q.push(3, 1);
  q.push(Queue::kWindow * 5 + 7, 2);   // far beyond the horizon
  q.push(Queue::kWindow * 20 + 1, 3);  // much further
  EXPECT_EQ(pop_all_due(q, 10), (std::vector<int>{1}));
  EXPECT_EQ(q.next_key(11), Queue::kWindow * 5 + 7);
  EXPECT_EQ(pop_all_due(q, Queue::kWindow * 5 + 7), (std::vector<int>{2}));
  EXPECT_EQ(pop_all_due(q, Queue::kWindow * 30), (std::vector<int>{3}));
  EXPECT_TRUE(q.empty());
}

// Regression: a pop that jumps several windows forward while events sit
// between the old and new horizon must still deliver them (and must not
// hang re-rolling the window).
TEST(CalendarQueue, JumpPastWindowWithPendingEventsInBetween) {
  Queue q;
  q.push(500, 1);
  q.push(Queue::kWindow * 3, 2);
  EXPECT_EQ(pop_all_due(q, Queue::kWindow * 4), (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.empty());
}

// Regression: pushing an event at or before the current pop cursor (a
// packet injected with release_cycle <= the mesh's current cycle) must pop
// on the next drain, not hang or vanish.
TEST(CalendarQueue, LatePushPopsOnNextDrain) {
  Queue q;
  q.push(100, 1);
  EXPECT_EQ(pop_all_due(q, 100), (std::vector<int>{1}));
  q.push(100, 2);  // at the cursor
  q.push(40, 3);   // before the cursor
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.next_key(100), 40);
  EXPECT_EQ(pop_all_due(q, 100), (std::vector<int>{3, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, InterleavedPushPopMatchesReference) {
  // Randomized differential test against a (key, push-seq) ordered map.
  Rng rng(99);
  Queue q;
  std::multimap<std::int64_t, int> ref;
  std::int64_t cursor = 0;
  int next_id = 0;
  for (int round = 0; round < 2000; ++round) {
    const int pushes = static_cast<int>(rng.next_u64() % 4);
    for (int p = 0; p < pushes; ++p) {
      // Mix of near-future, far-future, and already-due keys.
      const std::uint64_t r = rng.next_u64() % 100;
      std::int64_t key;
      if (r < 70) {
        key = cursor + static_cast<std::int64_t>(rng.next_u64() % 64);
      } else if (r < 90) {
        key = cursor + static_cast<std::int64_t>(rng.next_u64() % 8192);
      } else {
        key = std::max<std::int64_t>(
            0, cursor - static_cast<std::int64_t>(rng.next_u64() % 32));
      }
      q.push(key, next_id);
      ref.emplace(key, next_id);
      ++next_id;
    }
    // Advance: usually small steps, occasionally a large idle-skip jump.
    cursor += rng.next_u64() % 100 < 90
                  ? static_cast<std::int64_t>(rng.next_u64() % 4)
                  : static_cast<std::int64_t>(rng.next_u64() % 5000);
    std::vector<int> got;
    q.pop_due(cursor, &got);
    std::vector<int> want;
    for (auto it = ref.begin(); it != ref.end() && it->first <= cursor;) {
      want.push_back(it->second);
      it = ref.erase(it);
    }
    // multimap iteration is key order with insertion order within a key —
    // exactly the queue's contract (ids are pushed in increasing order).
    ASSERT_EQ(got, want) << "round " << round << " cursor " << cursor;
  }
  EXPECT_EQ(q.size(), ref.size());
}

TEST(CalendarQueue, SizeAndEmptyTrackPushesAndPops) {
  Queue q;
  EXPECT_TRUE(q.empty());
  q.reserve_buckets(4);
  for (int i = 0; i < 100; ++i) q.push(i * 3, i);
  EXPECT_EQ(q.size(), 100u);
  std::vector<int> out;
  q.pop_due(150, &out);
  EXPECT_EQ(q.size(), 100u - out.size());
  q.pop_due(300, &out);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace psync
