#include "psync/common/config.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync {
namespace {

const char* kSample = R"(
# top comment
[experiment]
kind = fft2d    ; inline comment

[machine]
processors = 16
waveguide_gbps = 320.5
verify = true
hex = 0x20
)";

TEST(IniConfig, ParsesSectionsAndKeys) {
  const auto cfg = IniConfig::parse(kSample);
  EXPECT_TRUE(cfg.has_section("experiment"));
  EXPECT_TRUE(cfg.has("machine", "processors"));
  EXPECT_FALSE(cfg.has("machine", "missing"));
  EXPECT_EQ(cfg.sections(), (std::vector<std::string>{"experiment", "machine"}));
  EXPECT_EQ(cfg.keys("machine").size(), 4u);
}

TEST(IniConfig, TypedAccessors) {
  const auto cfg = IniConfig::parse(kSample);
  EXPECT_EQ(cfg.get_string("experiment", "kind", "?"), "fft2d");
  EXPECT_EQ(cfg.get_int("machine", "processors", 0), 16);
  EXPECT_EQ(cfg.get_int("machine", "hex", 0), 32);  // base 0 parsing
  EXPECT_DOUBLE_EQ(cfg.get_double("machine", "waveguide_gbps", 0.0), 320.5);
  EXPECT_TRUE(cfg.get_bool("machine", "verify", false));
}

TEST(IniConfig, FallbacksWhenMissing) {
  const auto cfg = IniConfig::parse(kSample);
  EXPECT_EQ(cfg.get_int("machine", "nope", 42), 42);
  EXPECT_EQ(cfg.get_string("nosection", "k", "dflt"), "dflt");
  EXPECT_FALSE(cfg.get("nosection", "k").has_value());
}

TEST(IniConfig, BooleanSpellings) {
  const auto cfg = IniConfig::parse(
      "[b]\na = yes\nb = OFF\nc = 1\nd = False\n");
  EXPECT_TRUE(cfg.get_bool("b", "a", false));
  EXPECT_FALSE(cfg.get_bool("b", "b", true));
  EXPECT_TRUE(cfg.get_bool("b", "c", false));
  EXPECT_FALSE(cfg.get_bool("b", "d", true));
}

TEST(IniConfig, MalformedInputsRejectedWithLineNumbers) {
  EXPECT_THROW((void)IniConfig::parse("[unclosed\nk = v\n"), SimulationError);
  EXPECT_THROW((void)IniConfig::parse("key_outside = 1\n"), SimulationError);
  EXPECT_THROW((void)IniConfig::parse("[s]\nnot a pair\n"), SimulationError);
  EXPECT_THROW((void)IniConfig::parse("[s]\n= novalue\n"), SimulationError);
  EXPECT_THROW((void)IniConfig::parse("[s]\nk = 1\nk = 2\n"), SimulationError);
}

TEST(IniConfig, TypeErrorsAreLoud) {
  const auto cfg = IniConfig::parse("[s]\nn = 12abc\nf = x.y\nb = maybe\n");
  EXPECT_THROW((void)cfg.get_int("s", "n", 0), SimulationError);
  EXPECT_THROW((void)cfg.get_double("s", "f", 0.0), SimulationError);
  EXPECT_THROW((void)cfg.get_bool("s", "b", false), SimulationError);
}

TEST(IniConfig, LoadMissingFileThrows) {
  EXPECT_THROW((void)IniConfig::load("/no/such/file.ini"), SimulationError);
}

TEST(IniConfig, EmptyAndCommentOnlyInputs) {
  const auto cfg = IniConfig::parse("# nothing\n\n; also nothing\n");
  EXPECT_TRUE(cfg.sections().empty());
}

}  // namespace
}  // namespace psync
