#include "psync/common/config.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync {
namespace {

const char* kSample = R"(
# top comment
[experiment]
kind = fft2d    ; inline comment

[machine]
processors = 16
waveguide_gbps = 320.5
verify = true
hex = 0x20
)";

TEST(IniConfig, ParsesSectionsAndKeys) {
  const auto cfg = IniConfig::parse(kSample);
  EXPECT_TRUE(cfg.has_section("experiment"));
  EXPECT_TRUE(cfg.has("machine", "processors"));
  EXPECT_FALSE(cfg.has("machine", "missing"));
  EXPECT_EQ(cfg.sections(), (std::vector<std::string>{"experiment", "machine"}));
  EXPECT_EQ(cfg.keys("machine").size(), 4u);
}

TEST(IniConfig, TypedAccessors) {
  const auto cfg = IniConfig::parse(kSample);
  EXPECT_EQ(cfg.get_string("experiment", "kind", "?"), "fft2d");
  EXPECT_EQ(cfg.get_int("machine", "processors", 0), 16);
  EXPECT_EQ(cfg.get_int("machine", "hex", 0), 32);  // base 0 parsing
  EXPECT_DOUBLE_EQ(cfg.get_double("machine", "waveguide_gbps", 0.0), 320.5);
  EXPECT_TRUE(cfg.get_bool("machine", "verify", false));
}

TEST(IniConfig, FallbacksWhenMissing) {
  const auto cfg = IniConfig::parse(kSample);
  EXPECT_EQ(cfg.get_int("machine", "nope", 42), 42);
  EXPECT_EQ(cfg.get_string("nosection", "k", "dflt"), "dflt");
  EXPECT_FALSE(cfg.get("nosection", "k").has_value());
}

TEST(IniConfig, BooleanSpellings) {
  const auto cfg = IniConfig::parse(
      "[b]\na = yes\nb = OFF\nc = 1\nd = False\n");
  EXPECT_TRUE(cfg.get_bool("b", "a", false));
  EXPECT_FALSE(cfg.get_bool("b", "b", true));
  EXPECT_TRUE(cfg.get_bool("b", "c", false));
  EXPECT_FALSE(cfg.get_bool("b", "d", true));
}

TEST(IniConfig, MalformedInputsRejectedWithLineNumbers) {
  EXPECT_THROW((void)IniConfig::parse("[unclosed\nk = v\n"), SimulationError);
  EXPECT_THROW((void)IniConfig::parse("key_outside = 1\n"), SimulationError);
  EXPECT_THROW((void)IniConfig::parse("[s]\nnot a pair\n"), SimulationError);
  EXPECT_THROW((void)IniConfig::parse("[s]\n= novalue\n"), SimulationError);
  EXPECT_THROW((void)IniConfig::parse("[s]\nk = 1\nk = 2\n"), SimulationError);
}

TEST(IniConfig, TypeErrorsAreLoud) {
  const auto cfg = IniConfig::parse("[s]\nn = 12abc\nf = x.y\nb = maybe\n");
  EXPECT_THROW((void)cfg.get_int("s", "n", 0), SimulationError);
  EXPECT_THROW((void)cfg.get_double("s", "f", 0.0), SimulationError);
  EXPECT_THROW((void)cfg.get_bool("s", "b", false), SimulationError);
}

TEST(IniConfig, LoadMissingFileThrows) {
  EXPECT_THROW((void)IniConfig::load("/no/such/file.ini"), SimulationError);
}

TEST(IniConfig, EmptyAndCommentOnlyInputs) {
  const auto cfg = IniConfig::parse("# nothing\n\n; also nothing\n");
  EXPECT_TRUE(cfg.sections().empty());
}

ConfigSchema tiny_schema() {
  ConfigSchema s;
  s.key("machine", "processors", ConfigSchema::Type::kInt)
      .key("machine", "waveguide_gbps", ConfigSchema::Type::kDouble)
      .key("machine", "verify", ConfigSchema::Type::kBool)
      .key("sweep", "values", ConfigSchema::Type::kDoubleList)
      .section("fault");
  return s;
}

TEST(ConfigSchema, CleanConfigHasNoDiagnostics) {
  const auto cfg = IniConfig::parse(
      "[machine]\nprocessors = 16\nwaveguide_gbps = 320.5\nverify = yes\n"
      "[sweep]\nvalues = 1 2.5 4\n[fault]\n");
  EXPECT_TRUE(tiny_schema().validate(cfg).empty());
}

TEST(ConfigSchema, UnknownSectionSuggestsNearestName) {
  const auto cfg = IniConfig::parse("[machin]\nprocessors = 16\n");
  const auto diags = tiny_schema().validate(cfg);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, ConfigDiagnostic::Kind::kUnknownSection);
  EXPECT_EQ(diags[0].section, "machin");
  EXPECT_NE(diags[0].to_string().find("did you mean [machine]"),
            std::string::npos);
}

TEST(ConfigSchema, UnknownKeySuggestsNearestName) {
  const auto cfg = IniConfig::parse("[machine]\nproccessors = 16\n");
  const auto diags = tiny_schema().validate(cfg);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].kind, ConfigDiagnostic::Kind::kUnknownKey);
  EXPECT_EQ(diags[0].key, "proccessors");
  EXPECT_NE(diags[0].to_string().find("did you mean 'processors'"),
            std::string::npos);
}

TEST(ConfigSchema, TypeMismatchesReported) {
  const auto cfg = IniConfig::parse(
      "[machine]\nprocessors = sixteen\nwaveguide_gbps = fast\n"
      "verify = maybe\n[sweep]\nvalues = 1 two 3\n");
  const auto diags = tiny_schema().validate(cfg);
  ASSERT_EQ(diags.size(), 4u);
  for (const auto& d : diags) {
    EXPECT_EQ(d.kind, ConfigDiagnostic::Kind::kBadValue);
    EXPECT_NE(d.to_string().find("expected"), std::string::npos);
  }
}

TEST(ConfigSchema, FarFetchedNamesGetNoSuggestion) {
  const auto cfg = IniConfig::parse("[zzzzqqqq]\nk = 1\n");
  const auto diags = tiny_schema().validate(cfg);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].to_string().find("did you mean"), std::string::npos);
}

TEST(ConfigSchema, ValidatesMultipleProblemsInOrder) {
  const auto cfg = IniConfig::parse(
      "[machine]\nproccessors = 16\nprocessors = ok\n[bogus]\nx = 1\n");
  const auto diags = tiny_schema().validate(cfg);
  ASSERT_EQ(diags.size(), 3u);
  EXPECT_EQ(diags[0].kind, ConfigDiagnostic::Kind::kUnknownKey);
  EXPECT_EQ(diags[1].kind, ConfigDiagnostic::Kind::kBadValue);
  EXPECT_EQ(diags[2].kind, ConfigDiagnostic::Kind::kUnknownSection);
}

}  // namespace
}  // namespace psync
