#include "psync/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace psync {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, RangeInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.next_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng r(42);
  Rng s = r.split();
  // Parent and child streams should not mirror each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (r.next_u64() == s.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

}  // namespace
}  // namespace psync
