#include <gtest/gtest.h>

#include "psync/common/check.hpp"
#include "psync/core/cp_chain.hpp"
#include "psync/core/kernel_vm.hpp"
#include "psync/core/sca.hpp"

namespace psync::core {
namespace {

std::vector<Word> iota_burst(std::size_t n) {
  std::vector<Word> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = 1000 + i;
  return b;
}

CpSchedule all_listen(std::size_t nodes, Slot total) {
  CpSchedule s;
  s.total_slots = total;
  s.node_cps.resize(nodes);
  for (auto& cp : s.node_cps) {
    cp.add(CpStride{0, total, total, 1, CpAction::kListen});
  }
  return s;
}

TEST(Multicast, EveryNodeReceivesTheWholeBurst) {
  const std::size_t nodes = 5;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  const auto burst = iota_burst(12);
  const auto r = engine.scatter_multicast(all_listen(nodes, 12), burst);
  ASSERT_EQ(r.received.size(), nodes);
  for (const auto& got : r.received) {
    EXPECT_EQ(got, burst);
  }
  EXPECT_EQ(r.deliveries.size(), nodes * 12);
  EXPECT_TRUE(r.unclaimed_slots.empty());
}

TEST(Multicast, PlainScatterRejectsOverlapButMulticastAccepts) {
  const std::size_t nodes = 3;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  const auto sched = all_listen(nodes, 8);
  const auto burst = iota_burst(8);
  EXPECT_THROW((void)engine.scatter(sched, burst), SimulationError);
  EXPECT_NO_THROW((void)engine.scatter_multicast(sched, burst));
}

TEST(Multicast, ArrivalTimesFollowEachListenersPosition) {
  const std::size_t nodes = 4;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  const auto r = engine.scatter_multicast(all_listen(nodes, 4), iota_burst(4));
  // For a fixed slot, downstream nodes latch it strictly later.
  for (Slot s = 0; s < 4; ++s) {
    TimePs prev = -1;
    for (const auto& d : r.deliveries) {
      if (d.slot != s) continue;
      EXPECT_GT(d.arrival_ps, prev);
      prev = d.arrival_ps;
    }
  }
}

TEST(Multicast, PartialOverlapMixesUnicastAndBroadcast) {
  // Slots [0,4) broadcast to everyone; slots [4,8) private to node 1.
  const std::size_t nodes = 3;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  CpSchedule sched;
  sched.total_slots = 8;
  sched.node_cps.resize(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    sched.node_cps[i].add(CpStride{0, 4, 4, 1, CpAction::kListen});
  }
  sched.node_cps[1].add(CpStride{4, 4, 4, 1, CpAction::kListen});
  const auto r = engine.scatter_multicast(sched, iota_burst(8));
  EXPECT_EQ(r.received[0].size(), 4u);
  EXPECT_EQ(r.received[1].size(), 8u);
  EXPECT_EQ(r.received[2].size(), 4u);
}

TEST(Multicast, UnclaimedSlotsStillStrict) {
  ScaEngine engine(straight_bus_topology(2, 8.0));
  CpSchedule sched;
  sched.total_slots = 4;
  sched.node_cps.resize(2);
  sched.node_cps[0].add(CpStride{0, 2, 2, 1, CpAction::kListen});
  EXPECT_THROW((void)engine.scatter_multicast(sched, iota_burst(4)),
               SimulationError);
  const auto r = engine.scatter_multicast(sched, iota_burst(4), false);
  EXPECT_EQ(r.unclaimed_slots.size(), 2u);
}

TEST(Multicast, BroadcastBootImageIsNTimesSmaller) {
  const std::size_t nodes = 16;
  BootSegment shared;
  shared.programs.push_back(
      compile_gather_blocks(nodes, 4).node_cps[0]);  // a CP template
  shared.data = pack_kernel_words(compile_fft_kernel(64));

  const BootImage bcast = build_broadcast_boot_image(shared, nodes);
  const BootImage unicast =
      build_boot_image(std::vector<BootSegment>(nodes, shared));
  EXPECT_EQ(unicast.burst.size(), nodes * bcast.burst.size());

  // And the broadcast actually delivers: every node decodes the same
  // kernel, bit-identical.
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  const auto r = engine.scatter_multicast(bcast.schedule, bcast.burst);
  for (std::size_t i = 0; i < nodes; ++i) {
    const DecodedSegment dec = decode_boot_words(r.received[i], 1);
    std::size_t off = 0;
    const KernelProgram kp = unpack_kernel_words(dec.data, off);
    EXPECT_EQ(kp.code.size(), compile_fft_kernel(64).code.size());
  }
}

TEST(Multicast, BroadcastRejectsEmpty) {
  EXPECT_THROW((void)build_broadcast_boot_image(BootSegment{}, 4),
               SimulationError);
  BootSegment s;
  s.data = {1};
  EXPECT_THROW((void)build_broadcast_boot_image(s, 0), SimulationError);
}

}  // namespace
}  // namespace psync::core
