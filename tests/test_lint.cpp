#include "psync/core/lint.hpp"

#include <gtest/gtest.h>

#include "psync/core/cp_compile.hpp"

namespace psync::core {
namespace {

TEST(Lint, CleanScheduleIsOk) {
  const auto topo = straight_bus_topology(4, 8.0);
  const auto sched = compile_gather_interleaved(4, 8);
  const auto rep = lint_transaction(topo, sched, CpAction::kDrive,
                                    {8, 8, 8, 8});
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.errors(), 0u);
  EXPECT_EQ(rep.warnings(), 0u);
  EXPECT_DOUBLE_EQ(rep.utilization, 1.0);
  EXPECT_NE(rep.to_string().find("schedule OK"), std::string::npos);
}

TEST(Lint, CollisionReportedWithBothNodes) {
  const auto topo = straight_bus_topology(2, 8.0);
  CpSchedule bad;
  bad.total_slots = 4;
  bad.node_cps.resize(2);
  bad.node_cps[0].add(CpStride{0, 3, 3, 1, CpAction::kDrive});
  bad.node_cps[1].add(CpStride{2, 2, 2, 1, CpAction::kDrive});
  const auto rep = lint_transaction(topo, bad, CpAction::kDrive);
  EXPECT_FALSE(rep.ok);
  EXPECT_GE(rep.errors(), 1u);
  EXPECT_NE(rep.to_string().find("already claimed by node 0"),
            std::string::npos);
}

TEST(Lint, OutOfRangeSlotIsError) {
  const auto topo = straight_bus_topology(1, 8.0);
  CpSchedule bad;
  bad.total_slots = 4;
  bad.node_cps.resize(1);
  bad.node_cps[0].add(CpStride{2, 4, 4, 1, CpAction::kDrive});
  const auto rep = lint_transaction(topo, bad, CpAction::kDrive);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.to_string().find("outside"), std::string::npos);
}

TEST(Lint, GapsAreWarningsNotErrors) {
  const auto topo = straight_bus_topology(2, 8.0);
  CpSchedule gappy;
  gappy.total_slots = 8;
  gappy.node_cps.resize(2);
  gappy.node_cps[0].add(CpStride{0, 2, 2, 1, CpAction::kDrive});
  gappy.node_cps[1].add(CpStride{4, 2, 2, 1, CpAction::kDrive});
  const auto rep = lint_transaction(topo, gappy, CpAction::kDrive);
  EXPECT_TRUE(rep.ok);
  EXPECT_EQ(rep.warnings(), 1u);
  EXPECT_DOUBLE_EQ(rep.utilization, 0.5);
  EXPECT_NE(rep.to_string().find("idle slots"), std::string::npos);
}

TEST(Lint, DataSizeMismatchCaught) {
  const auto topo = straight_bus_topology(2, 8.0);
  const auto sched = compile_gather_blocks(2, 4);
  const auto rep =
      lint_transaction(topo, sched, CpAction::kDrive, {4, 3});
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.to_string().find("3 words were supplied"), std::string::npos);
}

TEST(Lint, SelfOverlapCaughtPerNode) {
  const auto topo = straight_bus_topology(1, 8.0);
  CpSchedule bad;
  bad.total_slots = 8;
  bad.node_cps.resize(1);
  bad.node_cps[0].add(CpStride{0, 4, 4, 1, CpAction::kDrive});
  bad.node_cps[0].add(CpStride{2, 2, 2, 1, CpAction::kDrive});
  const auto rep = lint_transaction(topo, bad, CpAction::kDrive);
  EXPECT_FALSE(rep.ok);
}

TEST(Lint, BudgetFailureIsError) {
  auto topo = straight_bus_topology(64, 40.0);
  photonic::LinkBudgetParams budget;
  budget.waveguide.loss_straight_db_per_cm = 2.0;  // 80 dB: hopeless
  topo.budget = budget;
  const auto sched = compile_gather_blocks(64, 2);
  const auto rep = lint_transaction(topo, sched, CpAction::kDrive);
  EXPECT_FALSE(rep.ok);
  EXPECT_TRUE(rep.has_margin);
  EXPECT_LT(rep.worst_margin_db, 0.0);
  EXPECT_NE(rep.to_string().find("does not close"), std::string::npos);
}

TEST(Lint, ThinMarginWarnsWithProjectedErrors) {
  auto topo = straight_bus_topology(16, 8.0);
  photonic::LinkBudgetParams budget;
  // Engineer the launch power so the margin is barely positive.
  budget.laser.launch_power_dbm =
      budget.detector.sensitivity_dbm + budget.laser.coupler_loss_db +
      budget.detector.tap_loss_db + DecibelsDb{16 * 0.01 + 8.0 * 0.3 + 0.05};
  topo.budget = budget;
  const auto sched = compile_gather_blocks(16, 4096);  // ~4.2 Mbit moved
  const auto rep = lint_transaction(topo, sched, CpAction::kDrive);
  EXPECT_TRUE(rep.ok);  // closes, but...
  EXPECT_GE(rep.warnings(), 1u);
  EXPECT_NE(rep.to_string().find("thin optical margin"), std::string::npos);
}

TEST(Lint, NodeCountMismatchShortCircuits) {
  const auto topo = straight_bus_topology(4, 8.0);
  const auto sched = compile_gather_blocks(2, 4);
  const auto rep = lint_transaction(topo, sched, CpAction::kDrive);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.errors(), 1u);
}

TEST(Lint, BadTopologyShortCircuits) {
  PscanTopology topo;  // empty: invalid
  const auto rep =
      lint_transaction(topo, compile_gather_blocks(1, 1), CpAction::kDrive);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.to_string().find("topology"), std::string::npos);
}

}  // namespace
}  // namespace psync::core
