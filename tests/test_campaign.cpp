// Campaign layer: cooperative cancellation, the fsync'd checkpoint journal
// and its JSONL codec, kill/resume byte-equivalence of rendered sweeps,
// and PointGuard isolation (failure taxonomy, watchdog timeout + retry +
// quarantine, oom admission gate).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "psync/common/cancel.hpp"
#include "psync/common/check.hpp"
#include "psync/common/journal.hpp"
#include "psync/driver/runner.hpp"

namespace psync::driver {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "psync_campaign_" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// ---------------------------------------------------------------------------
// CancelToken

TEST(CancelToken, FreshTokenPollsClean) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.poll());
}

TEST(CancelToken, ExplicitCancelThrowsOnPoll) {
  CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(token.poll(), CancelledError);
}

TEST(CancelToken, ParentCancelPropagatesToChild) {
  CancelToken parent;
  CancelToken child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_THROW(child.poll(), CancelledError);
  // Only the explicit flag chains — the child's own state is untouched.
  child.set_parent(nullptr);
  EXPECT_FALSE(child.cancelled());
}

TEST(CancelToken, ResetDisarmsFlagDeadlineAndParent) {
  CancelToken parent;
  parent.cancel();
  CancelToken token;
  token.set_parent(&parent);
  token.cancel();
  token.set_deadline_ms(0.0);
  EXPECT_TRUE(token.expired());
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.poll());
}

TEST(CancelToken, DeadlineExpiresOnWallClock) {
  CancelToken token;
  token.set_deadline_ms(1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(token.poll(), CancelledError);
  // CancelledError files under the base SimulationError too.
  EXPECT_THROW(token.poll(), SimulationError);
}

// ---------------------------------------------------------------------------
// JournalWriter / read_journal_lines

TEST(Journal, AppendAndReadBack) {
  const std::string path = temp_path("basic.jsonl");
  JournalWriter w;
  w.open(path, /*keep_existing=*/false);
  EXPECT_TRUE(w.is_open());
  w.append("first");
  w.append("second");
  w.close();
  EXPECT_EQ(read_journal_lines(path),
            (std::vector<std::string>{"first", "second"}));
  std::remove(path.c_str());
}

TEST(Journal, OpenTruncatesUnlessKeepExisting) {
  const std::string path = temp_path("modes.jsonl");
  {
    JournalWriter w;
    w.open(path, false);
    w.append("old");
  }
  {
    JournalWriter w;
    w.open(path, /*keep_existing=*/true);
    w.append("appended");
  }
  EXPECT_EQ(read_journal_lines(path),
            (std::vector<std::string>{"old", "appended"}));
  {
    JournalWriter w;
    w.open(path, /*keep_existing=*/false);
    w.append("fresh");
  }
  EXPECT_EQ(read_journal_lines(path), (std::vector<std::string>{"fresh"}));
  std::remove(path.c_str());
}

TEST(Journal, TornFinalLineIsDropped) {
  const std::string path = temp_path("torn.jsonl");
  write_file(path, "complete line\nhalf a li");
  EXPECT_EQ(read_journal_lines(path),
            (std::vector<std::string>{"complete line"}));
  std::remove(path.c_str());
}

TEST(Journal, ReopenTrimsTheTornTailBeforeAppending) {
  const std::string path = temp_path("torn_reopen.jsonl");
  write_file(path, "complete line\nhalf a li");
  JournalWriter w;
  w.open(path, /*keep_existing=*/true);
  w.append("next record");
  w.close();
  // The torn fragment must not fuse with the appended record.
  EXPECT_EQ(read_journal_lines(path),
            (std::vector<std::string>{"complete line", "next record"}));
  std::remove(path.c_str());
}

TEST(Journal, MissingFileReadsEmpty) {
  EXPECT_TRUE(read_journal_lines(temp_path("never_written.jsonl")).empty());
}

// ---------------------------------------------------------------------------
// Journal record codec

RunRecord sample_record() {
  RunRecord rec;
  rec.index = 7;
  rec.workload = "fft2d";
  rec.knobs = {{"processors", 16.0}, {"margin_db", -1.5}};
  rec.metrics = {{"total_us", 1.0 / 3.0, 2},
                 {"max_err", 4.2723285982897243e-08, -1},
                 {"count", 97.0, 0}};
  rec.retries = 2;
  return rec;
}

TEST(JournalCodec, RoundTripsBitExactDoubles) {
  const RunRecord rec = sample_record();
  const std::uint64_t seed = 0x9E3779B97F4A7C15ULL;  // > 2^53 on purpose
  JournalEntry entry;
  ASSERT_TRUE(parse_journal_line(journal_line(rec, seed), &entry));
  EXPECT_EQ(entry.seed, seed);
  EXPECT_EQ(entry.rec.index, rec.index);
  EXPECT_EQ(entry.rec.workload, rec.workload);
  EXPECT_EQ(entry.rec.status, PointStatus::kOk);
  EXPECT_EQ(entry.rec.retries, rec.retries);
  ASSERT_EQ(entry.rec.knobs.size(), rec.knobs.size());
  for (std::size_t i = 0; i < rec.knobs.size(); ++i) {
    EXPECT_EQ(entry.rec.knobs[i].first, rec.knobs[i].first);
    EXPECT_EQ(entry.rec.knobs[i].second, rec.knobs[i].second);  // bit-exact
  }
  ASSERT_EQ(entry.rec.metrics.size(), rec.metrics.size());
  for (std::size_t i = 0; i < rec.metrics.size(); ++i) {
    EXPECT_EQ(entry.rec.metrics[i].name, rec.metrics[i].name);
    EXPECT_EQ(entry.rec.metrics[i].value, rec.metrics[i].value);
    EXPECT_EQ(entry.rec.metrics[i].decimals, rec.metrics[i].decimals);
  }
  EXPECT_FALSE(entry.rec.failure.has_value());
}

TEST(JournalCodec, RoundTripsFailureWithEscapedMessage) {
  RunRecord rec = sample_record();
  rec.status = PointStatus::kQuarantined;
  rec.metrics.clear();
  rec.failure = PointFailure{FailureKind::kTimeout,
                             "line1\nline2 \"quoted\" back\\slash\ttab", 3};
  JournalEntry entry;
  ASSERT_TRUE(parse_journal_line(journal_line(rec, 1), &entry));
  EXPECT_EQ(entry.rec.status, PointStatus::kQuarantined);
  ASSERT_TRUE(entry.rec.failure.has_value());
  EXPECT_EQ(entry.rec.failure->kind, FailureKind::kTimeout);
  EXPECT_EQ(entry.rec.failure->message, rec.failure->message);
  EXPECT_EQ(entry.rec.failure->attempts, 3u);
}

TEST(JournalCodec, PreservesRawReportFragments) {
  RunRecord rec = sample_record();
  rec.psync_json = "{\"total_ns\":123.456,\"phases\":[{\"name\":\"x\"}]}";
  rec.mesh_json = "{\"total_ns\":9.5}";
  JournalEntry entry;
  ASSERT_TRUE(parse_journal_line(journal_line(rec, 1), &entry));
  EXPECT_EQ(entry.rec.psync_json, rec.psync_json);
  EXPECT_EQ(entry.rec.mesh_json, rec.mesh_json);
}

TEST(JournalCodec, EveryStrictPrefixFailsToParse) {
  RunRecord rec = sample_record();
  rec.failure = PointFailure{FailureKind::kInternalError, "boom", 1};
  rec.psync_json = "{\"a\":[1,2,{\"b\":\"}\"}]}";
  const std::string line = journal_line(rec, 42);
  JournalEntry entry;
  ASSERT_TRUE(parse_journal_line(line, &entry));
  for (std::size_t len = 0; len < line.size(); ++len) {
    EXPECT_FALSE(parse_journal_line(line.substr(0, len), &entry))
        << "prefix of length " << len << " parsed as complete";
  }
}

TEST(JournalCodec, RejectsGarbageAndWrongVersion) {
  JournalEntry entry;
  EXPECT_FALSE(parse_journal_line("", &entry));
  EXPECT_FALSE(parse_journal_line("not json", &entry));
  EXPECT_FALSE(parse_journal_line("{}", &entry));
  std::string v2 = journal_line(sample_record(), 1);
  v2.replace(v2.find("\"v\":1"), 5, "\"v\":2");
  EXPECT_FALSE(parse_journal_line(v2, &entry));
  // Trailing garbage after a well-formed record.
  EXPECT_FALSE(parse_journal_line(journal_line(sample_record(), 1) + "x",
                                  &entry));
}

// ---------------------------------------------------------------------------
// Kill/resume equivalence

ExperimentSpec resume_spec(const std::string& journal) {
  ExperimentSpec spec;
  spec.workload = "fft2d";
  spec.machine.processors = 4;
  spec.machine.matrix_rows = 32;
  spec.machine.matrix_cols = 32;
  spec.axes.push_back({"blocks", {1, 2, 4, 8}});
  spec.threads = 2;
  spec.journal_path = journal;
  return spec;
}

TEST(Resume, EveryJournalPrefixRendersIdenticalOutput) {
  const std::string journal = temp_path("resume.jsonl");
  auto spec = resume_spec(journal);

  const auto full = Runner::run(spec);
  const std::string ref_json = sweep_json(full);
  const std::string ref_csv = sweep_csv(full);
  const auto lines = read_journal_lines(journal);
  ASSERT_EQ(lines.size(), 4u);

  auto truncated = spec;
  truncated.resume = true;
  for (std::size_t keep = 0; keep <= lines.size(); ++keep) {
    std::string content;
    for (std::size_t i = 0; i < keep; ++i) content += lines[i] + "\n";
    // Torn tail: half of the next record, no newline — must be ignored.
    if (keep < lines.size()) {
      content += lines[keep].substr(0, lines[keep].size() / 2);
    }
    write_file(journal, content);

    const auto resumed = Runner::run(truncated);
    EXPECT_EQ(resumed.campaign.resumed, keep) << "keep=" << keep;
    EXPECT_EQ(sweep_json(resumed), ref_json) << "keep=" << keep;
    EXPECT_EQ(sweep_csv(resumed), ref_csv) << "keep=" << keep;
  }
  std::remove(journal.c_str());
}

TEST(Resume, CompletedJournalRunsNothing) {
  const std::string journal = temp_path("resume_done.jsonl");
  auto spec = resume_spec(journal);
  const auto full = Runner::run(spec);

  auto again = spec;
  again.resume = true;
  const auto resumed = Runner::run(again);
  EXPECT_EQ(resumed.campaign.resumed, 4u);
  EXPECT_EQ(resumed.campaign.ok, 4u);
  // Resumed records carry raw report fragments, not live reports.
  for (const auto& rec : resumed.records) {
    EXPECT_FALSE(rec.psync.has_value());
    EXPECT_FALSE(rec.psync_json.empty());
  }
  EXPECT_EQ(sweep_json(resumed), sweep_json(full));
  std::remove(journal.c_str());
}

TEST(Resume, MismatchedSeedIsRejected) {
  const std::string journal = temp_path("resume_seed.jsonl");
  auto spec = resume_spec(journal);
  (void)Runner::run(spec);

  auto other = spec;
  other.resume = true;
  other.input_seed = spec.input_seed + 1;  // different campaign
  EXPECT_THROW((void)Runner::run(other), SimulationError);
  std::remove(journal.c_str());
}

TEST(Resume, CorruptMiddleLineIsRejected) {
  const std::string journal = temp_path("resume_corrupt.jsonl");
  auto spec = resume_spec(journal);
  (void)Runner::run(spec);
  auto lines = read_journal_lines(journal);
  ASSERT_GE(lines.size(), 2u);
  write_file(journal, "definitely not a record\n" + lines[1] + "\n");

  spec.resume = true;
  EXPECT_THROW((void)Runner::run(spec), SimulationError);
  std::remove(journal.c_str());
}

TEST(Resume, WithoutJournalPathThrows) {
  ExperimentSpec spec = resume_spec("");
  spec.resume = true;
  EXPECT_THROW((void)Runner::run(spec), SimulationError);
}

// ---------------------------------------------------------------------------
// PointGuard isolation

TEST(PointGuard, ConfigInvalidPointIsIsolated) {
  ExperimentSpec spec;
  spec.workload = "fft2d";
  spec.machine.matrix_rows = 32;
  spec.machine.matrix_cols = 32;
  // 12 does not divide 32: the machine constructor throws ConfigError.
  spec.axes.push_back({"processors", {8, 12, 16}});
  const auto result = Runner::run(spec);

  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0].status, PointStatus::kOk);
  EXPECT_EQ(result.records[2].status, PointStatus::kOk);
  const auto& bad = result.records[1];
  EXPECT_EQ(bad.status, PointStatus::kFailed);
  ASSERT_TRUE(bad.failure.has_value());
  EXPECT_EQ(bad.failure->kind, FailureKind::kConfigInvalid);
  EXPECT_EQ(bad.failure->attempts, 1u);  // deterministic: no retry
  EXPECT_EQ(bad.knobs.size(), 1u);       // knobs survive for the report

  EXPECT_EQ(result.campaign.points, 3u);
  EXPECT_EQ(result.campaign.ok, 2u);
  EXPECT_EQ(result.campaign.failed, 1u);
  EXPECT_EQ(result.campaign.quarantined, 0u);
  EXPECT_FALSE(result.campaign.all_ok());

  // The status column appears in CSV/table only because a point failed.
  const std::string csv = sweep_csv(result);
  EXPECT_NE(csv.find("status"), std::string::npos);
  EXPECT_NE(csv.find("failed:config_invalid"), std::string::npos);
}

TEST(PointGuard, IsolationOffPropagatesTheException) {
  ExperimentSpec spec;
  spec.workload = "fft2d";
  spec.machine.matrix_rows = 32;
  spec.machine.matrix_cols = 32;
  spec.axes.push_back({"processors", {8, 12, 16}});
  spec.guard.isolate = false;
  EXPECT_THROW((void)Runner::run(spec), ConfigError);
}

TEST(PointGuard, OomEstimateGateRefusesOversizedPoints) {
  ExperimentSpec spec;
  spec.workload = "fft2d";
  spec.machine.processors = 4;
  spec.machine.matrix_rows = 256;
  spec.machine.matrix_cols = 256;
  spec.guard.max_point_mb = 1;  // 256x256 complex working set is ~6 MiB
  const auto result = Runner::run(spec);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].status, PointStatus::kFailed);
  ASSERT_TRUE(result.records[0].failure.has_value());
  EXPECT_EQ(result.records[0].failure->kind,
            FailureKind::kOomEstimateExceeded);
}

// Toy workload that spins until its cancel token fires whenever the `t_p`
// knob is nonzero (t_p is a registered knob, so the sweep schema accepts
// it; the mesh block it writes to is ignored here). The spin is bounded so
// a broken watchdog fails the test instead of hanging the suite.
class HangWorkload final : public Workload {
 public:
  std::string name() const override { return "hang_test"; }
  RunRecord run(const RunPoint& pt) const override {
    double hang = 0.0;
    for (const auto& [knob, value] : pt.knobs) {
      if (knob == "t_p") hang = value;
    }
    if (hang != 0.0) {
      const auto start = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() - start <
             std::chrono::seconds(10)) {
        if (pt.cancel != nullptr) pt.cancel->poll();
      }
      throw SimulationError("hang_test: watchdog never fired");
    }
    RunRecord rec;
    rec.metrics.push_back({"ran", 1.0, 0});
    return rec;
  }
};

TEST(PointGuard, WatchdogTimesOutRetriesAndQuarantines) {
  register_workload(std::make_unique<HangWorkload>());

  ExperimentSpec spec;
  spec.workload = "hang_test";
  spec.axes.push_back({"t_p", {0, 1, 0}});
  spec.guard.point_timeout_ms = 50.0;
  spec.guard.max_retries = 2;
  spec.guard.retry_backoff_ms = 1.0;
  const auto result = Runner::run(spec);

  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0].status, PointStatus::kOk);
  EXPECT_EQ(result.records[2].status, PointStatus::kOk);
  const auto& hung = result.records[1];
  EXPECT_EQ(hung.status, PointStatus::kQuarantined);
  ASSERT_TRUE(hung.failure.has_value());
  EXPECT_EQ(hung.failure->kind, FailureKind::kTimeout);
  EXPECT_EQ(hung.failure->attempts, 3u);  // 1 try + 2 retries
  EXPECT_EQ(hung.retries, 2u);

  EXPECT_EQ(result.campaign.quarantined, 1u);
  EXPECT_EQ(result.campaign.retries, 2u);
  ASSERT_EQ(result.campaign.quarantine.size(), 1u);
  EXPECT_EQ(result.campaign.quarantine[0], 1u);
}

TEST(PointGuard, QuarantinedRecordSurvivesTheJournalRoundTrip) {
  register_workload(std::make_unique<HangWorkload>());

  const std::string journal = temp_path("quarantine.jsonl");
  ExperimentSpec spec;
  spec.workload = "hang_test";
  spec.axes.push_back({"t_p", {1, 0}});
  spec.guard.point_timeout_ms = 20.0;
  spec.guard.max_retries = 0;
  spec.journal_path = journal;
  const auto full = Runner::run(spec);
  EXPECT_EQ(full.campaign.quarantined, 1u);

  auto again = spec;
  again.resume = true;
  const auto resumed = Runner::run(again);
  EXPECT_EQ(resumed.campaign.resumed, 2u);
  EXPECT_EQ(resumed.campaign.quarantined, 1u);
  ASSERT_TRUE(resumed.records[0].failure.has_value());
  EXPECT_EQ(resumed.records[0].failure->kind, FailureKind::kTimeout);
  EXPECT_EQ(sweep_json(resumed), sweep_json(full));
  EXPECT_EQ(sweep_csv(resumed), sweep_csv(full));
  std::remove(journal.c_str());
}

TEST(Classify, MapsTheTaxonomy) {
  EXPECT_EQ(classify_failure(ConfigError("x")), FailureKind::kConfigInvalid);
  EXPECT_EQ(classify_failure(DivergenceError("x")), FailureKind::kSimDiverged);
  EXPECT_EQ(classify_failure(CancelledError("x")), FailureKind::kTimeout);
  EXPECT_EQ(classify_failure(ResourceLimitError("x")),
            FailureKind::kOomEstimateExceeded);
  EXPECT_EQ(classify_failure(SimulationError("x")),
            FailureKind::kInternalError);
  EXPECT_EQ(classify_failure(std::runtime_error("x")),
            FailureKind::kInternalError);
  EXPECT_FALSE(failure_is_retryable(FailureKind::kConfigInvalid));
  EXPECT_FALSE(failure_is_retryable(FailureKind::kSimDiverged));
  EXPECT_FALSE(failure_is_retryable(FailureKind::kOomEstimateExceeded));
  EXPECT_TRUE(failure_is_retryable(FailureKind::kTimeout));
  EXPECT_TRUE(failure_is_retryable(FailureKind::kInternalError));
}

}  // namespace
}  // namespace psync::driver
