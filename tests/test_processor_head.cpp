#include "psync/core/head_node.hpp"
#include "psync/core/processor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "psync/common/check.hpp"
#include "psync/fft/fft.hpp"

namespace psync::core {
namespace {

TEST(PackSample, RoundTripsAtFloat32Precision) {
  for (double re : {0.0, 1.0, -3.25, 1e-3, 12345.678}) {
    for (double im : {0.0, -1.0, 0.5}) {
      const auto back = unpack_sample(pack_sample({re, im}));
      EXPECT_NEAR(back.real(), re, std::abs(re) * 1e-6 + 1e-9);
      EXPECT_NEAR(back.imag(), im, std::abs(im) * 1e-6 + 1e-9);
    }
  }
}

TEST(PackSample, ExactForFloatRepresentable) {
  const auto w = pack_sample({1.5, -2.25});
  const auto v = unpack_sample(w);
  EXPECT_EQ(v.real(), 1.5);
  EXPECT_EQ(v.imag(), -2.25);
}

TEST(ExecCost, PaperMultiplyAccounting) {
  ExecCostParams exec;  // 2 ns multiply, 4 mults per butterfly
  fft::OpCount ops;
  ops.butterflies = 10;
  ops.real_mults = 40;
  ops.real_adds = 60;
  // 10 butterflies * 4 mults * 2 ns = 80 ns; adds are free by default.
  EXPECT_DOUBLE_EQ(exec.compute_ns(ops), 80.0);
  EXPECT_DOUBLE_EQ(exec.peak_mults_per_sec(), 0.5e9);
}

TEST(Processor, FftRowsComputesAndTimes) {
  Processor p(0, ExecCostParams{});
  p.data().assign(2 * 64, {0.0, 0.0});
  p.data()[0] = {1.0, 0.0};   // impulse in row 0
  p.data()[64] = {1.0, 0.0};  // impulse in row 1
  const double ns = p.fft_rows(2, 64);
  // 2 rows x full_fft_mults(64) = 2 * 2*64*6 = 1536 mults * 2 ns.
  EXPECT_DOUBLE_EQ(ns, 3072.0);
  EXPECT_DOUBLE_EQ(p.busy_ns(), 3072.0);
  EXPECT_EQ(p.ops().real_mults, 1536u);
  // Impulse -> flat spectrum in both rows.
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_NEAR(p.data()[i].real(), 1.0, 1e-12);
  }
}

TEST(Processor, StagedExecutionEqualsMonolithic) {
  Processor a(0, ExecCostParams{}), b(1, ExecCostParams{});
  std::vector<std::complex<double>> sig(64);
  for (std::size_t i = 0; i < 64; ++i) {
    sig[i] = {std::sin(0.1 * static_cast<double>(i)), 0.0};
  }
  a.data() = sig;
  b.data() = sig;
  a.fft_rows(1, 64);

  const fft::FftPlan plan(64);
  // b: bit-reverse, then stages in two chunks (block-less).
  b.fft_row_stages(plan, 0, 64, 0, 3, 0, 0, /*prepare=*/true);
  b.fft_row_stages(plan, 0, 64, 3, 6);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(std::abs(a.data()[i] - b.data()[i]), 0.0, 1e-12);
  }
  EXPECT_DOUBLE_EQ(a.busy_ns(), b.busy_ns());
}

TEST(HeadNode, BusCycleAndStreamReport) {
  HeadNodeParams hp;
  hp.bus_ghz = 5.0;
  hp.waveguide_gbps = 320.0;
  hp.dram.row_switch_cycles = 0;
  HeadNode head(hp);
  EXPECT_DOUBLE_EQ(head.bus_cycle_ns(), 0.2);

  // 2^20 samples x 64 bits: the paper's transpose. 32768 rows x 33 cycles.
  const auto rep = head.stream_rows_report(1ULL << 26);
  EXPECT_EQ(rep.bus_cycles, 1'081'344u);
  EXPECT_NEAR(rep.dram_ns, 1'081'344 * 0.2, 1e-6);
  EXPECT_NEAR(rep.waveguide_ns, static_cast<double>(1ULL << 26) / 320.0, 1e-6);
  // 33/32 header overhead makes DRAM the (slightly) binding side.
  EXPECT_TRUE(rep.dram_bound);
}

TEST(HeadNode, WritebackStoresImageAndReadsBack) {
  HeadNodeParams hp;
  hp.dram.row_switch_cycles = 0;
  HeadNode head(hp);
  std::vector<Word> words(64);
  for (std::size_t i = 0; i < 64; ++i) words[i] = 7000 + i;
  head.writeback(words, /*first_row=*/2, /*word_bits=*/64);
  // Row 2 of 2048-bit rows = word offset 64.
  const auto burst = head.read_burst(64, 64);
  EXPECT_EQ(burst, words);
  EXPECT_EQ(head.image().size(), 128u);
}

TEST(HeadNode, ReadBurstBoundsChecked) {
  HeadNode head(HeadNodeParams{});
  EXPECT_DEATH((void)head.read_burst(0, 1), "");
}

TEST(HeadNode, InvalidRatesRejected) {
  HeadNodeParams hp;
  hp.bus_ghz = 0.0;
  EXPECT_THROW(HeadNode{hp}, SimulationError);
}

}  // namespace
}  // namespace psync::core
