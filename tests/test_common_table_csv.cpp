#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "psync/common/check.hpp"
#include "psync/common/csv.hpp"
#include "psync/common/table.hpp"

namespace psync {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"k", "eta (%)"});
  t.row().add(1).add(50.0);
  t.row().add(64).add(99.38);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("k"), std::string::npos);
  EXPECT_NE(s.find("99.38"), std::string::npos);
  EXPECT_NE(s.find("50.00"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("--"), std::string::npos);
}

TEST(Table, CellAccessors) {
  Table t({"a", "b"});
  t.row().add("x").add(static_cast<std::int64_t>(-7));
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(0, 1), "-7");
}

TEST(Table, TitleAppearsFirst) {
  Table t({"a"});
  t.set_title("Table I");
  t.row().add("v");
  EXPECT_EQ(t.to_string().rfind("Table I", 0), 0u);
}

TEST(Table, IncompleteRowAborts) {
  Table t({"a", "b"});
  t.row().add("only-one");
  EXPECT_DEATH((void)t.to_string(), "incomplete");
}

TEST(FormatHelpers, Engineering) {
  EXPECT_EQ(format_eng(1081344.0, 2), "1.08M");
  EXPECT_EQ(format_eng(1500.0, 1), "1.5k");
  EXPECT_EQ(format_eng(3.5e9, 1), "3.5G");
  EXPECT_EQ(format_eng(12.0, 0), "12");
  EXPECT_EQ(format_double(3.14159, 3), "3.142");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "psync_csv_test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    w.row().add(static_cast<std::int64_t>(1)).add(2.5);
    w.row().add(static_cast<std::int64_t>(3)).add(4.0);
    w.close();
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("x,y"), std::string::npos);
  EXPECT_NE(content.find("1,2.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
               SimulationError);
}

}  // namespace
}  // namespace psync
