#include "psync/common/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace psync {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(300, [&] { order.push_back(3); });
  q.schedule_at(100, [&] { order.push_back(1); });
  q.schedule_at(200, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300);
}

TEST(EventQueue, SameTimestampFiresInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(42, [&, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_in(10, chain);
  };
  q.schedule_at(0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 40);
}

TEST(EventQueue, SchedulingInPastAborts) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.step();
  EXPECT_DEATH(q.schedule_at(50, [] {}), "scheduled in the past");
}

TEST(EventQueue, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(21, [&] { ++fired; });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle) {
  EventQueue q;
  q.run_until(500);
  EXPECT_EQ(q.now(), 500);
}

TEST(EventQueue, CountsFired) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(i, [] {});
  EXPECT_EQ(q.run(), 7u);
  EXPECT_EQ(q.fired(), 7u);
}

TEST(EventQueue, StepOnEmptyReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace psync
