// Static negative suite for the Quantity layer: proves at compile time that
// the dimension-mixing expressions the strong types exist to prevent are in
// fact substitution failures, not merely "happen not to be used". Every
// static_assert here is evaluated when this translation unit compiles; the
// runtime test body only records that the file built.
#include "psync/common/quantity.hpp"

#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

namespace psync {
namespace {

// Detection idiom: can_add<A, B> is true iff `A{} + B{}` is well-formed
// (and similarly for the other operators). Because the Quantity operators
// are constrained free templates, an illegal mix is SFINAE-detectable.
template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanSub : std::false_type {};
template <typename A, typename B>
struct CanSub<A, B,
              std::void_t<decltype(std::declval<A>() - std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanDiv : std::false_type {};
template <typename A, typename B>
struct CanDiv<A, B,
              std::void_t<decltype(std::declval<A>() / std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B>
inline constexpr bool can_add = CanAdd<A, B>::value;
template <typename A, typename B>
inline constexpr bool can_sub = CanSub<A, B>::value;
template <typename A, typename B>
inline constexpr bool can_div = CanDiv<A, B>::value;

// --- Positive controls: the algebra the models rely on does compile. ---
static_assert(can_add<DecibelsDb, DecibelsDb>);
static_assert(can_add<FemtoJoules, FemtoJoules>);
static_assert(can_add<Ns, Ns>);
static_assert(can_sub<MilliWatts, MilliWatts>);
static_assert(can_div<DecibelsDb, DecibelsDb>);  // ratio -> double
static_assert(can_div<DecibelsDb, double>);      // scaling
static_assert(can_add<DbmPower, DecibelsDb>);    // level + delta -> level
static_assert(can_add<DecibelsDb, DbmPower>);
static_assert(can_sub<DbmPower, DecibelsDb>);    // level - delta -> level
static_assert(can_sub<DbmPower, DbmPower>);      // level - level -> delta
static_assert(
    std::is_same_v<decltype(std::declval<DbmPower>() - std::declval<DbmPower>()),
                   DecibelsDb>);
static_assert(
    std::is_same_v<decltype(std::declval<DbmPower>() + std::declval<DecibelsDb>()),
                   DbmPower>);
static_assert(
    std::is_same_v<decltype(std::declval<Ns>() / std::declval<Ns>()), double>);

// --- Negative suite: mixed-dimension arithmetic must not compile. ---

// dB (ratio) and mW (linear power) are different spaces entirely.
static_assert(!can_add<DecibelsDb, MilliWatts>);
static_assert(!can_sub<DecibelsDb, MilliWatts>);

// fJ and pJ are the same dimension at different scales — the classic 1000x
// bug. Crossing requires the named fj_to_pj / pj_to_fj conversions.
static_assert(!can_add<FemtoJoules, PicoJoules>);
static_assert(!can_sub<PicoJoules, FemtoJoules>);
static_assert(!can_div<FemtoJoules, PicoJoules>);

// A data rate is not a frequency (they differ by bits-per-slot).
static_assert(!can_add<GigabitsPerSec, GigaHertz>);
static_assert(!can_sub<GigaHertz, GigabitsPerSec>);

// dBm is affine: summing two absolute power levels is meaningless.
static_assert(!can_add<DbmPower, DbmPower>);

// ps and ns are distinct duration scales; crossing goes through
// ps_to_ns / ns_to_ps.
static_assert(!can_add<Ps, Ns>);
static_assert(!can_sub<Ns, Ps>);
static_assert(!can_div<Ps, Ns>);

// Power levels don't mix with energies or durations.
static_assert(!can_add<MilliWatts, FemtoJoules>);
static_assert(!can_add<MilliWatts, MicroWatts>);  // scales differ: uw_to_mw
static_assert(!can_sub<Ns, GigaHertz>);

// Quantities don't silently combine with raw doubles either (scalar * and /
// are allowed for scaling, + and - are not).
static_assert(!can_add<DecibelsDb, double>);
static_assert(!can_sub<double, FemtoJoules>);

// --- Strong indices: a NodeId is not a LaneId is not a SlotId. ---
static_assert(!std::is_convertible_v<NodeId, LaneId>);
static_assert(!std::is_convertible_v<LaneId, SlotId>);
static_assert(!std::is_convertible_v<SlotId, NodeId>);
static_assert(!std::is_convertible_v<NodeId, std::int32_t>);
static_assert(!std::is_convertible_v<std::int32_t, NodeId>);
static_assert(!can_add<NodeId, NodeId>);  // indices are not arithmetic

// --- Zero-overhead claims. ---
static_assert(sizeof(DecibelsDb) == sizeof(double));
static_assert(sizeof(NodeId) == sizeof(std::int32_t));
static_assert(std::is_trivially_copyable_v<FemtoJoules>);
static_assert(std::is_trivially_copyable_v<SlotId>);

TEST(QuantityStatic, NegativeSuiteCompiles) {
  // All the proof obligations above are static_asserts; reaching this line
  // means the type system rejected every forbidden mix.
  SUCCEED();
}

}  // namespace
}  // namespace psync
