// Driver subsystem: Workload registry dispatch, SweepEngine grid expansion
// and thread-pool determinism (parallel == serial, byte for byte), and the
// shared FftPlan cache.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "psync/common/check.hpp"
#include "psync/driver/runner.hpp"
#include "psync/fft/plan_cache.hpp"

namespace psync::driver {
namespace {

// Small machine so every workload runs in milliseconds.
ExperimentSpec small_spec(const std::string& workload) {
  ExperimentSpec spec;
  spec.workload = workload;
  spec.machine.processors = 4;
  spec.machine.matrix_rows = 16;
  spec.machine.matrix_cols = 16;
  spec.machine.delivery_blocks = 2;
  spec.mesh.grid = 2;
  spec.mesh.matrix_rows = 16;
  spec.mesh.matrix_cols = 16;
  spec.mesh.elements_per_packet = 16;
  spec.transpose_elements = 32;
  return spec;
}

TEST(WorkloadRegistry, ListsEveryBuiltinKind) {
  const auto names = workload_names();
  const std::set<std::string> have(names.begin(), names.end());
  for (const char* kind : {"fft2d", "fft1d", "transpose", "pipeline", "mesh",
                           "reliability", "degradation_sweep", "fig11",
                           "fig13"}) {
    EXPECT_TRUE(have.count(kind)) << "missing builtin workload: " << kind;
  }
}

TEST(WorkloadRegistry, UnknownKindThrowsNamingKnownKinds) {
  try {
    (void)find_workload("fft3d");
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_NE(std::string(e.what()).find("fft3d"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("fft2d"), std::string::npos);
  }
}

TEST(WorkloadRegistry, EveryKindDispatchesAndProducesMetrics) {
  for (const auto& kind : workload_names()) {
    auto spec = small_spec(kind);
    if (kind == "fig11") spec.axes.push_back({"k", {4}});
    if (kind == "fig13") spec.axes.push_back({"cores", {16}});
    const auto result = Runner::run(spec);
    ASSERT_EQ(result.records.size(), 1u) << kind;
    const auto& rec = result.records.front();
    EXPECT_EQ(rec.workload, kind);
    EXPECT_FALSE(rec.metrics.empty()) << kind;
    for (const auto& m : rec.metrics) {
      EXPECT_TRUE(std::isfinite(m.value)) << kind << "." << m.name;
    }
  }
}

TEST(WorkloadRegistry, MetricLookupThrowsOnMissingName) {
  const auto result = Runner::run(small_spec("transpose"));
  const auto& rec = result.records.front();
  EXPECT_GT(metric(rec, "cycles"), 0.0);
  EXPECT_THROW((void)metric(rec, "no_such_metric"), SimulationError);
}

TEST(SweepEngine, PointSeedIsDeterministicAndIndexDependent) {
  const auto s0 = SweepEngine::point_seed(2026, 0);
  EXPECT_EQ(s0, SweepEngine::point_seed(2026, 0));
  EXPECT_NE(s0, SweepEngine::point_seed(2026, 1));
  EXPECT_NE(s0, SweepEngine::point_seed(2027, 0));
}

TEST(SweepEngine, ExpandsCartesianGridRowMajor) {
  auto spec = small_spec("fft2d");
  spec.axes.push_back({"blocks", {1, 2}});
  spec.axes.push_back({"processors", {4, 8, 16}});
  const auto points = SweepEngine::expand(spec);
  ASSERT_EQ(points.size(), 6u);
  // First axis slowest: blocks=1 for the first three points.
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    ASSERT_EQ(points[i].knobs.size(), 2u);
    EXPECT_EQ(points[i].knobs[0].first, "blocks");
    EXPECT_EQ(points[i].knobs[1].first, "processors");
    EXPECT_DOUBLE_EQ(points[i].knobs[0].second, i < 3 ? 1.0 : 2.0);
    const double procs[] = {4.0, 8.0, 16.0};
    EXPECT_DOUBLE_EQ(points[i].knobs[1].second, procs[i % 3]);
    // Knobs are applied to the parameter blocks, not just recorded.
    EXPECT_EQ(points[i].machine.delivery_blocks, i < 3 ? 1u : 2u);
    EXPECT_EQ(points[i].machine.processors,
              static_cast<std::size_t>(procs[i % 3]));
    EXPECT_EQ(points[i].seed, SweepEngine::point_seed(spec.input_seed, i));
  }
}

TEST(SweepEngine, NoAxesYieldsSinglePoint) {
  const auto points = SweepEngine::expand(small_spec("fft2d"));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points.front().knobs.empty());
}

TEST(SweepEngine, UnknownKnobThrows) {
  auto spec = small_spec("fft2d");
  spec.axes.push_back({"procesors", {4, 8}});
  EXPECT_THROW((void)SweepEngine::expand(spec), SimulationError);
}

TEST(SweepEngine, ApplyKnobRejectsUnknownNames) {
  core::PsyncMachineParams m;
  core::MeshMachineParams mm;
  for (const auto& knob : known_knobs()) {
    EXPECT_TRUE(apply_knob(knob, 2.0, &m, &mm)) << knob;
  }
  EXPECT_FALSE(apply_knob("warp_factor", 9.0, &m, &mm));
}

// Regression: count-valued knobs used to be cast straight from double to an
// unsigned type — UB for negative values, silent truncation for fractional
// ones (a sweep would record processors = 16.5 but simulate 16).
TEST(SweepEngine, ApplyKnobRejectsNonIntegerCounts) {
  core::PsyncMachineParams m;
  core::MeshMachineParams mm;
  EXPECT_THROW((void)apply_knob("processors", -1.0, &m, &mm), ConfigError);
  EXPECT_THROW((void)apply_knob("processors", 16.5, &m, &mm), ConfigError);
  EXPECT_THROW((void)apply_knob("t_p", -4.0, &m, &mm), ConfigError);
  EXPECT_THROW((void)apply_knob("virtual_channels", 2.25, &m, &mm),
               ConfigError);
  EXPECT_THROW((void)apply_knob("k", std::nan(""), &m, &mm), ConfigError);
  // Exact integral values still apply.
  EXPECT_TRUE(apply_knob("processors", 16.0, &m, &mm));
  EXPECT_EQ(m.processors, 16u);
  EXPECT_TRUE(apply_knob("t_p", 4.0, &m, &mm));
  EXPECT_EQ(mm.mi.reorder_cycles_per_element, 4u);
}

TEST(SweepEngine, MapUsesThePoolAndPreservesOrder) {
  SweepEngine engine(4);
  std::vector<int> items(64);
  for (int i = 0; i < 64; ++i) items[i] = i;
  std::atomic<int> calls{0};
  const auto out = engine.map(items, [&](int v) {
    calls.fetch_add(1);
    return v * v;
  });
  EXPECT_EQ(calls.load(), 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepEngine, MapRethrowsFirstExceptionByIndex) {
  SweepEngine engine(4);
  std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7};
  try {
    (void)engine.map(items, [](int v) {
      if (v == 3 || v == 6) throw SimulationError("boom " + std::to_string(v));
      return v;
    });
    FAIL() << "expected SimulationError";
  } catch (const SimulationError& e) {
    EXPECT_STREQ(e.what(), "boom 3");
  }
}

// The determinism contract: an N-point sweep renders byte-identically
// whether it ran serially or on a pool, because seeds come from the grid
// index and records land in grid order.
TEST(SweepEngine, ParallelSweepBitIdenticalToSerial) {
  auto spec = small_spec("fft2d");
  spec.with_mesh = true;
  spec.axes.push_back({"blocks", {1, 2, 4}});
  spec.axes.push_back({"processors", {4, 8}});

  auto serial = spec;
  serial.threads = 1;
  auto pooled = spec;
  pooled.threads = 4;
  const auto a = Runner::run(serial);
  const auto b = Runner::run(pooled);

  EXPECT_EQ(sweep_table(a, "t"), sweep_table(b, "t"));
  EXPECT_EQ(sweep_json(a), sweep_json(b));
  EXPECT_EQ(sweep_csv(a), sweep_csv(b));
}

// Same contract under fault injection + retry: the injection RNG is seeded
// from the machine params, and the input RNG from the point seed, so the
// error/retry counters cannot depend on thread scheduling.
TEST(SweepEngine, ParallelReliabilitySweepBitIdenticalToSerial) {
  auto spec = small_spec("reliability");
  spec.machine.fault.dead_wavelengths = {13};
  spec.machine.fault.seed = 7;
  spec.machine.reliability.policy = reliability::ReliabilityPolicy::kCorrectRetry;
  spec.machine.reliability.spare_lanes = 2;
  spec.axes.push_back({"margin_db", {0.0, -1.5, -2.5}});

  auto serial = spec;
  serial.threads = 1;
  auto pooled = spec;
  pooled.threads = 4;
  const auto a = Runner::run(serial);
  const auto b = Runner::run(pooled);

  EXPECT_EQ(sweep_table(a, "t"), sweep_table(b, "t"));
  EXPECT_EQ(sweep_json(a), sweep_json(b));

  // Margin knob actually moved the injected BER across the axis.
  EXPECT_LT(metric(a.records[0], "ber"), metric(a.records[2], "ber"));
}

TEST(Runner, SingleRunCarriesFullReport) {
  auto spec = small_spec("fft2d");
  spec.with_mesh = true;
  const auto result = Runner::run(spec);
  const auto& rec = result.records.front();
  ASSERT_TRUE(rec.psync.has_value());
  ASSERT_TRUE(rec.mesh.has_value());
  EXPECT_GT(rec.psync->total_ns, 0.0);
  EXPECT_NEAR(metric(rec, "total_us"), rec.psync->total_ns * 1e-3, 1e-9);
  EXPECT_LT(rec.psync->max_error_vs_reference, 1e-6);
}

TEST(PlanCache, ReturnsTheSameInstancePerSize) {
  const auto& a = fft::shared_plan(64);
  const auto& b = fft::shared_plan(64);
  const auto& c = fft::shared_plan(128);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(c.size(), 128u);
  EXPECT_GE(fft::shared_plan_cache_size(), 2u);
}

TEST(PlanCache, ConcurrentLookupsAgree) {
  constexpr int kThreads = 8;
  std::vector<const fft::FftPlan*> seen(kThreads, nullptr);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] { seen[t] = &fft::shared_plan(512); });
  }
  for (auto& th : pool) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
}

TEST(PlanCache, RejectsInvalidSizes) {
  EXPECT_THROW((void)fft::shared_plan(0), SimulationError);
  EXPECT_THROW((void)fft::shared_plan(96), SimulationError);
}

}  // namespace
}  // namespace psync::driver
