#include "psync/photonic/link_budget.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync::photonic {
namespace {

LinkBudgetParams nominal() {
  LinkBudgetParams p;
  p.laser.launch_power_dbm = DbmPower{3.0};
  p.laser.coupler_loss_db = DecibelsDb{1.0};
  p.detector.sensitivity_dbm = DbmPower{-20.0};
  p.detector.tap_loss_db = DecibelsDb{0.5};
  p.ring.through_loss_off_db = DecibelsDb{0.01};
  p.waveguide.loss_straight_db_per_cm = 1.0;
  p.modulator_pitch_cm = 0.05;
  return p;
}

TEST(LinkBudget, SegmentLossIsEq2) {
  const auto p = nominal();
  // L_ws = L_r-off + D_m * L_w = 0.01 + 0.05 * 1.0.
  EXPECT_NEAR(segment_loss_db(p).value(), 0.06, 1e-12);
}

TEST(LinkBudget, MaxSegmentsIsEq3) {
  const auto p = nominal();
  // Budget: (3 - 1) - (-20) - 0.5 tap = 21.5 dB over 0.06 dB/segment -> 358.
  EXPECT_EQ(max_segments(p), 358u);
}

TEST(LinkBudget, ClosesExactlyUpToBound) {
  const auto p = nominal();
  const std::size_t n = max_segments(p);
  EXPECT_TRUE(closes(p, n));
  EXPECT_FALSE(closes(p, n + 1));
}

TEST(LinkBudget, PowerAfterSegmentsMonotone) {
  const auto p = nominal();
  double prev = power_after_segments(p, 0).dbm();
  for (std::size_t n = 1; n < 20; ++n) {
    const double cur = power_after_segments(p, n).dbm();
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(LinkBudget, HigherLaunchPowerExtendsReach) {
  auto p = nominal();
  const auto base = max_segments(p);
  p.laser.launch_power_dbm = p.laser.launch_power_dbm + DecibelsDb{6.0};  // 4x
  EXPECT_GT(max_segments(p), base);
  // +6 dB over 0.06 dB/segment = +100 segments.
  EXPECT_EQ(max_segments(p), base + 100);
}

TEST(LinkBudget, MarginReducesReach) {
  auto p = nominal();
  const auto base = max_segments(p);
  p.margin_db = DecibelsDb{3.0};
  EXPECT_LT(max_segments(p), base);
}

TEST(LinkBudget, ZeroWhenBudgetCannotClose) {
  auto p = nominal();
  p.laser.launch_power_dbm = DbmPower{-25.0};  // below sensitivity after coupler
  EXPECT_EQ(max_segments(p), 0u);
}

TEST(LinkBudget, RepeatersPartitionLongBuses) {
  const auto p = nominal();
  const std::size_t span = max_segments(p);
  EXPECT_EQ(repeaters_required(p, span), 0u);
  EXPECT_EQ(repeaters_required(p, span + 1), 1u);
  EXPECT_EQ(repeaters_required(p, 3 * span), 2u);
  EXPECT_EQ(repeaters_required(p, 3 * span + 1), 3u);
}

TEST(LinkBudget, RepeatersImpossibleWhenSegmentTooLossy) {
  auto p = nominal();
  p.laser.launch_power_dbm = DbmPower{-25.0};
  EXPECT_THROW(repeaters_required(p, 10), SimulationError);
}

TEST(LinkBudget, SerpentineEvaluationIncludesBends) {
  auto p = nominal();
  const SerpentineLayout layout = serpentine_for_grid(4, 2.0);
  const auto rep = evaluate_serpentine(p, layout, 16);
  // Loss must exceed the pure straight-line loss of the same length.
  const double straight_only =
      layout.total_length_um() * 1e-4 * p.waveguide.loss_straight_db_per_cm;
  EXPECT_GT(rep.total_loss_db.value(), straight_only);
  EXPECT_TRUE(rep.closes);
  EXPECT_GT(rep.max_nodes_eq3, 0u);
}

TEST(LinkBudget, SerpentineFailsWhenTooLossy) {
  auto p = nominal();
  p.waveguide.loss_straight_db_per_cm = 10.0;
  const SerpentineLayout layout = serpentine_for_grid(8, 2.0);
  const auto rep = evaluate_serpentine(p, layout, 64);
  EXPECT_FALSE(rep.closes);
}

TEST(LinkBudget, InvalidDevicesRejected) {
  auto p = nominal();
  p.ring.extinction_ratio_db = DecibelsDb{-1.0};
  EXPECT_THROW(max_segments(p), SimulationError);
}

}  // namespace
}  // namespace psync::photonic
