#include "psync/core/cp_chain.hpp"

#include <gtest/gtest.h>

#include "psync/common/check.hpp"

namespace psync::core {
namespace {

CommProgram sample_cp(Slot first, Slot stride, Slot count) {
  CommProgram cp;
  cp.add(CpStride{first, 1, stride, count, CpAction::kDrive});
  return cp;
}

TEST(CpChain, PackUnpackRoundTrip) {
  CommProgram cp;
  cp.add(CpStride{7, 3, 12, 5, CpAction::kDrive});
  cp.add(CpStride{1000, 1, 64, 32, CpAction::kListen});
  const auto words = pack_program_words(cp);
  std::size_t offset = 0;
  const CommProgram back = unpack_program_words(words, offset);
  EXPECT_EQ(offset, words.size());
  ASSERT_EQ(back.strides().size(), 2u);
  EXPECT_EQ(back.strides()[0].first, 7);
  EXPECT_EQ(back.strides()[1].count, 32);
}

TEST(CpChain, PackedSizeIsSmall) {
  // A one-record CP: 16-bit header + 94-bit record = 110 bits -> 14 bytes
  // -> 1 length word + 2 payload words.
  const auto words = pack_program_words(sample_cp(0, 4, 4));
  EXPECT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], 14u);
}

TEST(CpChain, UnpackDetectsTruncation) {
  auto words = pack_program_words(sample_cp(0, 4, 4));
  words.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW((void)unpack_program_words(words, offset), SimulationError);
}

TEST(CpChain, BootImageLayout) {
  std::vector<BootSegment> segs(2);
  segs[0].programs.push_back(sample_cp(0, 2, 3));
  segs[0].data = {11, 12};
  segs[1].programs.push_back(sample_cp(1, 2, 3));
  segs[1].data = {21, 22, 23};
  const BootImage image = build_boot_image(segs);
  EXPECT_EQ(image.segment_offset[0], 0);
  EXPECT_EQ(image.burst.size(),
            static_cast<std::size_t>(image.schedule.total_slots));
  // Bootstrap CPs are disjoint, gap-free listens.
  const auto check = check_schedule(image.schedule, CpAction::kListen);
  EXPECT_TRUE(check.disjoint);
  EXPECT_TRUE(check.gap_free);
}

TEST(CpChain, DecodeRecoversProgramsAndData) {
  std::vector<BootSegment> segs(1);
  segs[0].programs.push_back(sample_cp(5, 7, 9));
  segs[0].programs.push_back(sample_cp(6, 7, 9));
  segs[0].data = {1, 2, 3, 4};
  const BootImage image = build_boot_image(segs);
  const DecodedSegment dec = decode_boot_words(image.burst, 2);
  ASSERT_EQ(dec.programs.size(), 2u);
  EXPECT_EQ(dec.programs[0].strides()[0].first, 5);
  EXPECT_EQ(dec.programs[1].strides()[0].first, 6);
  EXPECT_EQ(dec.data, (std::vector<Word>{1, 2, 3, 4}));
}

// The headline: CPs delivered over the waveguide itself drive the next
// collective (paper Section IV's CP chaining), end to end through the
// photonic transport.
TEST(CpChain, BootThenGatherChainRunsEndToEnd) {
  const std::size_t nodes = 4;
  const Slot elements = 4;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));

  // Each node's boot segment: its *interleaved-gather* CP + its data.
  const auto gather_sched = compile_gather_interleaved(nodes, elements);
  std::vector<BootSegment> segs(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    segs[i].programs.push_back(gather_sched.node_cps[i]);
    for (Slot e = 0; e < elements; ++e) {
      segs[i].data.push_back(static_cast<Word>(100 * i + static_cast<Word>(e)));
    }
  }

  const GatherResult g =
      run_boot_chain(engine, segs, gather_sched.total_slots);
  ASSERT_TRUE(g.gap_free);
  ASSERT_TRUE(g.collisions.empty());
  const auto words = g.words();
  ASSERT_EQ(words.size(), static_cast<std::size_t>(nodes) * elements);
  for (std::size_t s = 0; s < words.size(); ++s) {
    EXPECT_EQ(words[s], 100 * (s % nodes) + s / nodes);
  }
}

TEST(CpChain, ChainFailsLoudlyOnCorruptedProgram) {
  const std::size_t nodes = 2;
  ScaEngine engine(straight_bus_topology(nodes, 8.0));
  const auto gather_sched = compile_gather_interleaved(nodes, 2);
  std::vector<BootSegment> segs(nodes);
  // Node 1 is given node 0's CP: the delivered schedule now collides.
  segs[0].programs.push_back(gather_sched.node_cps[0]);
  segs[1].programs.push_back(gather_sched.node_cps[0]);
  for (auto& s : segs) s.data = {1, 2};
  EXPECT_THROW((void)run_boot_chain(engine, segs, gather_sched.total_slots),
               SimulationError);
}

TEST(CpChain, EmptySegmentRejected) {
  std::vector<BootSegment> segs(1);
  EXPECT_THROW((void)build_boot_image(segs), SimulationError);
}

}  // namespace
}  // namespace psync::core
