// Randomized property suites: seeds drive random schedules, topologies and
// traffic; invariants must hold for every draw.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "psync/common/rng.hpp"
#include "psync/core/permutation.hpp"
#include "psync/core/sca.hpp"
#include "psync/mesh/mesh.hpp"
#include "psync/mesh/traffic.hpp"
#include "psync/reliability/channel.hpp"
#include "psync/reliability/secded.hpp"

namespace psync {
namespace {

// ---------- SCA schedule fuzzing ----------

class ScaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Random slot ownership (any partition of the schedule among nodes) is a
// valid collective: compile via the generic permutation compiler, run the
// gather, and the receiver must see a gap-free stream realizing exactly
// that ownership.
TEST_P(ScaFuzz, RandomPartitionGathersGapFree) {
  Rng rng(GetParam());
  const std::size_t nodes = 2 + rng.next_below(7);
  const core::Slot total = static_cast<core::Slot>(32 + rng.next_below(200));

  // Random owner per slot (every node guaranteed at least one slot by
  // round-robin seeding).
  std::vector<std::size_t> owner(static_cast<std::size_t>(total));
  for (std::size_t s = 0; s < owner.size(); ++s) {
    owner[s] = s < nodes ? s : rng.next_below(nodes);
  }
  rng.shuffle(owner);

  std::vector<std::vector<core::Slot>> slots_of(nodes);
  for (std::size_t s = 0; s < owner.size(); ++s) {
    slots_of[owner[s]].push_back(static_cast<core::Slot>(s));
  }

  core::CollectiveSpec spec;
  spec.nodes = nodes;
  spec.total_slots = total;
  spec.elements_of = [&](std::size_t i) {
    return static_cast<core::Slot>(slots_of[i].size());
  };
  spec.slot_of = [&](std::size_t i, core::Slot j) {
    return slots_of[i][static_cast<std::size_t>(j)];
  };
  const auto sched = core::compile_collective(spec, core::CpAction::kDrive);

  // Random (strictly increasing) node placement on a random-length bus.
  core::PscanTopology topo;
  topo.clock.frequency_ghz = psync::GigaHertz{10.0};
  double at = 0.0;
  for (std::size_t i = 0; i < nodes; ++i) {
    at += 500.0 + rng.next_double() * 15000.0;
    topo.node_pos_um.push_back(at);
  }
  topo.terminus_um = at + 1000.0 + rng.next_double() * 30000.0;
  core::ScaEngine engine(topo);

  std::vector<std::vector<core::Word>> data(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t j = 0; j < slots_of[i].size(); ++j) {
      data[i].push_back((static_cast<core::Word>(i) << 32) |
                        static_cast<core::Word>(j));
    }
  }
  const auto g = engine.gather(sched, data);
  ASSERT_TRUE(g.gap_free);
  ASSERT_TRUE(g.collisions.empty());
  ASSERT_EQ(g.stream.size(), static_cast<std::size_t>(total));
  std::vector<std::size_t> element_seen(nodes, 0);
  for (std::size_t s = 0; s < g.stream.size(); ++s) {
    const auto& rec = g.stream[s];
    EXPECT_EQ(rec.slot, static_cast<core::Slot>(s));
    EXPECT_EQ(static_cast<std::size_t>(rec.source), owner[s]);
    EXPECT_EQ(rec.word >> 32, owner[s]);
    EXPECT_EQ(rec.word & 0xFFFFFFFF, element_seen[owner[s]]++);
  }
}

// Corrupting one slot to a duplicate owner must always be detected.
TEST_P(ScaFuzz, DuplicatedSlotAlwaysCollides) {
  Rng rng(GetParam() ^ 0xABCDEF);
  const std::size_t nodes = 2 + rng.next_below(5);
  const core::Slot elems = static_cast<core::Slot>(4 + rng.next_below(16));
  auto sched = core::compile_gather_interleaved(nodes, elems);
  // Give node 0 an extra claim over a random slot owned by someone else.
  const core::Slot stolen = static_cast<core::Slot>(
      1 + rng.next_below(static_cast<std::uint64_t>(sched.total_slots - 1)));
  if (stolen % static_cast<core::Slot>(nodes) == 0) return;  // already node 0's
  sched.node_cps[0].add(core::CpStride{stolen, 1, 1, 1, core::CpAction::kDrive});

  core::ScaEngine engine(core::straight_bus_topology(nodes, 8.0));
  std::vector<std::vector<core::Word>> data(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    data[i].assign(static_cast<std::size_t>(elems) + (i == 0 ? 1 : 0), 7);
  }
  const auto g = engine.gather(sched, data, /*strict=*/false);
  EXPECT_FALSE(g.collisions.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScaFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------- Mesh fuzzing ----------

class MeshFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeshFuzz, ConservationAndLatencyBounds) {
  Rng rng(GetParam());
  mesh::MeshParams p;
  p.width = static_cast<std::uint32_t>(2 + rng.next_below(5));
  p.height = static_cast<std::uint32_t>(2 + rng.next_below(5));
  p.buffer_depth = static_cast<std::uint32_t>(1 + rng.next_below(4));
  p.route_delay = static_cast<std::uint32_t>(rng.next_below(3));
  p.virtual_channels = static_cast<std::uint32_t>(1 + rng.next_below(4));
  p.algo = rng.next_bool() ? mesh::RouteAlgo::kXY
                           : mesh::RouteAlgo::kWestFirstAdaptive;
  mesh::Mesh m(p);

  std::vector<mesh::ConsumeSink> sinks(m.nodes());
  for (mesh::NodeId n = 0; n < m.nodes(); ++n) {
    sinks[n].keep_log(true);
    m.set_sink(n, &sinks[n]);
  }

  const auto packets = static_cast<std::uint32_t>(20 + rng.next_below(200));
  const auto flits = static_cast<std::uint32_t>(rng.next_below(8));
  std::vector<mesh::PacketDesc> traffic =
      mesh::uniform_random_traffic(m, packets, flits, rng);
  // Random staggered release times.
  for (auto& d : traffic) {
    d.release_cycle = static_cast<std::int64_t>(rng.next_below(100));
    m.inject(d);
  }
  ASSERT_TRUE(m.run_until_drained(2'000'000))
      << "deadlock or livelock at seed " << GetParam();

  // Conservation: every flit injected is ejected exactly once, at the
  // right node, in order within its packet.
  EXPECT_EQ(m.activity().injected_flits, m.activity().ejected_flits);
  EXPECT_EQ(m.activity().ejected_packets, traffic.size());
  std::map<mesh::PacketId, std::uint32_t> next_seq;
  for (mesh::NodeId n = 0; n < m.nodes(); ++n) {
    for (const auto& f : sinks[n].log()) {
      EXPECT_EQ(f.dst, n);
      EXPECT_EQ(f.seq, next_seq[f.packet]++);
    }
  }
  // Latency floor: hops + routing delays + payload serialization.
  EXPECT_GE(m.packet_latency().min(), 1.0);
}

TEST_P(MeshFuzz, HotspotGatherNeverDeadlocks) {
  Rng rng(GetParam() * 7919);
  mesh::MeshParams p;
  p.width = static_cast<std::uint32_t>(3 + rng.next_below(4));
  p.height = p.width;
  p.buffer_depth = static_cast<std::uint32_t>(1 + rng.next_below(3));
  p.virtual_channels = static_cast<std::uint32_t>(1 + rng.next_below(4));
  p.algo = rng.next_bool() ? mesh::RouteAlgo::kXY
                           : mesh::RouteAlgo::kWestFirstAdaptive;
  mesh::Mesh m(p);
  const auto hotspot = static_cast<mesh::NodeId>(rng.next_below(m.nodes()));
  const auto traffic = mesh::transpose_writeback_traffic(m, hotspot, 32, 8);
  for (const auto& d : traffic) m.inject(d);
  ASSERT_TRUE(m.run_until_drained(5'000'000));
  EXPECT_EQ(m.activity().ejected_packets, traffic.size());
}

// ---------- SECDED / framing fuzzing ----------

class SecdedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Any single flipped bit of the 72-bit codeword — data or check — must be
// corrected back to the original word.
TEST_P(SecdedFuzz, RandomSingleErrorsAlwaysCorrected) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t w = rng.next_u64();
    const auto check = reliability::secded_encode(w);
    const auto pos = rng.next_below(72);
    std::uint64_t data = w;
    std::uint8_t chk = check;
    if (pos < 64) {
      data ^= 1ULL << pos;
    } else {
      chk = static_cast<std::uint8_t>(chk ^ (1U << (pos - 64)));
    }
    const auto r = reliability::secded_decode(data, chk);
    EXPECT_TRUE(r.corrected()) << "seed " << GetParam() << " pos " << pos;
    EXPECT_EQ(r.data, w);
  }
}

// Any two distinct flipped bits must be flagged as a double error — never
// silently "corrected" into a third word.
TEST_P(SecdedFuzz, RandomDoubleErrorsAlwaysDetected) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t w = rng.next_u64();
    const auto check = reliability::secded_encode(w);
    const auto a = rng.next_below(72);
    auto b = rng.next_below(72);
    while (b == a) b = rng.next_below(72);
    std::uint64_t data = w;
    std::uint8_t chk = check;
    for (const auto pos : {a, b}) {
      if (pos < 64) {
        data ^= 1ULL << pos;
      } else {
        chk = static_cast<std::uint8_t>(chk ^ (1U << (pos - 64)));
      }
    }
    const auto r = reliability::secded_decode(data, chk);
    EXPECT_TRUE(r.double_error())
        << "seed " << GetParam() << " bits " << a << "," << b;
  }
}

// A random payload through a random-BER channel under correct+retry comes
// out bit-exact (or, if retries were exhausted, is reported honestly).
TEST_P(SecdedFuzz, ChannelRoundTripUnderRandomBer) {
  Rng rng(GetParam());
  reliability::FaultModel fault;
  fault.random_ber = 1e-5 * static_cast<double>(1 + rng.next_below(20));
  fault.seed = GetParam() * 17 + 1;
  if (rng.next_below(2) == 1) {
    fault.dead_wavelengths = {static_cast<std::uint32_t>(rng.next_below(64))};
  }
  reliability::ReliabilityParams params;
  params.policy = reliability::ReliabilityPolicy::kCorrectRetry;
  params.block_words = 16 + rng.next_below(100);

  std::vector<std::uint64_t> payload(256 + rng.next_below(2048));
  for (auto& w : payload) w = rng.next_u64();

  reliability::ProtectedChannel ch(fault, params);
  const auto tx = ch.transmit(payload);
  std::uint64_t wrong = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (tx.words[i] != payload[i]) ++wrong;
  }
  EXPECT_EQ(wrong, tx.retry.residual_errors);  // report is ground truth
  if (tx.retry.residual_errors == 0) {
    EXPECT_EQ(tx.words, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecdedFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

INSTANTIATE_TEST_SUITE_P(Seeds, MeshFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace psync
