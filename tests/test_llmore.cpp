#include "psync/llmore/llmore.hpp"

#include <gtest/gtest.h>

namespace psync::llmore {
namespace {

TEST(Llmore, FlopsCountForPaperMatrix) {
  LlmoreParams p;  // 1024 x 1024
  // Butterflies: 2 passes x 1024 rows x 512 x 10 stages = 10.49M; x10 flops.
  EXPECT_NEAR(total_flops(p), 104'857'600.0, 1.0);
}

TEST(Llmore, PsyncReorgConstantInCores) {
  LlmoreParams p;
  const auto a = simulate_psync(p, 16);
  const auto b = simulate_psync(p, 1024);
  EXPECT_NEAR(a.reorg_ns, b.reorg_ns, 1e-6);
}

TEST(Llmore, ComputeShrinksWithCoresUntilRowLimit) {
  LlmoreParams p;
  const auto a = simulate_psync(p, 64);
  const auto b = simulate_psync(p, 256);
  EXPECT_NEAR(a.compute1_ns / b.compute1_ns, 4.0, 1e-9);
  // Beyond 1024 cores the row distribution saturates.
  const auto c = simulate_psync(p, 1024);
  const auto d = simulate_psync(p, 4096);
  EXPECT_NEAR(c.compute1_ns, d.compute1_ns, 1e-9);
}

TEST(Llmore, Fig13MeshPeaksNear256ThenDeclines) {
  LlmoreParams p;
  const auto pts = sweep(p, 4, 4096);  // 4, 16, 64, 256, 1024, 4096
  ASSERT_EQ(pts.size(), 6u);
  std::uint64_t best_cores = 0;
  double best = 0.0;
  for (const auto& pt : pts) {
    if (pt.gflops_mesh > best) {
      best = pt.gflops_mesh;
      best_cores = pt.cores;
    }
  }
  EXPECT_EQ(best_cores, 256u);  // the paper's "peaks around 256 cores"
  // And it declines afterwards.
  EXPECT_LT(pts[4].gflops_mesh, pts[3].gflops_mesh);
  EXPECT_LT(pts[5].gflops_mesh, pts[3].gflops_mesh);
}

TEST(Llmore, Fig13PsyncConvergesToIdeal) {
  LlmoreParams p;
  const auto pts = sweep(p, 4, 4096);
  // Monotone non-decreasing and approaching ideal at the top end.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].gflops_psync, pts[i - 1].gflops_psync * 0.999);
  }
  const auto& last = pts.back();
  EXPECT_GT(last.gflops_psync / last.gflops_ideal, 0.85);
  // P-sync never exceeds ideal.
  for (const auto& pt : pts) {
    EXPECT_LE(pt.gflops_psync, pt.gflops_ideal * 1.0001);
  }
}

TEST(Llmore, Fig13PsyncBeatsMeshByPaperFactorsAtScale) {
  // "The performance for the P-sync architecture for P > 256 is two to ten
  // times better than the electronic mesh architecture."
  LlmoreParams p;
  for (std::uint64_t cores : {1024, 4096}) {
    const auto pt = simulate_point(p, cores);
    const double ratio = pt.gflops_psync / pt.gflops_mesh;
    EXPECT_GT(ratio, 2.0) << cores;
    EXPECT_LT(ratio, 12.0) << cores;
  }
}

TEST(Llmore, Fig14MeshReorgShareGrowsPsyncLevelsOff) {
  LlmoreParams p;
  const auto pts = sweep(p, 4, 4096);
  // Mesh reorg fraction grows with cores.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].reorg_frac_mesh, pts[i - 1].reorg_frac_mesh * 0.99);
  }
  EXPECT_GT(pts.back().reorg_frac_mesh, 0.4);
  // P-sync levels off to a "significantly more reasonable" share.
  EXPECT_LT(pts.back().reorg_frac_psync, pts.back().reorg_frac_mesh / 1.5);
  const double d_last = pts[5].reorg_frac_psync - pts[4].reorg_frac_psync;
  EXPECT_LT(d_last, 0.05);  // flat at the top end
}

TEST(Llmore, MeshAndPsyncAgreeAtTinyScaleWhereNetworkIsEasy) {
  // At 4 cores the transpose pieces are huge and the mesh has no
  // congestion problem: the architectures should be within ~2x.
  LlmoreParams p;
  const auto pt = simulate_point(p, 4);
  EXPECT_LT(pt.gflops_psync / pt.gflops_mesh, 2.0);
}

TEST(Llmore, BiggerBufferDefersTheCollapse) {
  LlmoreParams small = {};
  small.buffer_partials = 2;
  LlmoreParams big = {};
  big.buffer_partials = 32;
  const auto s = simulate_mesh(small, 1024);
  const auto b = simulate_mesh(big, 1024);
  EXPECT_GT(s.reorg_ns, b.reorg_ns);
}

TEST(Llmore, PhaseBreakdownSumsToTotal) {
  LlmoreParams p;
  const auto ph = simulate_mesh(p, 64);
  EXPECT_NEAR(ph.total_ns(),
              ph.deliver1_ns + ph.compute1_ns + ph.reorg_ns + ph.deliver2_ns +
                  ph.compute2_ns + ph.writeback_ns,
              1e-9);
  EXPECT_GT(ph.reorg_total_ns(), ph.reorg_ns);
}

}  // namespace
}  // namespace psync::llmore
