// Differential equivalence of the SoA mesh datapath against the retained
// AoS reference (reference_mesh.hpp): identical traffic is run through both
// implementations and every observable — the per-flit ejection trace with
// its cycle stamps, the final activity counters, the Welford latency
// moments bit for bit, and the per-packet latency log — must match exactly.
// Patterns cover uniform random, transpose permutation, and hotspot traffic
// on 8x8 and 16x16 meshes, across seeds, both routing algorithms, and both
// the packed (V=1) and generic (V=2) VC layouts.
#include "psync/mesh/mesh.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "psync/common/rng.hpp"

namespace psync::mesh {
namespace {

enum class Pattern { kUniform, kTranspose, kHotspot };

std::vector<PacketDesc> make_traffic(Pattern pattern, std::uint32_t dim,
                                     std::uint64_t seed, int packets) {
  const std::uint32_t nodes = dim * dim;
  std::vector<PacketDesc> out;
  out.reserve(static_cast<std::size_t>(packets));
  Rng rng(seed);
  for (int i = 0; i < packets; ++i) {
    PacketDesc d;
    d.src = static_cast<NodeId>(rng.next_u64() % nodes);
    switch (pattern) {
      case Pattern::kUniform:
        d.dst = static_cast<NodeId>(rng.next_u64() % nodes);
        break;
      case Pattern::kTranspose: {
        // dst = transpose of src's coordinates.
        const std::uint32_t x = d.src % dim;
        const std::uint32_t y = d.src / dim;
        d.dst = x * dim + y;
        break;
      }
      case Pattern::kHotspot:
        d.dst = (i & 1) != 0
                    ? (dim / 2) * dim + dim / 2
                    : static_cast<NodeId>(rng.next_u64() % nodes);
        break;
    }
    d.payload_flits = 1 + static_cast<std::uint32_t>(rng.next_u64() % 12);
    d.payload_base = rng.next_u64();
    d.release_cycle = static_cast<std::int64_t>(rng.next_u64() % 4000);
    out.push_back(d);
  }
  return out;
}

struct RunResult {
  std::int64_t final_cycle = 0;
  MeshActivity activity;
  // Welford moments, bit-cast so "identical" means identical float bits.
  std::uint64_t lat_count = 0;
  std::uint64_t lat_mean_bits = 0;
  std::uint64_t lat_m2_bits = 0;
  std::uint64_t lat_min_bits = 0;
  std::uint64_t lat_max_bits = 0;
  std::vector<double> latencies;
  // Ejection trace: every flit at every node, with its arrival cycle.
  std::vector<Flit> flits;
  std::vector<std::int64_t> flit_cycles;
};

RunResult run_one(bool reference, Pattern pattern, std::uint32_t dim,
                  std::uint64_t seed, MeshParams mp) {
  set_reference_datapath(reference);
  mp.width = dim;
  mp.height = dim;
  Mesh net(mp);
  set_reference_datapath(false);
  EXPECT_EQ(net.using_reference_datapath(), reference);

  std::vector<ConsumeSink> sinks(net.nodes());
  for (NodeId n = 0; n < net.nodes(); ++n) {
    sinks[n].keep_log(true);
    net.set_sink(n, &sinks[n]);
  }
  net.record_latencies(true);

  const int packets = dim == 8 ? 600 : 1200;
  for (const auto& d : make_traffic(pattern, dim, seed, packets)) {
    net.inject(d);
  }
  EXPECT_TRUE(net.run_until_drained(10'000'000));
  EXPECT_EQ(net.in_flight_flits(), 0u);
  EXPECT_EQ(net.in_flight_packets(), 0u);

  RunResult r;
  r.final_cycle = net.cycle();
  r.activity = net.activity();
  const auto& stats = net.packet_latency();
  r.lat_count = stats.count();
  r.lat_mean_bits = std::bit_cast<std::uint64_t>(stats.mean());
  r.lat_m2_bits = std::bit_cast<std::uint64_t>(stats.variance());
  r.lat_min_bits = std::bit_cast<std::uint64_t>(stats.min());
  r.lat_max_bits = std::bit_cast<std::uint64_t>(stats.max());
  r.latencies = net.latencies();
  for (const auto& s : sinks) {
    r.flits.insert(r.flits.end(), s.log().begin(), s.log().end());
    r.flit_cycles.insert(r.flit_cycles.end(), s.log_cycles().begin(),
                         s.log_cycles().end());
  }
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.final_cycle, b.final_cycle);

  EXPECT_EQ(a.activity.buffer_writes, b.activity.buffer_writes);
  EXPECT_EQ(a.activity.buffer_reads, b.activity.buffer_reads);
  EXPECT_EQ(a.activity.crossbar_traversals, b.activity.crossbar_traversals);
  EXPECT_EQ(a.activity.link_traversals, b.activity.link_traversals);
  EXPECT_EQ(a.activity.arbitrations, b.activity.arbitrations);
  EXPECT_EQ(a.activity.injected_flits, b.activity.injected_flits);
  EXPECT_EQ(a.activity.ejected_flits, b.activity.ejected_flits);
  EXPECT_EQ(a.activity.injected_packets, b.activity.injected_packets);
  EXPECT_EQ(a.activity.ejected_packets, b.activity.ejected_packets);

  EXPECT_EQ(a.lat_count, b.lat_count);
  EXPECT_EQ(a.lat_mean_bits, b.lat_mean_bits);
  EXPECT_EQ(a.lat_m2_bits, b.lat_m2_bits);
  EXPECT_EQ(a.lat_min_bits, b.lat_min_bits);
  EXPECT_EQ(a.lat_max_bits, b.lat_max_bits);

  ASSERT_EQ(a.latencies.size(), b.latencies.size());
  for (std::size_t i = 0; i < a.latencies.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.latencies[i]),
              std::bit_cast<std::uint64_t>(b.latencies[i]))
        << "latency " << i;
  }

  ASSERT_EQ(a.flits.size(), b.flits.size());
  ASSERT_EQ(a.flit_cycles.size(), b.flit_cycles.size());
  for (std::size_t i = 0; i < a.flits.size(); ++i) {
    const Flit& fa = a.flits[i];
    const Flit& fb = b.flits[i];
    ASSERT_EQ(fa.packet, fb.packet) << "flit " << i;
    ASSERT_EQ(fa.src, fb.src) << "flit " << i;
    ASSERT_EQ(fa.dst, fb.dst) << "flit " << i;
    ASSERT_EQ(fa.seq, fb.seq) << "flit " << i;
    ASSERT_EQ(fa.kind, fb.kind) << "flit " << i;
    ASSERT_EQ(fa.payload, fb.payload) << "flit " << i;
    ASSERT_EQ(a.flit_cycles[i], b.flit_cycles[i]) << "flit " << i;
  }
}

struct Config {
  Pattern pattern;
  std::uint32_t dim;
  MeshParams mp;
  const char* name;
};

class MeshSoaIdentity : public ::testing::TestWithParam<Config> {};

TEST_P(MeshSoaIdentity, MatchesReferenceAcrossSeeds) {
  const Config& cfg = GetParam();
  for (std::uint64_t seed : {11ull, 212ull, 3333ull}) {
    const RunResult ref = run_one(true, cfg.pattern, cfg.dim, seed, cfg.mp);
    const RunResult soa = run_one(false, cfg.pattern, cfg.dim, seed, cfg.mp);
    expect_identical(ref, soa);
  }
}

MeshParams base_params() { return MeshParams{}; }

MeshParams with(RouteAlgo algo, std::uint32_t vcs) {
  MeshParams p;
  p.algo = algo;
  p.virtual_channels = vcs;
  return p;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, MeshSoaIdentity,
    ::testing::Values(
        Config{Pattern::kUniform, 8, base_params(), "uniform_8"},
        Config{Pattern::kTranspose, 8, base_params(), "transpose_8"},
        Config{Pattern::kHotspot, 8, base_params(), "hotspot_8"},
        Config{Pattern::kUniform, 16, base_params(), "uniform_16"},
        Config{Pattern::kTranspose, 16, base_params(), "transpose_16"},
        Config{Pattern::kHotspot, 16, base_params(), "hotspot_16"},
        Config{Pattern::kUniform, 8, with(RouteAlgo::kWestFirstAdaptive, 1),
               "uniform_8_westfirst"},
        Config{Pattern::kHotspot, 8, with(RouteAlgo::kWestFirstAdaptive, 1),
               "hotspot_8_westfirst"},
        Config{Pattern::kUniform, 8, with(RouteAlgo::kXY, 2), "uniform_8_v2"},
        Config{Pattern::kTranspose, 8, with(RouteAlgo::kWestFirstAdaptive, 2),
               "transpose_8_wf_v2"}),
    [](const ::testing::TestParamInfo<Config>& param_info) {
      return param_info.param.name;
    });

// The idle-skip fast-forward must be observationally invisible on both
// datapaths: sparse traffic with it forced off equals the skipped run.
TEST(MeshSoaIdentity, IdleSkipIsObservationallyIdentical) {
  for (bool reference : {false, true}) {
    RunResult runs[2];
    for (int skip = 0; skip < 2; ++skip) {
      set_reference_datapath(reference);
      MeshParams mp;
      mp.width = 8;
      mp.height = 8;
      Mesh net(mp);
      set_reference_datapath(false);
      net.set_idle_skip(skip == 1);
      std::vector<ConsumeSink> sinks(net.nodes());
      for (NodeId n = 0; n < net.nodes(); ++n) {
        sinks[n].keep_log(true);
        net.set_sink(n, &sinks[n]);
      }
      net.record_latencies(true);
      Rng rng(99);
      for (int i = 0; i < 40; ++i) {
        PacketDesc d;
        d.src = static_cast<NodeId>(rng.next_u64() % 64);
        d.dst = static_cast<NodeId>(rng.next_u64() % 64);
        d.payload_flits = 3;
        d.release_cycle = static_cast<std::int64_t>(i) * 4096;
        net.inject(d);
      }
      ASSERT_TRUE(net.run_until_drained(10'000'000));
      RunResult& r = runs[skip];
      r.final_cycle = net.cycle();
      r.activity = net.activity();
      r.lat_count = net.packet_latency().count();
      r.lat_mean_bits = std::bit_cast<std::uint64_t>(net.packet_latency().mean());
      r.latencies = net.latencies();
      for (const auto& s : sinks) {
        r.flits.insert(r.flits.end(), s.log().begin(), s.log().end());
        r.flit_cycles.insert(r.flit_cycles.end(), s.log_cycles().begin(),
                             s.log_cycles().end());
      }
    }
    expect_identical(runs[0], runs[1]);
  }
}

}  // namespace
}  // namespace psync::mesh
